#ifndef QPE_NN_SIMD_KERNELS_INL_H_
#define QPE_NN_SIMD_KERNELS_INL_H_

// Kernel bodies shared by every SIMD level. Each instruction set provides a
// small vector-ops policy (lane count, load/store/broadcast, mul/add/max,
// horizontal max) and instantiates these templates; qpe/nn/simd.cc holds
// the scalar policy, simd_avx2.cc / simd_neon.cc the vector ones. One body
// per kernel keeps the three tables in lockstep: a numerics fix lands in
// all of them at once.
//
// Exactness discipline (see simd.h): loops vectorize only across
// independent output lanes. Reductions (row sums, exp sums, dot products)
// stay scalar in ascending order; max reductions may vectorize because
// float max is exactly associative and commutative on the finite inputs
// these kernels see. Policies must implement Mul/Add as separate
// operations (never a fused multiply-add), and the per-ISA translation
// units compile with -ffp-contract=off so the compiler cannot re-fuse
// them.
//
// The one sanctioned deviation is V::Exp. The scalar policy's Exp is
// std::exp — the scalar table therefore reproduces the pre-SIMD results
// bit for bit, as required — but the vector policies implement a
// polynomial expf (~2 ulp), so softmax outputs under a vector level agree
// with the scalar reference only within the epsilon contract. Profiling
// showed scalar expf dominating the attention softmax (~40% of an
// end-to-end forward on short plan sequences), and unlike the sum loops
// there is no ordering argument that would make a lane-parallel exp
// bit-exact anyway — exp is elementwise, the divergence is purely the
// polynomial. Every consumer of these kernels reaches them through the
// same dispatch table, so batched-vs-single bit-equality still holds at
// every level; only cross-level equality is epsilon-gated.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qpe::nn::simd {

// Row statistics of the fused LayerNorm, replicating the original autograd
// chain's arithmetic exactly: mean and variance accumulate in ascending
// column order and scale by a precomputed 1/n, and the reciprocal standard
// deviation goes through the same clamped sqrt/log/exp chain the composite
// forward used (Sqrt -> Log -> Scale(-1) -> Exp). Shared by the forward
// kernels here and the (scalar) backward closure in nn/tensor.cc.
inline void LayerNormRowStats(const float* __restrict row, int n, float invn,
                              float* mean_out, float* recip_out) {
  constexpr float kLogEps = 1e-12f;
  float total = 0;
  for (int c = 0; c < n; ++c) total += row[c];
  const float mean = total * invn;
  float sq = 0;
  for (int c = 0; c < n; ++c) {
    const float d = row[c] - mean;
    sq += d * d;
  }
  const float var = sq * invn;
  const float inv_std = std::sqrt(std::max(var + 1e-5f, 0.0f));
  const float log_std = std::log(std::max(inv_std, kLogEps));
  *mean_out = mean;
  *recip_out = std::exp(std::min(-log_std, 30.0f));
}

// MatMul tile sizes, identical to the pre-SIMD blocked kernel: a
// [kKC x kNC] panel of B (64 KB) stays resident in L1/L2 while it is
// streamed against every row of A.
inline constexpr int kSimdMatMulKC = 64;
inline constexpr int kSimdMatMulNC = 256;

// out[i0:i1, :] += A[i0:i1, :] * B. Vector levels run register-tiled:
// each output tile is held in accumulator registers across the whole
// k-block instead of being streamed through memory on every k step. Per
// output element this is the exact operation sequence of the original
// saxpy loop — the same mul-then-add pairs, over the same aval != 0
// subsequence of k, in the same ascending order; only the intermediate
// loads/stores of the output row disappear, and those never round. Every
// level therefore produces the same bits as the pre-SIMD kernel, for
// every thread count. What the tiling buys is breaking the loop-carried
// store-to-load dependency the saxpy form had (~10 cycles per k step
// through the store buffer, vs one add latency per independent
// accumulator) — on the model's small GEMMs this was the single largest
// cost in an end-to-end forward. The width-1 scalar policy keeps the
// original p-outer saxpy shape (same bits again): at one float per
// "vector" the tiles would walk B column-wise with a sparsity branch per
// tile instead of per k step, which measured ~1.4x slower than the
// seed loop it is required to reproduce.
template <typename V>
void MatMulForwardRangeT(const float* __restrict av, const float* __restrict bv,
                         float* __restrict ov, int i0, int i1, int k, int n) {
  constexpr int L = V::kLanes;
  for (int p0 = 0; p0 < k; p0 += kSimdMatMulKC) {
    const int p1 = std::min(k, p0 + kSimdMatMulKC);
    for (int j0 = 0; j0 < n; j0 += kSimdMatMulNC) {
      const int j1 = std::min(n, j0 + kSimdMatMulNC);
      for (int i = i0; i < i1; ++i) {
        const float* __restrict arow = av + static_cast<size_t>(i) * k;
        float* __restrict orow = ov + static_cast<size_t>(i) * n;
        if constexpr (L == 1) {
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;  // Relu outputs are often sparse
            const float* __restrict brow = bv + static_cast<size_t>(p) * n;
            for (int j = j0; j < j1; ++j) orow[j] += aval * brow[j];
          }
          continue;
        }
        int j = j0;
        // 4-vector tiles: 4 independent accumulator chains in flight.
        for (; j + 4 * L <= j1; j += 4 * L) {
          auto a0 = V::Load(orow + j);
          auto a1 = V::Load(orow + j + L);
          auto a2 = V::Load(orow + j + 2 * L);
          auto a3 = V::Load(orow + j + 3 * L);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;  // Relu outputs are often sparse
            const float* __restrict brow =
                bv + static_cast<size_t>(p) * n + j;
            const auto va = V::Broadcast(aval);
            a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
            a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
            a2 = V::Add(a2, V::Mul(va, V::Load(brow + 2 * L)));
            a3 = V::Add(a3, V::Mul(va, V::Load(brow + 3 * L)));
          }
          V::Store(orow + j, a0);
          V::Store(orow + j + L, a1);
          V::Store(orow + j + 2 * L, a2);
          V::Store(orow + j + 3 * L, a3);
        }
        // 2-vector and 1-vector remainder tiles.
        for (; j + 2 * L <= j1; j += 2 * L) {
          auto a0 = V::Load(orow + j);
          auto a1 = V::Load(orow + j + L);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            const float* __restrict brow =
                bv + static_cast<size_t>(p) * n + j;
            const auto va = V::Broadcast(aval);
            a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
            a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
          }
          V::Store(orow + j, a0);
          V::Store(orow + j + L, a1);
        }
        for (; j + L <= j1; j += L) {
          auto a0 = V::Load(orow + j);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            a0 = V::Add(a0, V::Mul(V::Broadcast(aval),
                                   V::Load(bv + static_cast<size_t>(p) * n + j)));
          }
          V::Store(orow + j, a0);
        }
        for (; j < j1; ++j) {
          float acc = orow[j];
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            acc += aval * bv[static_cast<size_t>(p) * n + j];
          }
          orow[j] = acc;
        }
      }
    }
  }
}

// out = max(a + bias, 0): elementwise, so vector lanes are bit-identical
// to the scalar loop.
template <typename V>
void BiasReluT(const float* __restrict av, const float* __restrict bv,
               float* __restrict ov, int m, int n) {
  constexpr int L = V::kLanes;
  const int nv = (n / L) * L;
  const auto zero = V::Broadcast(0.0f);
  for (int r = 0; r < m; ++r) {
    const float* __restrict arow = av + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    int c = 0;
    for (; c < nv; c += L) {
      V::Store(orow + c,
               V::Max(V::Add(V::Load(arow + c), V::Load(bv + c)), zero));
    }
    for (; c < n; ++c) {
      const float s = arow[c] + bv[c];
      orow[c] = s > 0 ? s : 0.0f;
    }
  }
}

// Fused linear layer for the packed pipeline: out = act(A * B + bias) with
// A [m, k], B [k, n], bias [n], act = ReLU when `relu` is nonzero, identity
// otherwise. Per output element this is the op chain's exact sequence —
// zero, ascending-k mul/add pairs, one bias add, then BiasRelu's `> 0`
// clamp — but the zero lives in a register instead of a pre-filled buffer
// and the bias/ReLU ride the GEMM epilogue, so the fused kernel never
// makes the zero-fill and bias passes over the output. Dropping the
// k-panel split changes only where intermediate sums sit (registers vs a
// stored row reloaded exactly), so every level is bit-identical to fill +
// matmul_forward_range + bias (+ bias_relu's clamp).
//
// Unlike MatMulForwardRangeT, the vector path has no aval == 0 skip: on
// the ReLU-sparse ff2 input (~50% random zeros) the data-dependent branch
// mispredicts constantly and measured 3.5x slower than just doing the
// multiplies. Including the zero products is bit-identical to skipping
// them here because the accumulator starts at +0 and a round-to-nearest
// sum that starts at +0 can never become -0 (exact cancellation rounds to
// +0, and adding a zero of either sign to +0 yields +0) — so every aval ==
// 0 step adds a +/-0 product to a non-negative-zero accumulator, which
// never changes a bit. matmul_forward_range cannot make that argument (its
// out is caller-provided and may hold -0), which is one more reason the
// fused kernel is separate. The width-1 policy keeps the seed's saxpy
// shape, skip included.
template <typename V>
void LinearBiasActT(const float* __restrict av, const float* __restrict bv,
                    const float* __restrict biasv, float* __restrict ov,
                    int m, int k, int n, int relu) {
  constexpr int L = V::kLanes;
  if constexpr (L == 1) {
    // Width-1 policy: the p-outer saxpy shape of MatMulForwardRangeT (see
    // the rationale there), then the op chain's bias/ReLU passes.
    for (int i = 0; i < m; ++i) {
      const float* __restrict arow = av + static_cast<size_t>(i) * k;
      float* __restrict orow = ov + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float aval = arow[p];
        if (aval == 0.0f) continue;
        const float* __restrict brow = bv + static_cast<size_t>(p) * n;
        for (int j = 0; j < n; ++j) orow[j] += aval * brow[j];
      }
      if (relu != 0) {
        for (int j = 0; j < n; ++j) {
          const float s = orow[j] + biasv[j];
          orow[j] = s > 0 ? s : 0.0f;
        }
      } else {
        for (int j = 0; j < n; ++j) orow[j] += biasv[j];
      }
    }
    return;
  }
  const auto zero = V::Broadcast(0.0f);
  for (int i = 0; i < m; ++i) {
    const float* __restrict arow = av + static_cast<size_t>(i) * k;
    float* __restrict orow = ov + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 4 * L <= n; j += 4 * L) {
      auto a0 = zero;
      auto a1 = zero;
      auto a2 = zero;
      auto a3 = zero;
      for (int p = 0; p < k; ++p) {
        const float* __restrict brow = bv + static_cast<size_t>(p) * n + j;
        const auto va = V::Broadcast(arow[p]);
        a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
        a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
        a2 = V::Add(a2, V::Mul(va, V::Load(brow + 2 * L)));
        a3 = V::Add(a3, V::Mul(va, V::Load(brow + 3 * L)));
      }
      a0 = V::Add(a0, V::Load(biasv + j));
      a1 = V::Add(a1, V::Load(biasv + j + L));
      a2 = V::Add(a2, V::Load(biasv + j + 2 * L));
      a3 = V::Add(a3, V::Load(biasv + j + 3 * L));
      if (relu != 0) {
        a0 = V::Max(a0, zero);
        a1 = V::Max(a1, zero);
        a2 = V::Max(a2, zero);
        a3 = V::Max(a3, zero);
      }
      V::Store(orow + j, a0);
      V::Store(orow + j + L, a1);
      V::Store(orow + j + 2 * L, a2);
      V::Store(orow + j + 3 * L, a3);
    }
    for (; j + 2 * L <= n; j += 2 * L) {
      auto a0 = zero;
      auto a1 = zero;
      for (int p = 0; p < k; ++p) {
        const float* __restrict brow = bv + static_cast<size_t>(p) * n + j;
        const auto va = V::Broadcast(arow[p]);
        a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
        a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
      }
      a0 = V::Add(a0, V::Load(biasv + j));
      a1 = V::Add(a1, V::Load(biasv + j + L));
      if (relu != 0) {
        a0 = V::Max(a0, zero);
        a1 = V::Max(a1, zero);
      }
      V::Store(orow + j, a0);
      V::Store(orow + j + L, a1);
    }
    for (; j + L <= n; j += L) {
      auto a0 = zero;
      for (int p = 0; p < k; ++p) {
        a0 = V::Add(a0, V::Mul(V::Broadcast(arow[p]),
                               V::Load(bv + static_cast<size_t>(p) * n + j)));
      }
      a0 = V::Add(a0, V::Load(biasv + j));
      if (relu != 0) a0 = V::Max(a0, zero);
      V::Store(orow + j, a0);
    }
    for (; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += arow[p] * bv[static_cast<size_t>(p) * n + j];
      }
      const float s = acc + biasv[j];
      orow[j] = (relu != 0 && !(s > 0)) ? 0.0f : s;
    }
  }
}

// dst[i] += src[i]: the residual-stream add of the packed pipeline.
// Elementwise, so vector lanes are bit-identical to the scalar loop.
template <typename V>
void AddRowsT(float* __restrict dst, const float* __restrict src, size_t n) {
  constexpr int L = V::kLanes;
  const size_t nv = (n / L) * L;
  size_t i = 0;
  for (; i < nv; i += L) {
    V::Store(dst + i, V::Add(V::Load(dst + i), V::Load(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

// y = ((x - mean) * recip) * gamma + beta. Stats stay scalar (reductions);
// the normalize pass is elementwise and vectorizes bit-identically.
template <typename V>
void LayerNormRowsT(const float* __restrict xv, const float* __restrict gv,
                    const float* __restrict bv, float* __restrict ov, int m,
                    int n, float invn) {
  constexpr int L = V::kLanes;
  const int nv = (n / L) * L;
  for (int r = 0; r < m; ++r) {
    const float* __restrict xrow = xv + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    float mean, recip;
    LayerNormRowStats(xrow, n, invn, &mean, &recip);
    const auto vmean = V::Broadcast(mean);
    const auto vrecip = V::Broadcast(recip);
    int c = 0;
    for (; c < nv; c += L) {
      const auto xhat = V::Mul(V::Sub(V::Load(xrow + c), vmean), vrecip);
      V::Store(orow + c, V::Add(V::Mul(xhat, V::Load(gv + c)), V::Load(bv + c)));
    }
    for (; c < n; ++c) {
      orow[c] = ((xrow[c] - mean) * recip) * gv[c] + bv[c];
    }
  }
}

// Masked row softmax over the first valid[r] columns. The max reduction
// vectorizes (exact) and exp vectorizes through V::Exp (scalar level:
// std::exp, bit-exact to seed; vector levels: polynomial, epsilon-gated);
// the normalizing sum stays scalar in ascending order over the stored exp
// values, and the final divide is elementwise.
template <typename V>
void SoftmaxRowsMaskedT(const float* __restrict av, float* __restrict ov,
                        const int* __restrict valid, int m, int n) {
  constexpr int L = V::kLanes;
  for (int r = 0; r < m; ++r) {
    const int v = std::min(std::max(valid[r], 0), n);
    const float* __restrict row = av + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    if (v == 0) continue;  // row already zero
    float max_v = row[0];
    int c = 1;
    if (v >= L) {
      auto vmax = V::Load(row);
      for (c = L; c + L <= v; c += L) vmax = V::Max(vmax, V::Load(row + c));
      max_v = V::HMax(vmax);
    }
    for (; c < v; ++c) max_v = std::max(max_v, row[c]);
    const int cv = (v / L) * L;
    {
      const auto vm = V::Broadcast(max_v);
      int j = 0;
      for (; j < cv; j += L) {
        V::Store(orow + j, V::Exp(V::Sub(V::Load(row + j), vm)));
      }
      for (; j < v; ++j) orow[j] = std::exp(row[j] - max_v);
    }
    float total = 0;
    for (int j = 0; j < v; ++j) total += orow[j];
    const auto vtotal = V::Broadcast(total);
    int j = 0;
    for (; j < cv; j += L) V::Store(orow + j, V::Div(V::Load(orow + j), vtotal));
    for (; j < v; ++j) orow[j] /= total;
  }
}

// Fused packed multi-head attention forward (semantics documented at
// nn::MultiHeadAttentionPacked). The score and context loops are
// axpy-shaped and vectorize across their independent output lanes; the
// softmax inside follows the same max-vector/exp-via-V::Exp/sum-scalar
// split as SoftmaxRowsMaskedT.
template <typename V>
void AttentionForwardPackedT(const float* __restrict qv,
                             const float* __restrict kv,
                             const float* __restrict vv, float* __restrict ov,
                             const int* __restrict offsets,
                             const int* __restrict lengths, int num_seqs,
                             int num_heads, int dim, float scale) {
  constexpr int L = V::kLanes;
  const int dh = dim / num_heads;
  const int dhv = (dh / L) * L;
  std::vector<float> probs;  // per-(sequence, head) [len, len] scratch
  std::vector<float> kt;     // packed k^T head block, [dh, len]
  for (int s = 0; s < num_seqs; ++s) {
    const int off = offsets[s];
    const int len = lengths[s];
    const int lenv = (len / L) * L;
    probs.resize(static_cast<size_t>(len) * len);
    kt.resize(static_cast<size_t>(dh) * len);
    for (int h = 0; h < num_heads; ++h) {
      const int col0 = h * dh;
      // Pack the head's key block transposed so the score loops run
      // saxpy-style over a contiguous j dimension.
      for (int j = 0; j < len; ++j) {
        const float* __restrict krow =
            kv + static_cast<size_t>(off + j) * dim + col0;
        for (int c = 0; c < dh; ++c) {
          kt[static_cast<size_t>(c) * len + j] = krow[c];
        }
      }
      // Scores then row softmax: ascending-c accumulation scaled once
      // after the sum, then max/exp/sum/divide per row — the same
      // arithmetic as Scale(MatMul(qh, Transpose(kh)), scale) and
      // SoftmaxRows, element for element.
      for (int i = 0; i < len; ++i) {
        const float* __restrict qrow =
            qv + static_cast<size_t>(off + i) * dim + col0;
        float* __restrict prow = probs.data() + static_cast<size_t>(i) * len;
        // Scores q·k, register-tiled over j like MatMulForwardRangeT: the
        // per-element sum still accumulates ascending c from zero, so the
        // bits match the old zero-then-axpy form at every level. The
        // scalar policy keeps the axpy shape (identical bits, better
        // locality at width 1 — same reasoning as MatMulForwardRangeT).
        if constexpr (L == 1) {
          for (int j = 0; j < len; ++j) prow[j] = 0.0f;
          for (int c = 0; c < dh; ++c) {
            const float qc = qrow[c];
            const float* __restrict ktrow =
                kt.data() + static_cast<size_t>(c) * len;
            for (int j = 0; j < len; ++j) prow[j] += qc * ktrow[j];
          }
        } else {
          const float* __restrict ktv = kt.data();
          const auto zero = V::Broadcast(0.0f);
          int j = 0;
          for (; j + 2 * L <= len; j += 2 * L) {
            auto a0 = zero;
            auto a1 = zero;
            for (int c = 0; c < dh; ++c) {
              const float* __restrict ktrow =
                  ktv + static_cast<size_t>(c) * len + j;
              const auto vq = V::Broadcast(qrow[c]);
              a0 = V::Add(a0, V::Mul(vq, V::Load(ktrow)));
              a1 = V::Add(a1, V::Mul(vq, V::Load(ktrow + L)));
            }
            V::Store(prow + j, a0);
            V::Store(prow + j + L, a1);
          }
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktv + static_cast<size_t>(c) * len +
                                             j)));
            }
            V::Store(prow + j, a0);
          }
          for (; j < len; ++j) {
            float acc = 0;
            for (int c = 0; c < dh; ++c) {
              acc += qrow[c] * ktv[static_cast<size_t>(c) * len + j];
            }
            prow[j] = acc;
          }
        }
        // Scale all scores, then take the row max (exact reduction).
        {
          const auto vs = V::Broadcast(scale);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Mul(V::Load(prow + j), vs));
          }
          for (; j < len; ++j) prow[j] *= scale;
        }
        float max_v = prow[0];
        {
          int j = 1;
          if (len >= L) {
            auto vmax = V::Load(prow);
            for (j = L; j + L <= len; j += L) {
              vmax = V::Max(vmax, V::Load(prow + j));
            }
            max_v = V::HMax(vmax);
          }
          for (; j < len; ++j) max_v = std::max(max_v, prow[j]);
        }
        {
          const auto vm = V::Broadcast(max_v);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Exp(V::Sub(V::Load(prow + j), vm)));
          }
          for (; j < len; ++j) prow[j] = std::exp(prow[j] - max_v);
        }
        float sum = 0;
        for (int j = 0; j < len; ++j) sum += prow[j];
        {
          const auto vsum = V::Broadcast(sum);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Div(V::Load(prow + j), vsum));
          }
          for (; j < len; ++j) prow[j] /= sum;
        }
      }
      // Context = probs * vh: j-outer saxpy over the contiguous c lanes of
      // v; per element this accumulates ascending j, exactly like
      // MatMul(probs, vh).
      for (int i = 0; i < len; ++i) {
        const float* __restrict prow =
            probs.data() + static_cast<size_t>(i) * len;
        float* __restrict orow = ov + static_cast<size_t>(off + i) * dim + col0;
        // Context probs * vh, register-tiled over the head lanes c: the
        // per-element sum accumulates ascending j from zero, exactly like
        // the old zero-then-axpy form. The scalar policy keeps the axpy
        // shape (identical bits, better locality at width 1).
        if constexpr (L == 1) {
          for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
          for (int j = 0; j < len; ++j) {
            const float p = prow[j];
            const float* __restrict vrow =
                vv + static_cast<size_t>(off + j) * dim + col0;
            for (int c = 0; c < dh; ++c) orow[c] += p * vrow[c];
          }
        } else {
          const auto zero = V::Broadcast(0.0f);
          int c = 0;
          for (; c < dhv; c += L) {
            auto a0 = zero;
            for (int j = 0; j < len; ++j) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(prow[j]),
                                     V::Load(vv + static_cast<size_t>(off + j) *
                                                      dim +
                                             col0 + c)));
            }
            V::Store(orow + c, a0);
          }
          for (; c < dh; ++c) {
            float acc = 0;
            for (int j = 0; j < len; ++j) {
              acc +=
                  prow[j] * vv[static_cast<size_t>(off + j) * dim + col0 + c];
            }
            orow[c] = acc;
          }
        }
      }
    }
  }
}

// Fused embedding gather + positional add (see simd.h). Three contiguous
// segment copies fused with the positional add into one pass per row:
// out[c] = e[c] + pos[c], elementwise in ascending order, so every level
// produces the same bits as the copy-then-add the op chain did.
template <typename V>
void EmbedGatherAddT(const float* __restrict e1, const float* __restrict e2,
                     const float* __restrict e3, const float* __restrict pos,
                     const int* __restrict ids1, const int* __restrict ids2,
                     const int* __restrict ids3,
                     const int* __restrict positions, float* __restrict out,
                     int rows, int d1, int d2, int d3) {
  constexpr int L = V::kLanes;
  const int d = d1 + d2 + d3;
  auto seg = [](const float* __restrict src, const float* __restrict add,
                float* __restrict dst, int n) {
    int c = 0;
    for (; c + L <= n; c += L) {
      V::Store(dst + c, V::Add(V::Load(src + c), V::Load(add + c)));
    }
    for (; c < n; ++c) dst[c] = src[c] + add[c];
  };
  for (int r = 0; r < rows; ++r) {
    float* __restrict row = out + static_cast<size_t>(r) * d;
    const float* __restrict prow =
        pos + static_cast<size_t>(positions[r]) * d;
    seg(e1 + static_cast<size_t>(ids1[r]) * d1, prow, row, d1);
    seg(e2 + static_cast<size_t>(ids2[r]) * d2, prow + d1, row + d1, d2);
    seg(e3 + static_cast<size_t>(ids3[r]) * d3, prow + d1 + d2,
        row + d1 + d2, d3);
  }
}

// Head-blocked attention forward (see simd.h for the layouts). This is
// AttentionForwardPackedT with the per-sequence k^T repack hoisted out:
// the caller transposes K once per layer into kbt [head][head_dim][rows]
// and blocks V into vb [head][rows][head_dim], so the score loops stream
// kbt rows (stride total_rows instead of a per-sequence pack) and the
// context loops read contiguous head_dim lanes of vb instead of striding
// `dim` floats between value rows.
//
// The vector path additionally tiles queries by kQueryTile: serving
// sequences are short (tens of tokens) and head_dim is small, so a
// single-query loop is latency-bound — one serially dependent
// accumulator chain per output vector. Four queries share every kt/v
// load and run four independent chains, which is what moves this kernel
// from memory-latency-bound to throughput-bound at serving shapes.
// Tiling across queries never touches any single element's accumulation
// order (scores still sum ascending c, context ascending j, the scale
// is one multiply on the finished dot either way), so the kernel stays
// bit-identical to AttentionForwardPackedT at every level, and the
// scalar level remains bit-identical to per-plan Encode.
template <typename V>
void AttentionForwardBlockedT(const float* __restrict qv,
                              const float* __restrict kbt,
                              const float* __restrict vb,
                              float* __restrict ov,
                              const int* __restrict offsets,
                              const int* __restrict lengths, int num_seqs,
                              int num_heads, int total_rows, int dim,
                              float scale, float* __restrict probs) {
  constexpr int L = V::kLanes;
  constexpr int kQueryTile = 4;
  const int dh = dim / num_heads;
  for (int s = 0; s < num_seqs; ++s) {
    const int off = offsets[s];
    const int len = lengths[s];
    const int lenv = (len / L) * L;
    for (int h = 0; h < num_heads; ++h) {
      const int col0 = h * dh;
      // This head's key block, transposed: row c holds k[:, col0 + c] with
      // stride total_rows; the sequence's columns start at offset `off`.
      const float* __restrict ktb =
          kbt + (static_cast<size_t>(h) * dh) * total_rows + off;
      // This head's value block: row j of the sequence is dh contiguous
      // floats.
      const float* __restrict vbb =
          vb + (static_cast<size_t>(h) * total_rows + off) * dh;
      // --- Phase 1: scaled score rows, query-tiled ---------------------
      if constexpr (L == 1) {
        for (int i = 0; i < len; ++i) {
          const float* __restrict qrow =
              qv + static_cast<size_t>(off + i) * dim + col0;
          float* __restrict prow = probs + static_cast<size_t>(i) * len;
          for (int j = 0; j < len; ++j) prow[j] = 0.0f;
          for (int c = 0; c < dh; ++c) {
            const float qc = qrow[c];
            const float* __restrict ktrow =
                ktb + static_cast<size_t>(c) * total_rows;
            for (int j = 0; j < len; ++j) prow[j] += qc * ktrow[j];
          }
          for (int j = 0; j < len; ++j) prow[j] *= scale;
        }
      } else {
        const auto zero = V::Broadcast(0.0f);
        const auto vs = V::Broadcast(scale);
        int i = 0;
        for (; i + kQueryTile <= len; i += kQueryTile) {
          const float* __restrict q0 =
              qv + static_cast<size_t>(off + i) * dim + col0;
          const float* __restrict q1 = q0 + dim;
          const float* __restrict q2 = q1 + dim;
          const float* __restrict q3 = q2 + dim;
          float* __restrict p0 = probs + static_cast<size_t>(i) * len;
          float* __restrict p1 = p0 + len;
          float* __restrict p2 = p1 + len;
          float* __restrict p3 = p2 + len;
          int j = 0;
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int c = 0; c < dh; ++c) {
              const auto kt = V::Load(
                  ktb + static_cast<size_t>(c) * total_rows + j);
              a0 = V::Add(a0, V::Mul(V::Broadcast(q0[c]), kt));
              a1 = V::Add(a1, V::Mul(V::Broadcast(q1[c]), kt));
              a2 = V::Add(a2, V::Mul(V::Broadcast(q2[c]), kt));
              a3 = V::Add(a3, V::Mul(V::Broadcast(q3[c]), kt));
            }
            V::Store(p0 + j, V::Mul(a0, vs));
            V::Store(p1 + j, V::Mul(a1, vs));
            V::Store(p2 + j, V::Mul(a2, vs));
            V::Store(p3 + j, V::Mul(a3, vs));
          }
          if (j < len && len >= L) {
            // Overlapping tail vector: recompute the last full vector of
            // scores ending at `len`. Each overlapped element is the same
            // ascending-c dot as before, so the second store writes the
            // same bits — cheaper than a scalar tail and bit-identical.
            const int jt = len - L;
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int c = 0; c < dh; ++c) {
              const auto kt = V::Load(
                  ktb + static_cast<size_t>(c) * total_rows + jt);
              a0 = V::Add(a0, V::Mul(V::Broadcast(q0[c]), kt));
              a1 = V::Add(a1, V::Mul(V::Broadcast(q1[c]), kt));
              a2 = V::Add(a2, V::Mul(V::Broadcast(q2[c]), kt));
              a3 = V::Add(a3, V::Mul(V::Broadcast(q3[c]), kt));
            }
            V::Store(p0 + jt, V::Mul(a0, vs));
            V::Store(p1 + jt, V::Mul(a1, vs));
            V::Store(p2 + jt, V::Mul(a2, vs));
            V::Store(p3 + jt, V::Mul(a3, vs));
          } else {
            for (; j < len; ++j) {
              float c0 = 0, c1 = 0, c2 = 0, c3 = 0;
              for (int c = 0; c < dh; ++c) {
                const float kc = ktb[static_cast<size_t>(c) * total_rows + j];
                c0 += q0[c] * kc;
                c1 += q1[c] * kc;
                c2 += q2[c] * kc;
                c3 += q3[c] * kc;
              }
              p0[j] = c0 * scale;
              p1[j] = c1 * scale;
              p2[j] = c2 * scale;
              p3[j] = c3 * scale;
            }
          }
        }
        for (; i < len; ++i) {
          const float* __restrict qrow =
              qv + static_cast<size_t>(off + i) * dim + col0;
          float* __restrict prow = probs + static_cast<size_t>(i) * len;
          int j = 0;
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktb + static_cast<size_t>(c) *
                                                       total_rows +
                                             j)));
            }
            V::Store(prow + j, V::Mul(a0, vs));
          }
          if (j < len && len >= L) {
            const int jt = len - L;
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktb + static_cast<size_t>(c) *
                                                       total_rows +
                                             jt)));
            }
            V::Store(prow + jt, V::Mul(a0, vs));
          } else {
            for (; j < len; ++j) {
              float acc = 0;
              for (int c = 0; c < dh; ++c) {
                acc += qrow[c] * ktb[static_cast<size_t>(c) * total_rows + j];
              }
              prow[j] = acc * scale;
            }
          }
        }
      }
      // --- Phase 2: row softmax — max, exp, sum, divide, the same split
      // as AttentionForwardPackedT (and SoftmaxRowsMaskedT) -------------
      for (int i = 0; i < len; ++i) {
        float* __restrict prow = probs + static_cast<size_t>(i) * len;
        float max_v = prow[0];
        {
          int j = 1;
          if (len >= L) {
            auto vmax = V::Load(prow);
            for (j = L; j + L <= len; j += L) {
              vmax = V::Max(vmax, V::Load(prow + j));
            }
            max_v = V::HMax(vmax);
          }
          for (; j < len; ++j) max_v = std::max(max_v, prow[j]);
        }
        {
          const auto vm = V::Broadcast(max_v);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Exp(V::Sub(V::Load(prow + j), vm)));
          }
          for (; j < len; ++j) prow[j] = std::exp(prow[j] - max_v);
        }
        float sum = 0;
        for (int j = 0; j < len; ++j) sum += prow[j];
        {
          const auto vsum = V::Broadcast(sum);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Div(V::Load(prow + j), vsum));
          }
          for (; j < len; ++j) prow[j] /= sum;
        }
      }
      // --- Phase 3: context = probs * vh over the contiguous rows of
      // this head's value block, query-tiled like the scores; per element
      // accumulates ascending j, like AttentionForwardPackedT ----------
      if constexpr (L == 1) {
        for (int i = 0; i < len; ++i) {
          const float* __restrict prow = probs + static_cast<size_t>(i) * len;
          float* __restrict orow =
              ov + static_cast<size_t>(off + i) * dim + col0;
          for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
          for (int j = 0; j < len; ++j) {
            const float p = prow[j];
            const float* __restrict vrow = vbb + static_cast<size_t>(j) * dh;
            for (int c = 0; c < dh; ++c) orow[c] += p * vrow[c];
          }
        }
      } else {
        const int dhv = (dh / L) * L;
        const auto zero = V::Broadcast(0.0f);
        int i = 0;
        for (; i + kQueryTile <= len; i += kQueryTile) {
          const float* __restrict p0 = probs + static_cast<size_t>(i) * len;
          const float* __restrict p1 = p0 + len;
          const float* __restrict p2 = p1 + len;
          const float* __restrict p3 = p2 + len;
          float* __restrict o0 =
              ov + static_cast<size_t>(off + i) * dim + col0;
          float* __restrict o1 = o0 + dim;
          float* __restrict o2 = o1 + dim;
          float* __restrict o3 = o2 + dim;
          int c = 0;
          for (; c < dhv; c += L) {
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int j = 0; j < len; ++j) {
              const auto vrow =
                  V::Load(vbb + static_cast<size_t>(j) * dh + c);
              a0 = V::Add(a0, V::Mul(V::Broadcast(p0[j]), vrow));
              a1 = V::Add(a1, V::Mul(V::Broadcast(p1[j]), vrow));
              a2 = V::Add(a2, V::Mul(V::Broadcast(p2[j]), vrow));
              a3 = V::Add(a3, V::Mul(V::Broadcast(p3[j]), vrow));
            }
            V::Store(o0 + c, a0);
            V::Store(o1 + c, a1);
            V::Store(o2 + c, a2);
            V::Store(o3 + c, a3);
          }
          if (c < dh && dh >= L) {
            // Overlapping tail vector over the last L head columns: the
            // overlapped lanes redo the same ascending-j sums and store
            // the same bits (see the score tail above).
            const int ct = dh - L;
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int j = 0; j < len; ++j) {
              const auto vrow =
                  V::Load(vbb + static_cast<size_t>(j) * dh + ct);
              a0 = V::Add(a0, V::Mul(V::Broadcast(p0[j]), vrow));
              a1 = V::Add(a1, V::Mul(V::Broadcast(p1[j]), vrow));
              a2 = V::Add(a2, V::Mul(V::Broadcast(p2[j]), vrow));
              a3 = V::Add(a3, V::Mul(V::Broadcast(p3[j]), vrow));
            }
            V::Store(o0 + ct, a0);
            V::Store(o1 + ct, a1);
            V::Store(o2 + ct, a2);
            V::Store(o3 + ct, a3);
          } else {
            for (; c < dh; ++c) {
              float c0 = 0, c1 = 0, c2 = 0, c3 = 0;
              for (int j = 0; j < len; ++j) {
                const float vv = vbb[static_cast<size_t>(j) * dh + c];
                c0 += p0[j] * vv;
                c1 += p1[j] * vv;
                c2 += p2[j] * vv;
                c3 += p3[j] * vv;
              }
              o0[c] = c0;
              o1[c] = c1;
              o2[c] = c2;
              o3[c] = c3;
            }
          }
        }
        for (; i < len; ++i) {
          const float* __restrict prow = probs + static_cast<size_t>(i) * len;
          float* __restrict orow =
              ov + static_cast<size_t>(off + i) * dim + col0;
          int c = 0;
          for (; c < dhv; c += L) {
            auto a0 = zero;
            for (int j = 0; j < len; ++j) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(prow[j]),
                                     V::Load(vbb + static_cast<size_t>(j) * dh +
                                             c)));
            }
            V::Store(orow + c, a0);
          }
          if (c < dh && dh >= L) {
            const int ct = dh - L;
            auto a0 = zero;
            for (int j = 0; j < len; ++j) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(prow[j]),
                                     V::Load(vbb + static_cast<size_t>(j) * dh +
                                             ct)));
            }
            V::Store(orow + ct, a0);
          } else {
            for (; c < dh; ++c) {
              float acc = 0;
              for (int j = 0; j < len; ++j) {
                acc += prow[j] * vbb[static_cast<size_t>(j) * dh + c];
              }
              orow[c] = acc;
            }
          }
        }
      }
    }
  }
}

// One quantization step of the quantize_buffer contract: round to nearest,
// ties away from zero, saturate to [-127, 127]. Written as
// trunc(t + copysign(0.5, t)) — every operation is an exact IEEE op, so a
// vector lane computing the same expression produces the same int8.
inline int8_t QuantizeOneRef(float x, float inv_scale) {
  const float t = x * inv_scale;
  const float r = std::trunc(t + std::copysign(0.5f, t));
  if (r >= 127.0f) return 127;
  if (r <= -127.0f) return -127;
  return static_cast<int8_t>(r);
}

inline void QuantizeBufferRef(const float* x, int n, float inv_scale,
                              int8_t* out) {
  for (int i = 0; i < n; ++i) out[i] = QuantizeOneRef(x[i], inv_scale);
}

// Reference walk of the packed int8 tile layout (see simd.h). Integer
// accumulation is exact in any order, so this is the bit-exactness anchor
// for the vector micro-kernels — and, because the padding contributes
// exact zeros, for plain int8_gemm on the unpacked operands too.
inline void Int8GemmPackedRef(const int8_t* a, const int16_t* bp, float* c,
                              int m, int k, int n, const float* a_scale,
                              const float* b_scale, const float* bias) {
  const int kp = Int8PackedKPad(k);
  const int kb = kp / kInt8TileK;
  const int tiles = (n + kInt8TileN - 1) / kInt8TileN;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * kp;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int t = 0; t < tiles; ++t) {
      const int16_t* btile =
          bp + static_cast<size_t>(t) * kb * (kInt8TileN * kInt8TileK);
      int32_t acc[kInt8TileN] = {0, 0, 0, 0};
      for (int b = 0; b < kb; ++b) {
        const int8_t* ab = arow + b * kInt8TileK;
        for (int ch = 0; ch < kInt8TileN; ++ch) {
          const int16_t* bb =
              btile + (static_cast<size_t>(b) * kInt8TileN + ch) * kInt8TileK;
          int32_t sum = acc[ch];
          for (int kk = 0; kk < kInt8TileK; ++kk) {
            sum += static_cast<int32_t>(ab[kk]) * static_cast<int32_t>(bb[kk]);
          }
          acc[ch] = sum;
        }
      }
      for (int ch = 0; ch < kInt8TileN; ++ch) {
        const int j = t * kInt8TileN + ch;
        if (j >= n) break;
        float y = static_cast<float>(acc[ch]) * as * b_scale[j];
        if (bias != nullptr) y += bias[j];
        crow[j] = y;
      }
    }
  }
}

}  // namespace qpe::nn::simd

#endif  // QPE_NN_SIMD_KERNELS_INL_H_
