#ifndef QPE_NN_SIMD_KERNELS_INL_H_
#define QPE_NN_SIMD_KERNELS_INL_H_

// Kernel bodies shared by every SIMD level. Each instruction set provides a
// small vector-ops policy (lane count, load/store/broadcast, mul/add/max,
// horizontal max) and instantiates these templates; qpe/nn/simd.cc holds
// the scalar policy, simd_avx2.cc / simd_neon.cc the vector ones. One body
// per kernel keeps the three tables in lockstep: a numerics fix lands in
// all of them at once.
//
// Exactness discipline (see simd.h): loops vectorize only across
// independent output lanes. Reductions (row sums, exp sums, dot products)
// stay scalar in ascending order; max reductions may vectorize because
// float max is exactly associative and commutative on the finite inputs
// these kernels see. Policies must implement Mul/Add as separate
// operations (never a fused multiply-add), and the per-ISA translation
// units compile with -ffp-contract=off so the compiler cannot re-fuse
// them.
//
// The one sanctioned deviation is V::Exp. The scalar policy's Exp is
// std::exp — the scalar table therefore reproduces the pre-SIMD results
// bit for bit, as required — but the vector policies implement a
// polynomial expf (~2 ulp), so softmax outputs under a vector level agree
// with the scalar reference only within the epsilon contract. Profiling
// showed scalar expf dominating the attention softmax (~40% of an
// end-to-end forward on short plan sequences), and unlike the sum loops
// there is no ordering argument that would make a lane-parallel exp
// bit-exact anyway — exp is elementwise, the divergence is purely the
// polynomial. Every consumer of these kernels reaches them through the
// same dispatch table, so batched-vs-single bit-equality still holds at
// every level; only cross-level equality is epsilon-gated.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qpe::nn::simd {

// Row statistics of the fused LayerNorm, replicating the original autograd
// chain's arithmetic exactly: mean and variance accumulate in ascending
// column order and scale by a precomputed 1/n, and the reciprocal standard
// deviation goes through the same clamped sqrt/log/exp chain the composite
// forward used (Sqrt -> Log -> Scale(-1) -> Exp). Shared by the forward
// kernels here and the (scalar) backward closure in nn/tensor.cc.
inline void LayerNormRowStats(const float* __restrict row, int n, float invn,
                              float* mean_out, float* recip_out) {
  constexpr float kLogEps = 1e-12f;
  float total = 0;
  for (int c = 0; c < n; ++c) total += row[c];
  const float mean = total * invn;
  float sq = 0;
  for (int c = 0; c < n; ++c) {
    const float d = row[c] - mean;
    sq += d * d;
  }
  const float var = sq * invn;
  const float inv_std = std::sqrt(std::max(var + 1e-5f, 0.0f));
  const float log_std = std::log(std::max(inv_std, kLogEps));
  *mean_out = mean;
  *recip_out = std::exp(std::min(-log_std, 30.0f));
}

// MatMul tile sizes, identical to the pre-SIMD blocked kernel: a
// [kKC x kNC] panel of B (64 KB) stays resident in L1/L2 while it is
// streamed against every row of A.
inline constexpr int kSimdMatMulKC = 64;
inline constexpr int kSimdMatMulNC = 256;

// out[i0:i1, :] += A[i0:i1, :] * B. Vector levels run register-tiled:
// each output tile is held in accumulator registers across the whole
// k-block instead of being streamed through memory on every k step. Per
// output element this is the exact operation sequence of the original
// saxpy loop — the same mul-then-add pairs, over the same aval != 0
// subsequence of k, in the same ascending order; only the intermediate
// loads/stores of the output row disappear, and those never round. Every
// level therefore produces the same bits as the pre-SIMD kernel, for
// every thread count. What the tiling buys is breaking the loop-carried
// store-to-load dependency the saxpy form had (~10 cycles per k step
// through the store buffer, vs one add latency per independent
// accumulator) — on the model's small GEMMs this was the single largest
// cost in an end-to-end forward. The width-1 scalar policy keeps the
// original p-outer saxpy shape (same bits again): at one float per
// "vector" the tiles would walk B column-wise with a sparsity branch per
// tile instead of per k step, which measured ~1.4x slower than the
// seed loop it is required to reproduce.
template <typename V>
void MatMulForwardRangeT(const float* __restrict av, const float* __restrict bv,
                         float* __restrict ov, int i0, int i1, int k, int n) {
  constexpr int L = V::kLanes;
  for (int p0 = 0; p0 < k; p0 += kSimdMatMulKC) {
    const int p1 = std::min(k, p0 + kSimdMatMulKC);
    for (int j0 = 0; j0 < n; j0 += kSimdMatMulNC) {
      const int j1 = std::min(n, j0 + kSimdMatMulNC);
      for (int i = i0; i < i1; ++i) {
        const float* __restrict arow = av + static_cast<size_t>(i) * k;
        float* __restrict orow = ov + static_cast<size_t>(i) * n;
        if constexpr (L == 1) {
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;  // Relu outputs are often sparse
            const float* __restrict brow = bv + static_cast<size_t>(p) * n;
            for (int j = j0; j < j1; ++j) orow[j] += aval * brow[j];
          }
          continue;
        }
        int j = j0;
        // 4-vector tiles: 4 independent accumulator chains in flight.
        for (; j + 4 * L <= j1; j += 4 * L) {
          auto a0 = V::Load(orow + j);
          auto a1 = V::Load(orow + j + L);
          auto a2 = V::Load(orow + j + 2 * L);
          auto a3 = V::Load(orow + j + 3 * L);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;  // Relu outputs are often sparse
            const float* __restrict brow =
                bv + static_cast<size_t>(p) * n + j;
            const auto va = V::Broadcast(aval);
            a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
            a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
            a2 = V::Add(a2, V::Mul(va, V::Load(brow + 2 * L)));
            a3 = V::Add(a3, V::Mul(va, V::Load(brow + 3 * L)));
          }
          V::Store(orow + j, a0);
          V::Store(orow + j + L, a1);
          V::Store(orow + j + 2 * L, a2);
          V::Store(orow + j + 3 * L, a3);
        }
        // 2-vector and 1-vector remainder tiles.
        for (; j + 2 * L <= j1; j += 2 * L) {
          auto a0 = V::Load(orow + j);
          auto a1 = V::Load(orow + j + L);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            const float* __restrict brow =
                bv + static_cast<size_t>(p) * n + j;
            const auto va = V::Broadcast(aval);
            a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
            a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
          }
          V::Store(orow + j, a0);
          V::Store(orow + j + L, a1);
        }
        for (; j + L <= j1; j += L) {
          auto a0 = V::Load(orow + j);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            a0 = V::Add(a0, V::Mul(V::Broadcast(aval),
                                   V::Load(bv + static_cast<size_t>(p) * n + j)));
          }
          V::Store(orow + j, a0);
        }
        for (; j < j1; ++j) {
          float acc = orow[j];
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            acc += aval * bv[static_cast<size_t>(p) * n + j];
          }
          orow[j] = acc;
        }
      }
    }
  }
}

// out = max(a + bias, 0): elementwise, so vector lanes are bit-identical
// to the scalar loop.
template <typename V>
void BiasReluT(const float* __restrict av, const float* __restrict bv,
               float* __restrict ov, int m, int n) {
  constexpr int L = V::kLanes;
  const int nv = (n / L) * L;
  const auto zero = V::Broadcast(0.0f);
  for (int r = 0; r < m; ++r) {
    const float* __restrict arow = av + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    int c = 0;
    for (; c < nv; c += L) {
      V::Store(orow + c,
               V::Max(V::Add(V::Load(arow + c), V::Load(bv + c)), zero));
    }
    for (; c < n; ++c) {
      const float s = arow[c] + bv[c];
      orow[c] = s > 0 ? s : 0.0f;
    }
  }
}

// Fused linear layer for the packed pipeline: out = act(A * B + bias) with
// A [m, k], B [k, n], bias [n], act = ReLU when `relu` is nonzero, identity
// otherwise. Per output element this is the op chain's exact sequence —
// zero, ascending-k mul/add pairs, one bias add, then BiasRelu's `> 0`
// clamp — but the zero lives in a register instead of a pre-filled buffer
// and the bias/ReLU ride the GEMM epilogue, so the fused kernel never
// makes the zero-fill and bias passes over the output. Dropping the
// k-panel split changes only where intermediate sums sit (registers vs a
// stored row reloaded exactly), so every level is bit-identical to fill +
// matmul_forward_range + bias (+ bias_relu's clamp).
//
// Unlike MatMulForwardRangeT, the vector path has no aval == 0 skip: on
// the ReLU-sparse ff2 input (~50% random zeros) the data-dependent branch
// mispredicts constantly and measured 3.5x slower than just doing the
// multiplies. Including the zero products is bit-identical to skipping
// them here because the accumulator starts at +0 and a round-to-nearest
// sum that starts at +0 can never become -0 (exact cancellation rounds to
// +0, and adding a zero of either sign to +0 yields +0) — so every aval ==
// 0 step adds a +/-0 product to a non-negative-zero accumulator, which
// never changes a bit. matmul_forward_range cannot make that argument (its
// out is caller-provided and may hold -0), which is one more reason the
// fused kernel is separate. The width-1 policy keeps the seed's saxpy
// shape, skip included.
template <typename V>
void LinearBiasActT(const float* __restrict av, const float* __restrict bv,
                    const float* __restrict biasv, float* __restrict ov,
                    int m, int k, int n, int relu) {
  constexpr int L = V::kLanes;
  if constexpr (L == 1) {
    // Width-1 policy: the p-outer saxpy shape of MatMulForwardRangeT (see
    // the rationale there), then the op chain's bias/ReLU passes.
    for (int i = 0; i < m; ++i) {
      const float* __restrict arow = av + static_cast<size_t>(i) * k;
      float* __restrict orow = ov + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float aval = arow[p];
        if (aval == 0.0f) continue;
        const float* __restrict brow = bv + static_cast<size_t>(p) * n;
        for (int j = 0; j < n; ++j) orow[j] += aval * brow[j];
      }
      if (relu != 0) {
        for (int j = 0; j < n; ++j) {
          const float s = orow[j] + biasv[j];
          orow[j] = s > 0 ? s : 0.0f;
        }
      } else {
        for (int j = 0; j < n; ++j) orow[j] += biasv[j];
      }
    }
    return;
  }
  const auto zero = V::Broadcast(0.0f);
  for (int i = 0; i < m; ++i) {
    const float* __restrict arow = av + static_cast<size_t>(i) * k;
    float* __restrict orow = ov + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 4 * L <= n; j += 4 * L) {
      auto a0 = zero;
      auto a1 = zero;
      auto a2 = zero;
      auto a3 = zero;
      for (int p = 0; p < k; ++p) {
        const float* __restrict brow = bv + static_cast<size_t>(p) * n + j;
        const auto va = V::Broadcast(arow[p]);
        a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
        a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
        a2 = V::Add(a2, V::Mul(va, V::Load(brow + 2 * L)));
        a3 = V::Add(a3, V::Mul(va, V::Load(brow + 3 * L)));
      }
      a0 = V::Add(a0, V::Load(biasv + j));
      a1 = V::Add(a1, V::Load(biasv + j + L));
      a2 = V::Add(a2, V::Load(biasv + j + 2 * L));
      a3 = V::Add(a3, V::Load(biasv + j + 3 * L));
      if (relu != 0) {
        a0 = V::Max(a0, zero);
        a1 = V::Max(a1, zero);
        a2 = V::Max(a2, zero);
        a3 = V::Max(a3, zero);
      }
      V::Store(orow + j, a0);
      V::Store(orow + j + L, a1);
      V::Store(orow + j + 2 * L, a2);
      V::Store(orow + j + 3 * L, a3);
    }
    for (; j + 2 * L <= n; j += 2 * L) {
      auto a0 = zero;
      auto a1 = zero;
      for (int p = 0; p < k; ++p) {
        const float* __restrict brow = bv + static_cast<size_t>(p) * n + j;
        const auto va = V::Broadcast(arow[p]);
        a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
        a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
      }
      a0 = V::Add(a0, V::Load(biasv + j));
      a1 = V::Add(a1, V::Load(biasv + j + L));
      if (relu != 0) {
        a0 = V::Max(a0, zero);
        a1 = V::Max(a1, zero);
      }
      V::Store(orow + j, a0);
      V::Store(orow + j + L, a1);
    }
    for (; j + L <= n; j += L) {
      auto a0 = zero;
      for (int p = 0; p < k; ++p) {
        a0 = V::Add(a0, V::Mul(V::Broadcast(arow[p]),
                               V::Load(bv + static_cast<size_t>(p) * n + j)));
      }
      a0 = V::Add(a0, V::Load(biasv + j));
      if (relu != 0) a0 = V::Max(a0, zero);
      V::Store(orow + j, a0);
    }
    for (; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += arow[p] * bv[static_cast<size_t>(p) * n + j];
      }
      const float s = acc + biasv[j];
      orow[j] = (relu != 0 && !(s > 0)) ? 0.0f : s;
    }
  }
}

// dst[i] += src[i]: the residual-stream add of the packed pipeline.
// Elementwise, so vector lanes are bit-identical to the scalar loop.
template <typename V>
void AddRowsT(float* __restrict dst, const float* __restrict src, size_t n) {
  constexpr int L = V::kLanes;
  const size_t nv = (n / L) * L;
  size_t i = 0;
  for (; i < nv; i += L) {
    V::Store(dst + i, V::Add(V::Load(dst + i), V::Load(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

// y = ((x - mean) * recip) * gamma + beta. Stats stay scalar (reductions);
// the normalize pass is elementwise and vectorizes bit-identically.
template <typename V>
void LayerNormRowsT(const float* __restrict xv, const float* __restrict gv,
                    const float* __restrict bv, float* __restrict ov, int m,
                    int n, float invn) {
  constexpr int L = V::kLanes;
  const int nv = (n / L) * L;
  for (int r = 0; r < m; ++r) {
    const float* __restrict xrow = xv + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    float mean, recip;
    LayerNormRowStats(xrow, n, invn, &mean, &recip);
    const auto vmean = V::Broadcast(mean);
    const auto vrecip = V::Broadcast(recip);
    int c = 0;
    for (; c < nv; c += L) {
      const auto xhat = V::Mul(V::Sub(V::Load(xrow + c), vmean), vrecip);
      V::Store(orow + c, V::Add(V::Mul(xhat, V::Load(gv + c)), V::Load(bv + c)));
    }
    for (; c < n; ++c) {
      orow[c] = ((xrow[c] - mean) * recip) * gv[c] + bv[c];
    }
  }
}

// Masked row softmax over the first valid[r] columns. The max reduction
// vectorizes (exact) and exp vectorizes through V::Exp (scalar level:
// std::exp, bit-exact to seed; vector levels: polynomial, epsilon-gated);
// the normalizing sum stays scalar in ascending order over the stored exp
// values, and the final divide is elementwise.
template <typename V>
void SoftmaxRowsMaskedT(const float* __restrict av, float* __restrict ov,
                        const int* __restrict valid, int m, int n) {
  constexpr int L = V::kLanes;
  for (int r = 0; r < m; ++r) {
    const int v = std::min(std::max(valid[r], 0), n);
    const float* __restrict row = av + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    if (v == 0) continue;  // row already zero
    float max_v = row[0];
    int c = 1;
    if (v >= L) {
      auto vmax = V::Load(row);
      for (c = L; c + L <= v; c += L) vmax = V::Max(vmax, V::Load(row + c));
      max_v = V::HMax(vmax);
    }
    for (; c < v; ++c) max_v = std::max(max_v, row[c]);
    const int cv = (v / L) * L;
    {
      const auto vm = V::Broadcast(max_v);
      int j = 0;
      for (; j < cv; j += L) {
        V::Store(orow + j, V::Exp(V::Sub(V::Load(row + j), vm)));
      }
      for (; j < v; ++j) orow[j] = std::exp(row[j] - max_v);
    }
    float total = 0;
    for (int j = 0; j < v; ++j) total += orow[j];
    const auto vtotal = V::Broadcast(total);
    int j = 0;
    for (; j < cv; j += L) V::Store(orow + j, V::Div(V::Load(orow + j), vtotal));
    for (; j < v; ++j) orow[j] /= total;
  }
}

// Fused packed multi-head attention forward (semantics documented at
// nn::MultiHeadAttentionPacked). The score and context loops are
// axpy-shaped and vectorize across their independent output lanes; the
// softmax inside follows the same max-vector/exp-via-V::Exp/sum-scalar
// split as SoftmaxRowsMaskedT.
template <typename V>
void AttentionForwardPackedT(const float* __restrict qv,
                             const float* __restrict kv,
                             const float* __restrict vv, float* __restrict ov,
                             const int* __restrict offsets,
                             const int* __restrict lengths, int num_seqs,
                             int num_heads, int dim, float scale) {
  constexpr int L = V::kLanes;
  const int dh = dim / num_heads;
  const int dhv = (dh / L) * L;
  std::vector<float> probs;  // per-(sequence, head) [len, len] scratch
  std::vector<float> kt;     // packed k^T head block, [dh, len]
  for (int s = 0; s < num_seqs; ++s) {
    const int off = offsets[s];
    const int len = lengths[s];
    const int lenv = (len / L) * L;
    probs.resize(static_cast<size_t>(len) * len);
    kt.resize(static_cast<size_t>(dh) * len);
    for (int h = 0; h < num_heads; ++h) {
      const int col0 = h * dh;
      // Pack the head's key block transposed so the score loops run
      // saxpy-style over a contiguous j dimension.
      for (int j = 0; j < len; ++j) {
        const float* __restrict krow =
            kv + static_cast<size_t>(off + j) * dim + col0;
        for (int c = 0; c < dh; ++c) {
          kt[static_cast<size_t>(c) * len + j] = krow[c];
        }
      }
      // Scores then row softmax: ascending-c accumulation scaled once
      // after the sum, then max/exp/sum/divide per row — the same
      // arithmetic as Scale(MatMul(qh, Transpose(kh)), scale) and
      // SoftmaxRows, element for element.
      for (int i = 0; i < len; ++i) {
        const float* __restrict qrow =
            qv + static_cast<size_t>(off + i) * dim + col0;
        float* __restrict prow = probs.data() + static_cast<size_t>(i) * len;
        // Scores q·k, register-tiled over j like MatMulForwardRangeT: the
        // per-element sum still accumulates ascending c from zero, so the
        // bits match the old zero-then-axpy form at every level. The
        // scalar policy keeps the axpy shape (identical bits, better
        // locality at width 1 — same reasoning as MatMulForwardRangeT).
        if constexpr (L == 1) {
          for (int j = 0; j < len; ++j) prow[j] = 0.0f;
          for (int c = 0; c < dh; ++c) {
            const float qc = qrow[c];
            const float* __restrict ktrow =
                kt.data() + static_cast<size_t>(c) * len;
            for (int j = 0; j < len; ++j) prow[j] += qc * ktrow[j];
          }
        } else {
          const float* __restrict ktv = kt.data();
          const auto zero = V::Broadcast(0.0f);
          int j = 0;
          for (; j + 2 * L <= len; j += 2 * L) {
            auto a0 = zero;
            auto a1 = zero;
            for (int c = 0; c < dh; ++c) {
              const float* __restrict ktrow =
                  ktv + static_cast<size_t>(c) * len + j;
              const auto vq = V::Broadcast(qrow[c]);
              a0 = V::Add(a0, V::Mul(vq, V::Load(ktrow)));
              a1 = V::Add(a1, V::Mul(vq, V::Load(ktrow + L)));
            }
            V::Store(prow + j, a0);
            V::Store(prow + j + L, a1);
          }
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktv + static_cast<size_t>(c) * len +
                                             j)));
            }
            V::Store(prow + j, a0);
          }
          for (; j < len; ++j) {
            float acc = 0;
            for (int c = 0; c < dh; ++c) {
              acc += qrow[c] * ktv[static_cast<size_t>(c) * len + j];
            }
            prow[j] = acc;
          }
        }
        // Scale all scores, then take the row max (exact reduction).
        {
          const auto vs = V::Broadcast(scale);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Mul(V::Load(prow + j), vs));
          }
          for (; j < len; ++j) prow[j] *= scale;
        }
        float max_v = prow[0];
        {
          int j = 1;
          if (len >= L) {
            auto vmax = V::Load(prow);
            for (j = L; j + L <= len; j += L) {
              vmax = V::Max(vmax, V::Load(prow + j));
            }
            max_v = V::HMax(vmax);
          }
          for (; j < len; ++j) max_v = std::max(max_v, prow[j]);
        }
        {
          const auto vm = V::Broadcast(max_v);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Exp(V::Sub(V::Load(prow + j), vm)));
          }
          for (; j < len; ++j) prow[j] = std::exp(prow[j] - max_v);
        }
        float sum = 0;
        for (int j = 0; j < len; ++j) sum += prow[j];
        {
          const auto vsum = V::Broadcast(sum);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Div(V::Load(prow + j), vsum));
          }
          for (; j < len; ++j) prow[j] /= sum;
        }
      }
      // Context = probs * vh: j-outer saxpy over the contiguous c lanes of
      // v; per element this accumulates ascending j, exactly like
      // MatMul(probs, vh).
      for (int i = 0; i < len; ++i) {
        const float* __restrict prow =
            probs.data() + static_cast<size_t>(i) * len;
        float* __restrict orow = ov + static_cast<size_t>(off + i) * dim + col0;
        // Context probs * vh, register-tiled over the head lanes c: the
        // per-element sum accumulates ascending j from zero, exactly like
        // the old zero-then-axpy form. The scalar policy keeps the axpy
        // shape (identical bits, better locality at width 1).
        if constexpr (L == 1) {
          for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
          for (int j = 0; j < len; ++j) {
            const float p = prow[j];
            const float* __restrict vrow =
                vv + static_cast<size_t>(off + j) * dim + col0;
            for (int c = 0; c < dh; ++c) orow[c] += p * vrow[c];
          }
        } else {
          const auto zero = V::Broadcast(0.0f);
          int c = 0;
          for (; c < dhv; c += L) {
            auto a0 = zero;
            for (int j = 0; j < len; ++j) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(prow[j]),
                                     V::Load(vv + static_cast<size_t>(off + j) *
                                                      dim +
                                             col0 + c)));
            }
            V::Store(orow + c, a0);
          }
          for (; c < dh; ++c) {
            float acc = 0;
            for (int j = 0; j < len; ++j) {
              acc +=
                  prow[j] * vv[static_cast<size_t>(off + j) * dim + col0 + c];
            }
            orow[c] = acc;
          }
        }
      }
    }
  }
}

// Fused embedding gather + positional add (see simd.h). Three contiguous
// segment copies fused with the positional add into one pass per row:
// out[c] = e[c] + pos[c], elementwise in ascending order, so every level
// produces the same bits as the copy-then-add the op chain did.
template <typename V>
void EmbedGatherAddT(const float* __restrict e1, const float* __restrict e2,
                     const float* __restrict e3, const float* __restrict pos,
                     const int* __restrict ids1, const int* __restrict ids2,
                     const int* __restrict ids3,
                     const int* __restrict positions, float* __restrict out,
                     int rows, int d1, int d2, int d3) {
  constexpr int L = V::kLanes;
  const int d = d1 + d2 + d3;
  auto seg = [](const float* __restrict src, const float* __restrict add,
                float* __restrict dst, int n) {
    int c = 0;
    for (; c + L <= n; c += L) {
      V::Store(dst + c, V::Add(V::Load(src + c), V::Load(add + c)));
    }
    for (; c < n; ++c) dst[c] = src[c] + add[c];
  };
  for (int r = 0; r < rows; ++r) {
    float* __restrict row = out + static_cast<size_t>(r) * d;
    const float* __restrict prow =
        pos + static_cast<size_t>(positions[r]) * d;
    seg(e1 + static_cast<size_t>(ids1[r]) * d1, prow, row, d1);
    seg(e2 + static_cast<size_t>(ids2[r]) * d2, prow + d1, row + d1, d2);
    seg(e3 + static_cast<size_t>(ids3[r]) * d3, prow + d1 + d2,
        row + d1 + d2, d3);
  }
}

// Head-blocked attention forward (see simd.h for the layouts). This is
// AttentionForwardPackedT with the per-sequence k^T repack hoisted out:
// the caller transposes K once per layer into kbt [head][head_dim][rows]
// and blocks V into vb [head][rows][head_dim], so the score loops stream
// kbt rows (stride total_rows instead of a per-sequence pack) and the
// context loops read contiguous head_dim lanes of vb instead of striding
// `dim` floats between value rows.
//
// The vector path additionally tiles queries by kQueryTile: serving
// sequences are short (tens of tokens) and head_dim is small, so a
// single-query loop is latency-bound — one serially dependent
// accumulator chain per output vector. Four queries share every kt/v
// load and run four independent chains, which is what moves this kernel
// from memory-latency-bound to throughput-bound at serving shapes.
// Tiling across queries never touches any single element's accumulation
// order (scores still sum ascending c, context ascending j, the scale
// is one multiply on the finished dot either way), so the kernel stays
// bit-identical to AttentionForwardPackedT at every level, and the
// scalar level remains bit-identical to per-plan Encode.
template <typename V>
void AttentionForwardBlockedT(const float* __restrict qv,
                              const float* __restrict kbt,
                              const float* __restrict vb,
                              float* __restrict ov,
                              const int* __restrict offsets,
                              const int* __restrict lengths, int num_seqs,
                              int num_heads, int total_rows, int dim,
                              float scale, float* __restrict probs) {
  constexpr int L = V::kLanes;
  constexpr int kQueryTile = 4;
  const int dh = dim / num_heads;
  for (int s = 0; s < num_seqs; ++s) {
    const int off = offsets[s];
    const int len = lengths[s];
    const int lenv = (len / L) * L;
    for (int h = 0; h < num_heads; ++h) {
      const int col0 = h * dh;
      // This head's key block, transposed: row c holds k[:, col0 + c] with
      // stride total_rows; the sequence's columns start at offset `off`.
      const float* __restrict ktb =
          kbt + (static_cast<size_t>(h) * dh) * total_rows + off;
      // This head's value block: row j of the sequence is dh contiguous
      // floats.
      const float* __restrict vbb =
          vb + (static_cast<size_t>(h) * total_rows + off) * dh;
      // --- Phase 1: scaled score rows, query-tiled ---------------------
      if constexpr (L == 1) {
        for (int i = 0; i < len; ++i) {
          const float* __restrict qrow =
              qv + static_cast<size_t>(off + i) * dim + col0;
          float* __restrict prow = probs + static_cast<size_t>(i) * len;
          for (int j = 0; j < len; ++j) prow[j] = 0.0f;
          for (int c = 0; c < dh; ++c) {
            const float qc = qrow[c];
            const float* __restrict ktrow =
                ktb + static_cast<size_t>(c) * total_rows;
            for (int j = 0; j < len; ++j) prow[j] += qc * ktrow[j];
          }
          for (int j = 0; j < len; ++j) prow[j] *= scale;
        }
      } else {
        const auto zero = V::Broadcast(0.0f);
        const auto vs = V::Broadcast(scale);
        int i = 0;
        for (; i + kQueryTile <= len; i += kQueryTile) {
          const float* __restrict q0 =
              qv + static_cast<size_t>(off + i) * dim + col0;
          const float* __restrict q1 = q0 + dim;
          const float* __restrict q2 = q1 + dim;
          const float* __restrict q3 = q2 + dim;
          float* __restrict p0 = probs + static_cast<size_t>(i) * len;
          float* __restrict p1 = p0 + len;
          float* __restrict p2 = p1 + len;
          float* __restrict p3 = p2 + len;
          int j = 0;
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int c = 0; c < dh; ++c) {
              const auto kt = V::Load(
                  ktb + static_cast<size_t>(c) * total_rows + j);
              a0 = V::Add(a0, V::Mul(V::Broadcast(q0[c]), kt));
              a1 = V::Add(a1, V::Mul(V::Broadcast(q1[c]), kt));
              a2 = V::Add(a2, V::Mul(V::Broadcast(q2[c]), kt));
              a3 = V::Add(a3, V::Mul(V::Broadcast(q3[c]), kt));
            }
            V::Store(p0 + j, V::Mul(a0, vs));
            V::Store(p1 + j, V::Mul(a1, vs));
            V::Store(p2 + j, V::Mul(a2, vs));
            V::Store(p3 + j, V::Mul(a3, vs));
          }
          if (j < len && len >= L) {
            // Overlapping tail vector: recompute the last full vector of
            // scores ending at `len`. Each overlapped element is the same
            // ascending-c dot as before, so the second store writes the
            // same bits — cheaper than a scalar tail and bit-identical.
            const int jt = len - L;
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int c = 0; c < dh; ++c) {
              const auto kt = V::Load(
                  ktb + static_cast<size_t>(c) * total_rows + jt);
              a0 = V::Add(a0, V::Mul(V::Broadcast(q0[c]), kt));
              a1 = V::Add(a1, V::Mul(V::Broadcast(q1[c]), kt));
              a2 = V::Add(a2, V::Mul(V::Broadcast(q2[c]), kt));
              a3 = V::Add(a3, V::Mul(V::Broadcast(q3[c]), kt));
            }
            V::Store(p0 + jt, V::Mul(a0, vs));
            V::Store(p1 + jt, V::Mul(a1, vs));
            V::Store(p2 + jt, V::Mul(a2, vs));
            V::Store(p3 + jt, V::Mul(a3, vs));
          } else {
            for (; j < len; ++j) {
              float c0 = 0, c1 = 0, c2 = 0, c3 = 0;
              for (int c = 0; c < dh; ++c) {
                const float kc = ktb[static_cast<size_t>(c) * total_rows + j];
                c0 += q0[c] * kc;
                c1 += q1[c] * kc;
                c2 += q2[c] * kc;
                c3 += q3[c] * kc;
              }
              p0[j] = c0 * scale;
              p1[j] = c1 * scale;
              p2[j] = c2 * scale;
              p3[j] = c3 * scale;
            }
          }
        }
        for (; i < len; ++i) {
          const float* __restrict qrow =
              qv + static_cast<size_t>(off + i) * dim + col0;
          float* __restrict prow = probs + static_cast<size_t>(i) * len;
          int j = 0;
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktb + static_cast<size_t>(c) *
                                                       total_rows +
                                             j)));
            }
            V::Store(prow + j, V::Mul(a0, vs));
          }
          if (j < len && len >= L) {
            const int jt = len - L;
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktb + static_cast<size_t>(c) *
                                                       total_rows +
                                             jt)));
            }
            V::Store(prow + jt, V::Mul(a0, vs));
          } else {
            for (; j < len; ++j) {
              float acc = 0;
              for (int c = 0; c < dh; ++c) {
                acc += qrow[c] * ktb[static_cast<size_t>(c) * total_rows + j];
              }
              prow[j] = acc * scale;
            }
          }
        }
      }
      // --- Phase 2: row softmax — max, exp, sum, divide, the same split
      // as AttentionForwardPackedT (and SoftmaxRowsMaskedT) -------------
      for (int i = 0; i < len; ++i) {
        float* __restrict prow = probs + static_cast<size_t>(i) * len;
        float max_v = prow[0];
        {
          int j = 1;
          if (len >= L) {
            auto vmax = V::Load(prow);
            for (j = L; j + L <= len; j += L) {
              vmax = V::Max(vmax, V::Load(prow + j));
            }
            max_v = V::HMax(vmax);
          }
          for (; j < len; ++j) max_v = std::max(max_v, prow[j]);
        }
        {
          const auto vm = V::Broadcast(max_v);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Exp(V::Sub(V::Load(prow + j), vm)));
          }
          for (; j < len; ++j) prow[j] = std::exp(prow[j] - max_v);
        }
        float sum = 0;
        for (int j = 0; j < len; ++j) sum += prow[j];
        {
          const auto vsum = V::Broadcast(sum);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Div(V::Load(prow + j), vsum));
          }
          for (; j < len; ++j) prow[j] /= sum;
        }
      }
      // --- Phase 3: context = probs * vh over the contiguous rows of
      // this head's value block, query-tiled like the scores; per element
      // accumulates ascending j, like AttentionForwardPackedT ----------
      if constexpr (L == 1) {
        for (int i = 0; i < len; ++i) {
          const float* __restrict prow = probs + static_cast<size_t>(i) * len;
          float* __restrict orow =
              ov + static_cast<size_t>(off + i) * dim + col0;
          for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
          for (int j = 0; j < len; ++j) {
            const float p = prow[j];
            const float* __restrict vrow = vbb + static_cast<size_t>(j) * dh;
            for (int c = 0; c < dh; ++c) orow[c] += p * vrow[c];
          }
        }
      } else {
        const int dhv = (dh / L) * L;
        const auto zero = V::Broadcast(0.0f);
        int i = 0;
        for (; i + kQueryTile <= len; i += kQueryTile) {
          const float* __restrict p0 = probs + static_cast<size_t>(i) * len;
          const float* __restrict p1 = p0 + len;
          const float* __restrict p2 = p1 + len;
          const float* __restrict p3 = p2 + len;
          float* __restrict o0 =
              ov + static_cast<size_t>(off + i) * dim + col0;
          float* __restrict o1 = o0 + dim;
          float* __restrict o2 = o1 + dim;
          float* __restrict o3 = o2 + dim;
          int c = 0;
          for (; c < dhv; c += L) {
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int j = 0; j < len; ++j) {
              const auto vrow =
                  V::Load(vbb + static_cast<size_t>(j) * dh + c);
              a0 = V::Add(a0, V::Mul(V::Broadcast(p0[j]), vrow));
              a1 = V::Add(a1, V::Mul(V::Broadcast(p1[j]), vrow));
              a2 = V::Add(a2, V::Mul(V::Broadcast(p2[j]), vrow));
              a3 = V::Add(a3, V::Mul(V::Broadcast(p3[j]), vrow));
            }
            V::Store(o0 + c, a0);
            V::Store(o1 + c, a1);
            V::Store(o2 + c, a2);
            V::Store(o3 + c, a3);
          }
          if (c < dh && dh >= L) {
            // Overlapping tail vector over the last L head columns: the
            // overlapped lanes redo the same ascending-j sums and store
            // the same bits (see the score tail above).
            const int ct = dh - L;
            auto a0 = zero;
            auto a1 = zero;
            auto a2 = zero;
            auto a3 = zero;
            for (int j = 0; j < len; ++j) {
              const auto vrow =
                  V::Load(vbb + static_cast<size_t>(j) * dh + ct);
              a0 = V::Add(a0, V::Mul(V::Broadcast(p0[j]), vrow));
              a1 = V::Add(a1, V::Mul(V::Broadcast(p1[j]), vrow));
              a2 = V::Add(a2, V::Mul(V::Broadcast(p2[j]), vrow));
              a3 = V::Add(a3, V::Mul(V::Broadcast(p3[j]), vrow));
            }
            V::Store(o0 + ct, a0);
            V::Store(o1 + ct, a1);
            V::Store(o2 + ct, a2);
            V::Store(o3 + ct, a3);
          } else {
            for (; c < dh; ++c) {
              float c0 = 0, c1 = 0, c2 = 0, c3 = 0;
              for (int j = 0; j < len; ++j) {
                const float vv = vbb[static_cast<size_t>(j) * dh + c];
                c0 += p0[j] * vv;
                c1 += p1[j] * vv;
                c2 += p2[j] * vv;
                c3 += p3[j] * vv;
              }
              o0[c] = c0;
              o1[c] = c1;
              o2[c] = c2;
              o3[c] = c3;
            }
          }
        }
        for (; i < len; ++i) {
          const float* __restrict prow = probs + static_cast<size_t>(i) * len;
          float* __restrict orow =
              ov + static_cast<size_t>(off + i) * dim + col0;
          int c = 0;
          for (; c < dhv; c += L) {
            auto a0 = zero;
            for (int j = 0; j < len; ++j) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(prow[j]),
                                     V::Load(vbb + static_cast<size_t>(j) * dh +
                                             c)));
            }
            V::Store(orow + c, a0);
          }
          if (c < dh && dh >= L) {
            const int ct = dh - L;
            auto a0 = zero;
            for (int j = 0; j < len; ++j) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(prow[j]),
                                     V::Load(vbb + static_cast<size_t>(j) * dh +
                                             ct)));
            }
            V::Store(orow + ct, a0);
          } else {
            for (; c < dh; ++c) {
              float acc = 0;
              for (int j = 0; j < len; ++j) {
                acc += prow[j] * vbb[static_cast<size_t>(j) * dh + c];
              }
              orow[c] = acc;
            }
          }
        }
      }
    }
  }
}

// --- Backward kernel bodies ------------------------------------------
//
// Width-1 instantiations reproduce the pre-SIMD backward closures of
// nn/tensor.cc statement for statement (the scalar table is the training
// bit-exactness reference, just as for the forwards). The vector paths
// follow the same discipline as the forwards: lanes run across
// independent gradient elements, never across a reduction, and every
// reduction keeps its scalar ascending order inside each lane. Gradient
// buffers have one extra invariant the vector paths lean on: a grad
// buffer starts zero-filled (+0) and is only ever accumulated into, and
// under round-to-nearest a sum can only produce -0 when both operands
// are -0 — so by induction a grad element is never -0, and adding a +/-0
// term to it leaves its bits unchanged. That is what makes the masked
// adds in BiasActBackwardT bit-safe.

// dA[i0:i1, :] += dOut[i0:i1, :] * B^T. The seed closure computes each
// dA element as one complete ascending-j dot in a register, added to dA
// once — note this is *not* the forward's accumulate-into-out shape, so
// the vector path cannot reuse MatMulForwardRangeT. Instead it runs
// register-tiled lanes across the p (dA column) dimension over a
// transposed copy of B: each lane's dot still starts at zero and
// accumulates ascending j, followed by the one final add, so every level
// produces the seed's bits. The transpose is pure data movement (never
// rounds) into a thread-local scratch, rebuilt per ParallelFor range —
// ranges are capped at 4x the thread count, and the training matrices
// are small enough (k, n <= a few hundred) that the repack is noise next
// to the O(m*k*n) dots it unlocks.
template <typename V>
void MatMulBackwardAT(const float* __restrict og, const float* __restrict bv,
                      float* __restrict ag, int i0, int i1, int k, int n) {
  constexpr int L = V::kLanes;
  if constexpr (L == 1) {
    for (int i = i0; i < i1; ++i) {
      const float* __restrict orow = og + static_cast<size_t>(i) * n;
      float* __restrict arow = ag + static_cast<size_t>(i) * k;
      for (int p = 0; p < k; ++p) {
        const float* __restrict brow = bv + static_cast<size_t>(p) * n;
        float dot = 0.0f;
        for (int j = 0; j < n; ++j) dot += orow[j] * brow[j];
        arow[p] += dot;
      }
    }
  } else {
    static thread_local std::vector<float> bt;  // B^T scratch, [n, k]
    bt.resize(static_cast<size_t>(n) * k);
    float* __restrict btv = bt.data();
    for (int p = 0; p < k; ++p) {
      const float* __restrict brow = bv + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) btv[static_cast<size_t>(j) * k + p] = brow[j];
    }
    const auto zero = V::Broadcast(0.0f);
    for (int i = i0; i < i1; ++i) {
      const float* __restrict orow = og + static_cast<size_t>(i) * n;
      float* __restrict arow = ag + static_cast<size_t>(i) * k;
      int p = 0;
      for (; p + 4 * L <= k; p += 4 * L) {
        auto a0 = zero;
        auto a1 = zero;
        auto a2 = zero;
        auto a3 = zero;
        for (int j = 0; j < n; ++j) {
          const float* __restrict btrow = btv + static_cast<size_t>(j) * k + p;
          const auto vo = V::Broadcast(orow[j]);
          a0 = V::Add(a0, V::Mul(vo, V::Load(btrow)));
          a1 = V::Add(a1, V::Mul(vo, V::Load(btrow + L)));
          a2 = V::Add(a2, V::Mul(vo, V::Load(btrow + 2 * L)));
          a3 = V::Add(a3, V::Mul(vo, V::Load(btrow + 3 * L)));
        }
        V::Store(arow + p, V::Add(V::Load(arow + p), a0));
        V::Store(arow + p + L, V::Add(V::Load(arow + p + L), a1));
        V::Store(arow + p + 2 * L, V::Add(V::Load(arow + p + 2 * L), a2));
        V::Store(arow + p + 3 * L, V::Add(V::Load(arow + p + 3 * L), a3));
      }
      for (; p + L <= k; p += L) {
        auto a0 = zero;
        for (int j = 0; j < n; ++j) {
          a0 = V::Add(a0, V::Mul(V::Broadcast(orow[j]),
                                 V::Load(btv + static_cast<size_t>(j) * k + p)));
        }
        V::Store(arow + p, V::Add(V::Load(arow + p), a0));
      }
      for (; p < k; ++p) {
        float dot = 0.0f;
        for (int j = 0; j < n; ++j) {
          dot += orow[j] * btv[static_cast<size_t>(j) * k + p];
        }
        arow[p] += dot;
      }
    }
  }
}

// dB[p0:p1, :] += (A^T * dOut)[p0:p1, :] as rank-1 row updates: for each
// i ascending, axpy dOut row i into the dB rows selected by A row i. Per
// output element the i dimension accumulates in ascending order
// regardless of the p partition, and the seed's aval == 0 skip (ReLU
// inputs are often sparse) is kept at every level — the surviving value
// subsequence is identical, so so are the bits. The vector path runs
// lanes across the contiguous j dimension of the axpy.
template <typename V>
void MatMulBackwardBT(const float* __restrict av, const float* __restrict og,
                      float* __restrict bg, int p0, int p1, int m, int k,
                      int n) {
  constexpr int L = V::kLanes;
  for (int i = 0; i < m; ++i) {
    const float* __restrict arow = av + static_cast<size_t>(i) * k;
    const float* __restrict orow = og + static_cast<size_t>(i) * n;
    for (int p = p0; p < p1; ++p) {
      const float aval = arow[p];
      if (aval == 0.0f) continue;
      float* __restrict brow = bg + static_cast<size_t>(p) * n;
      if constexpr (L == 1) {
        for (int j = 0; j < n; ++j) brow[j] += aval * orow[j];
      } else {
        const auto va = V::Broadcast(aval);
        int j = 0;
        for (; j + 2 * L <= n; j += 2 * L) {
          V::Store(brow + j,
                   V::Add(V::Load(brow + j), V::Mul(va, V::Load(orow + j))));
          V::Store(brow + j + L, V::Add(V::Load(brow + j + L),
                                        V::Mul(va, V::Load(orow + j + L))));
        }
        for (; j + L <= n; j += L) {
          V::Store(brow + j,
                   V::Add(V::Load(brow + j), V::Mul(va, V::Load(orow + j))));
        }
        for (; j < n; ++j) brow[j] += aval * orow[j];
      }
    }
  }
}

// Backward of bias_relu, gated on the forward *output* (ov > 0 iff the
// pre-activation was > 0). The vector path turns the branch into a mask:
// gated lanes contribute And(og, 0) == +0, and adding +/-0 to a grad
// element never changes its bits (grad buffers are never -0, see the
// header note above) — so the masked add is bit-identical to the seed's
// skip. bg accumulates rows in ascending order per column either way.
// NaN forward outputs (already diverged training) gate differently
// between the quiet vector compare and the scalar `<= 0`, matching the
// forward kernels' NaN posture.
template <typename V>
void BiasActBackwardT(const float* __restrict ov, const float* __restrict og,
                      float* __restrict ag, float* __restrict bg, int m,
                      int n) {
  constexpr int L = V::kLanes;
  if constexpr (L == 1) {
    for (int r = 0; r < m; ++r) {
      const size_t base = static_cast<size_t>(r) * n;
      for (int c = 0; c < n; ++c) {
        if (ov[base + c] <= 0) continue;
        const float g = og[base + c];
        if (ag) ag[base + c] += g;
        if (bg) bg[c] += g;
      }
    }
  } else {
    const int nv = (n / L) * L;
    for (int r = 0; r < m; ++r) {
      const float* __restrict ovr = ov + static_cast<size_t>(r) * n;
      const float* __restrict ogr = og + static_cast<size_t>(r) * n;
      float* __restrict agr = ag ? ag + static_cast<size_t>(r) * n : nullptr;
      int c = 0;
      for (; c < nv; c += L) {
        const auto g = V::And(V::Load(ogr + c), V::GtZero(V::Load(ovr + c)));
        if (agr) V::Store(agr + c, V::Add(V::Load(agr + c), g));
        if (bg) V::Store(bg + c, V::Add(V::Load(bg + c), g));
      }
      for (; c < n; ++c) {
        if (ovr[c] <= 0) continue;
        const float g = ogr[c];
        if (agr) agr[c] += g;
        if (bg) bg[c] += g;
      }
    }
  }
}

// Backward of layer_norm_rows. Row statistics recompute through the
// shared LayerNormRowStats (same bits as the forward), and the m1/m2
// reductions stay scalar ascending at every level. The gamma/beta and
// input-gradient passes are elementwise: hoisting them out of the
// reduction loop (vector levels) touches each gg[c]/bg[c] element once
// per row in the same ascending row order, so their bits are unchanged,
// and the xg expression keeps the seed's exact operation tree
// recip * ((dy * gamma - m1) - xhat * m2).
template <typename V>
void LayerNormRowsBackwardT(const float* __restrict xv,
                            const float* __restrict gv,
                            const float* __restrict og, float* __restrict xg,
                            float* __restrict gg, float* __restrict bg, int m,
                            int n, float invn) {
  constexpr int L = V::kLanes;
  for (int r = 0; r < m; ++r) {
    const float* __restrict xrow = xv + static_cast<size_t>(r) * n;
    const float* __restrict grow = og + static_cast<size_t>(r) * n;
    float mean, recip;
    LayerNormRowStats(xrow, n, invn, &mean, &recip);
    float m1 = 0, m2 = 0;
    if constexpr (L == 1) {
      for (int c = 0; c < n; ++c) {
        const float xhat = (xrow[c] - mean) * recip;
        const float dxhat = grow[c] * gv[c];
        m1 += dxhat;
        m2 += dxhat * xhat;
        if (gg) gg[c] += grow[c] * xhat;
        if (bg) bg[c] += grow[c];
      }
    } else {
      for (int c = 0; c < n; ++c) {
        const float xhat = (xrow[c] - mean) * recip;
        const float dxhat = grow[c] * gv[c];
        m1 += dxhat;
        m2 += dxhat * xhat;
      }
      const int nv = (n / L) * L;
      const auto vmean = V::Broadcast(mean);
      const auto vrecip = V::Broadcast(recip);
      int c = 0;
      for (; c < nv; c += L) {
        const auto g = V::Load(grow + c);
        if (gg) {
          const auto xhat =
              V::Mul(V::Sub(V::Load(xrow + c), vmean), vrecip);
          V::Store(gg + c, V::Add(V::Load(gg + c), V::Mul(g, xhat)));
        }
        if (bg) V::Store(bg + c, V::Add(V::Load(bg + c), g));
      }
      for (; c < n; ++c) {
        const float xhat = (xrow[c] - mean) * recip;
        if (gg) gg[c] += grow[c] * xhat;
        if (bg) bg[c] += grow[c];
      }
    }
    if (xg == nullptr) continue;
    m1 *= invn;
    m2 *= invn;
    float* __restrict xgrow = xg + static_cast<size_t>(r) * n;
    if constexpr (L == 1) {
      for (int c = 0; c < n; ++c) {
        const float xhat = (xrow[c] - mean) * recip;
        xgrow[c] += recip * (grow[c] * gv[c] - m1 - xhat * m2);
      }
    } else {
      const int nv = (n / L) * L;
      const auto vmean = V::Broadcast(mean);
      const auto vrecip = V::Broadcast(recip);
      const auto vm1 = V::Broadcast(m1);
      const auto vm2 = V::Broadcast(m2);
      int c = 0;
      for (; c < nv; c += L) {
        const auto xhat = V::Mul(V::Sub(V::Load(xrow + c), vmean), vrecip);
        const auto t = V::Sub(
            V::Sub(V::Mul(V::Load(grow + c), V::Load(gv + c)), vm1),
            V::Mul(xhat, vm2));
        V::Store(xgrow + c, V::Add(V::Load(xgrow + c), V::Mul(vrecip, t)));
      }
      for (; c < n; ++c) {
        const float xhat = (xrow[c] - mean) * recip;
        xgrow[c] += recip * (grow[c] * gv[c] - m1 - xhat * m2);
      }
    }
  }
}

// Backward of softmax_rows_masked: the y*gy dot stays scalar ascending
// (reduction); the gx pass is elementwise and vectorizes bit-identically.
template <typename V>
void SoftmaxRowsMaskedBackwardT(const float* __restrict yv,
                                const float* __restrict gy,
                                float* __restrict gx,
                                const int* __restrict valid, int m, int n) {
  constexpr int L = V::kLanes;
  for (int r = 0; r < m; ++r) {
    const int v = std::min(std::max(valid[r], 0), n);
    const float* __restrict y = yv + static_cast<size_t>(r) * n;
    const float* __restrict gyr = gy + static_cast<size_t>(r) * n;
    float* __restrict gxr = gx + static_cast<size_t>(r) * n;
    float dot = 0;
    for (int c = 0; c < v; ++c) dot += y[c] * gyr[c];
    if constexpr (L == 1) {
      for (int c = 0; c < v; ++c) gxr[c] += y[c] * (gyr[c] - dot);
    } else {
      const auto vdot = V::Broadcast(dot);
      int c = 0;
      for (; c + L <= v; c += L) {
        V::Store(gxr + c,
                 V::Add(V::Load(gxr + c),
                        V::Mul(V::Load(y + c), V::Sub(V::Load(gyr + c), vdot))));
      }
      for (; c < v; ++c) gxr[c] += y[c] * (gyr[c] - dot);
    }
  }
}

// Backward of attention_forward_packed. The probabilities are recomputed
// rather than cached across the graph's lifetime (the seed closure's
// trade-off, kept here): per element the score dot accumulates ascending
// c from zero and is scaled once, the max reduction is exact, exp goes
// through V::Exp — so at any level the recomputed probs match that
// level's *forward* bits exactly, and only cross-level equality is
// epsilon-gated — and the normalizing sum stays scalar ascending. The
// gradient phases keep the seed's accumulation orders: d_probs lanes run
// across key positions j over a transposed value pack (each lane's dot
// ascending c from zero), and the v/q/k gradient axpys run lanes across
// the head columns with their per-j memory accumulation order untouched.
template <typename V>
void AttentionBackwardPackedT(const float* __restrict qv,
                              const float* __restrict kv,
                              const float* __restrict vv,
                              const float* __restrict og, float* __restrict qg,
                              float* __restrict kg, float* __restrict vg,
                              const int* __restrict offsets,
                              const int* __restrict lengths, int num_seqs,
                              int num_heads, int dim, float scale) {
  constexpr int L = V::kLanes;
  const int dh = dim / num_heads;
  const int dhv = (dh / L) * L;
  std::vector<float> probs, dprobs;
  std::vector<float> kt, vt;  // vector levels: k^T / v^T head packs [dh, len]
  for (int s = 0; s < num_seqs; ++s) {
    const int off = offsets[s];
    const int len = lengths[s];
    probs.resize(static_cast<size_t>(len) * len);
    dprobs.resize(static_cast<size_t>(len) * len);
    if constexpr (L != 1) {
      kt.resize(static_cast<size_t>(dh) * len);
      vt.resize(static_cast<size_t>(dh) * len);
    }
    for (int h = 0; h < num_heads; ++h) {
      const int col0 = h * dh;
      if constexpr (L != 1) {
        for (int j = 0; j < len; ++j) {
          const float* __restrict krow =
              kv + static_cast<size_t>(off + j) * dim + col0;
          const float* __restrict vrow =
              vv + static_cast<size_t>(off + j) * dim + col0;
          for (int c = 0; c < dh; ++c) {
            kt[static_cast<size_t>(c) * len + j] = krow[c];
            vt[static_cast<size_t>(c) * len + j] = vrow[c];
          }
        }
      }
      // --- Recompute this head's attention probabilities ---------------
      for (int i = 0; i < len; ++i) {
        const float* __restrict qrow =
            qv + static_cast<size_t>(off + i) * dim + col0;
        float* __restrict prow = probs.data() + static_cast<size_t>(i) * len;
        if constexpr (L == 1) {
          for (int j = 0; j < len; ++j) {
            const float* __restrict krow =
                kv + static_cast<size_t>(off + j) * dim + col0;
            float dot = 0;
            for (int c = 0; c < dh; ++c) dot += qrow[c] * krow[c];
            prow[j] = dot * scale;
          }
          float max_v = prow[0];
          for (int j = 1; j < len; ++j) max_v = std::max(max_v, prow[j]);
          float sum = 0;
          for (int j = 0; j < len; ++j) {
            prow[j] = std::exp(prow[j] - max_v);
            sum += prow[j];
          }
          for (int j = 0; j < len; ++j) prow[j] /= sum;
        } else {
          const int lenv = (len / L) * L;
          const float* __restrict ktv = kt.data();
          const auto zero = V::Broadcast(0.0f);
          const auto vs = V::Broadcast(scale);
          int j = 0;
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktv + static_cast<size_t>(c) * len +
                                             j)));
            }
            V::Store(prow + j, V::Mul(a0, vs));
          }
          for (; j < len; ++j) {
            float dot = 0;
            for (int c = 0; c < dh; ++c) {
              dot += qrow[c] * ktv[static_cast<size_t>(c) * len + j];
            }
            prow[j] = dot * scale;
          }
          float max_v = prow[0];
          {
            int jj = 1;
            if (len >= L) {
              auto vmax = V::Load(prow);
              for (jj = L; jj + L <= len; jj += L) {
                vmax = V::Max(vmax, V::Load(prow + jj));
              }
              max_v = V::HMax(vmax);
            }
            for (; jj < len; ++jj) max_v = std::max(max_v, prow[jj]);
          }
          {
            const auto vm = V::Broadcast(max_v);
            int jj = 0;
            for (; jj < lenv; jj += L) {
              V::Store(prow + jj, V::Exp(V::Sub(V::Load(prow + jj), vm)));
            }
            for (; jj < len; ++jj) prow[jj] = std::exp(prow[jj] - max_v);
          }
          float sum = 0;
          for (int jj = 0; jj < len; ++jj) sum += prow[jj];
          {
            const auto vsum = V::Broadcast(sum);
            int jj = 0;
            for (; jj < lenv; jj += L) {
              V::Store(prow + jj, V::Div(V::Load(prow + jj), vsum));
            }
            for (; jj < len; ++jj) prow[jj] /= sum;
          }
        }
      }
      // --- Gradient phases, same accumulation orders as the seed -------
      for (int i = 0; i < len; ++i) {
        const float* __restrict prow =
            probs.data() + static_cast<size_t>(i) * len;
        float* __restrict dprow =
            dprobs.data() + static_cast<size_t>(i) * len;
        const float* __restrict grow =
            og + static_cast<size_t>(off + i) * dim + col0;
        // d_probs = d_ctx * vh^T; d_vh += probs^T * d_ctx.
        if constexpr (L == 1) {
          for (int j = 0; j < len; ++j) {
            const float* __restrict vrow =
                vv + static_cast<size_t>(off + j) * dim + col0;
            float dp = 0;
            for (int c = 0; c < dh; ++c) dp += grow[c] * vrow[c];
            dprow[j] = dp;
            if (vg) {
              float* __restrict vgrow =
                  vg + static_cast<size_t>(off + j) * dim + col0;
              const float p = prow[j];
              for (int c = 0; c < dh; ++c) vgrow[c] += p * grow[c];
            }
          }
        } else {
          const float* __restrict vtv = vt.data();
          const auto zero = V::Broadcast(0.0f);
          int j = 0;
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(grow[c]),
                                     V::Load(vtv + static_cast<size_t>(c) * len +
                                             j)));
            }
            V::Store(dprow + j, a0);
          }
          for (; j < len; ++j) {
            float dp = 0;
            for (int c = 0; c < dh; ++c) {
              dp += grow[c] * vtv[static_cast<size_t>(c) * len + j];
            }
            dprow[j] = dp;
          }
          if (vg) {
            for (j = 0; j < len; ++j) {
              float* __restrict vgrow =
                  vg + static_cast<size_t>(off + j) * dim + col0;
              const auto vp = V::Broadcast(prow[j]);
              int c = 0;
              for (; c < dhv; c += L) {
                V::Store(vgrow + c, V::Add(V::Load(vgrow + c),
                                           V::Mul(vp, V::Load(grow + c))));
              }
              for (; c < dh; ++c) vgrow[c] += prow[j] * grow[c];
            }
          }
        }
        // Softmax backward, then the post-softmax Scale folds into the
        // score gradient: d_scores = scale * p * (dp - sum(p * dp)).
        float dot = 0;
        for (int j = 0; j < len; ++j) dot += prow[j] * dprow[j];
        if constexpr (L == 1) {
          for (int j = 0; j < len; ++j) {
            dprow[j] = scale * prow[j] * (dprow[j] - dot);
          }
        } else {
          const auto vscale = V::Broadcast(scale);
          const auto vdot = V::Broadcast(dot);
          int j = 0;
          for (; j + L <= len; j += L) {
            V::Store(dprow + j,
                     V::Mul(V::Mul(vscale, V::Load(prow + j)),
                            V::Sub(V::Load(dprow + j), vdot)));
          }
          for (; j < len; ++j) {
            dprow[j] = scale * prow[j] * (dprow[j] - dot);
          }
        }
        // d_qh += d_scores * kh; d_kh += d_scores^T * qh.
        const float* __restrict qrow =
            qv + static_cast<size_t>(off + i) * dim + col0;
        float* __restrict qgrow =
            qg ? qg + static_cast<size_t>(off + i) * dim + col0 : nullptr;
        for (int j = 0; j < len; ++j) {
          const float ds = dprow[j];
          const float* __restrict krow =
              kv + static_cast<size_t>(off + j) * dim + col0;
          if constexpr (L == 1) {
            if (qgrow) {
              for (int c = 0; c < dh; ++c) qgrow[c] += ds * krow[c];
            }
            if (kg) {
              float* __restrict kgrow =
                  kg + static_cast<size_t>(off + j) * dim + col0;
              for (int c = 0; c < dh; ++c) kgrow[c] += ds * qrow[c];
            }
          } else {
            const auto vds = V::Broadcast(ds);
            if (qgrow) {
              int c = 0;
              for (; c < dhv; c += L) {
                V::Store(qgrow + c, V::Add(V::Load(qgrow + c),
                                           V::Mul(vds, V::Load(krow + c))));
              }
              for (; c < dh; ++c) qgrow[c] += ds * krow[c];
            }
            if (kg) {
              float* __restrict kgrow =
                  kg + static_cast<size_t>(off + j) * dim + col0;
              int c = 0;
              for (; c < dhv; c += L) {
                V::Store(kgrow + c, V::Add(V::Load(kgrow + c),
                                           V::Mul(vds, V::Load(qrow + c))));
              }
              for (; c < dh; ++c) kgrow[c] += ds * qrow[c];
            }
          }
        }
      }
    }
  }
}

// Fused Adam/AdamW update (the adam_step contract). Elementwise over
// independent lanes with correctly rounded mul/add/sub/div/sqrt only, so
// the vector path is bit-identical to the scalar loop as long as it keeps
// the scalar expression tree: products and quotients associate exactly as
// written below — in particular (1 - beta2) * g * g multiplies left to
// right. The weight-decay branch is hoisted out of the loop: the decayed
// expression must never run with weight_decay == 0 (0 * value would turn
// the tree into different bits), mirroring the Adam/AdamW split the
// optimizer had before the kernel existed.
template <typename V>
void AdamStepT(float* __restrict value, const float* __restrict grad,
               float* __restrict m, float* __restrict v, size_t n, float lr,
               float beta1, float beta2, float eps, float bias1, float bias2,
               float weight_decay) {
  constexpr int L = V::kLanes;
  if constexpr (L == 1) {
    if (weight_decay == 0.0f) {
      for (size_t j = 0; j < n; ++j) {
        m[j] = beta1 * m[j] + (1.0f - beta1) * grad[j];
        v[j] = beta2 * v[j] + (1.0f - beta2) * grad[j] * grad[j];
        const float m_hat = m[j] / bias1;
        const float v_hat = v[j] / bias2;
        value[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        m[j] = beta1 * m[j] + (1.0f - beta1) * grad[j];
        v[j] = beta2 * v[j] + (1.0f - beta2) * grad[j] * grad[j];
        const float m_hat = m[j] / bias1;
        const float v_hat = v[j] / bias2;
        value[j] -=
            lr * (m_hat / (std::sqrt(v_hat) + eps) + weight_decay * value[j]);
      }
    }
  } else {
    const auto vb1 = V::Broadcast(beta1);
    const auto vomb1 = V::Broadcast(1.0f - beta1);
    const auto vb2 = V::Broadcast(beta2);
    const auto vomb2 = V::Broadcast(1.0f - beta2);
    const auto vbias1 = V::Broadcast(bias1);
    const auto vbias2 = V::Broadcast(bias2);
    const auto vlr = V::Broadcast(lr);
    const auto veps = V::Broadcast(eps);
    const size_t nv = (n / L) * L;
    size_t j = 0;
    if (weight_decay == 0.0f) {
      for (; j < nv; j += L) {
        const auto g = V::Load(grad + j);
        const auto mj =
            V::Add(V::Mul(vb1, V::Load(m + j)), V::Mul(vomb1, g));
        const auto vj = V::Add(V::Mul(vb2, V::Load(v + j)),
                               V::Mul(V::Mul(vomb2, g), g));
        V::Store(m + j, mj);
        V::Store(v + j, vj);
        const auto m_hat = V::Div(mj, vbias1);
        const auto v_hat = V::Div(vj, vbias2);
        const auto upd =
            V::Div(V::Mul(vlr, m_hat), V::Add(V::Sqrt(v_hat), veps));
        V::Store(value + j, V::Sub(V::Load(value + j), upd));
      }
      for (; j < n; ++j) {
        m[j] = beta1 * m[j] + (1.0f - beta1) * grad[j];
        v[j] = beta2 * v[j] + (1.0f - beta2) * grad[j] * grad[j];
        const float m_hat = m[j] / bias1;
        const float v_hat = v[j] / bias2;
        value[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    } else {
      const auto vwd = V::Broadcast(weight_decay);
      for (; j < nv; j += L) {
        const auto g = V::Load(grad + j);
        const auto mj =
            V::Add(V::Mul(vb1, V::Load(m + j)), V::Mul(vomb1, g));
        const auto vj = V::Add(V::Mul(vb2, V::Load(v + j)),
                               V::Mul(V::Mul(vomb2, g), g));
        V::Store(m + j, mj);
        V::Store(v + j, vj);
        const auto m_hat = V::Div(mj, vbias1);
        const auto v_hat = V::Div(vj, vbias2);
        const auto val = V::Load(value + j);
        const auto upd = V::Mul(
            vlr, V::Add(V::Div(m_hat, V::Add(V::Sqrt(v_hat), veps)),
                        V::Mul(vwd, val)));
        V::Store(value + j, V::Sub(val, upd));
      }
      for (; j < n; ++j) {
        m[j] = beta1 * m[j] + (1.0f - beta1) * grad[j];
        v[j] = beta2 * v[j] + (1.0f - beta2) * grad[j] * grad[j];
        const float m_hat = m[j] / bias1;
        const float v_hat = v[j] / bias2;
        value[j] -=
            lr * (m_hat / (std::sqrt(v_hat) + eps) + weight_decay * value[j]);
      }
    }
  }
}

// One quantization step of the quantize_buffer contract: round to nearest,
// ties away from zero, saturate to [-127, 127]. Written as
// trunc(t + copysign(0.5, t)) — every operation is an exact IEEE op, so a
// vector lane computing the same expression produces the same int8.
inline int8_t QuantizeOneRef(float x, float inv_scale) {
  const float t = x * inv_scale;
  const float r = std::trunc(t + std::copysign(0.5f, t));
  if (r >= 127.0f) return 127;
  if (r <= -127.0f) return -127;
  return static_cast<int8_t>(r);
}

inline void QuantizeBufferRef(const float* x, int n, float inv_scale,
                              int8_t* out) {
  for (int i = 0; i < n; ++i) out[i] = QuantizeOneRef(x[i], inv_scale);
}

// Reference walk of the packed int8 tile layout (see simd.h). Integer
// accumulation is exact in any order, so this is the bit-exactness anchor
// for the vector micro-kernels — and, because the padding contributes
// exact zeros, for plain int8_gemm on the unpacked operands too.
inline void Int8GemmPackedRef(const int8_t* a, const int16_t* bp, float* c,
                              int m, int k, int n, const float* a_scale,
                              const float* b_scale, const float* bias) {
  const int kp = Int8PackedKPad(k);
  const int kb = kp / kInt8TileK;
  const int tiles = (n + kInt8TileN - 1) / kInt8TileN;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * kp;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int t = 0; t < tiles; ++t) {
      const int16_t* btile =
          bp + static_cast<size_t>(t) * kb * (kInt8TileN * kInt8TileK);
      int32_t acc[kInt8TileN] = {0, 0, 0, 0};
      for (int b = 0; b < kb; ++b) {
        const int8_t* ab = arow + b * kInt8TileK;
        for (int ch = 0; ch < kInt8TileN; ++ch) {
          const int16_t* bb =
              btile + (static_cast<size_t>(b) * kInt8TileN + ch) * kInt8TileK;
          int32_t sum = acc[ch];
          for (int kk = 0; kk < kInt8TileK; ++kk) {
            sum += static_cast<int32_t>(ab[kk]) * static_cast<int32_t>(bb[kk]);
          }
          acc[ch] = sum;
        }
      }
      for (int ch = 0; ch < kInt8TileN; ++ch) {
        const int j = t * kInt8TileN + ch;
        if (j >= n) break;
        float y = static_cast<float>(acc[ch]) * as * b_scale[j];
        if (bias != nullptr) y += bias[j];
        crow[j] = y;
      }
    }
  }
}

}  // namespace qpe::nn::simd

#endif  // QPE_NN_SIMD_KERNELS_INL_H_
