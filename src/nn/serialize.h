#ifndef QPE_NN_SERIALIZE_H_
#define QPE_NN_SERIALIZE_H_

#include <iostream>
#include <string>

#include "nn/module.h"

namespace qpe::nn {

// Binary checkpointing of module parameters, keyed by the stable dotted
// parameter names. Loading requires an identically-shaped architecture.
// This is what carries pretrained encoder weights into finetuning runs.

void SaveModule(const Module& module, std::ostream& os);

// Returns false (leaving already-copied tensors modified) on any
// name/shape/format mismatch.
bool LoadModule(Module* module, std::istream& is);

// Convenience file-path wrappers. Save returns false on IO failure.
bool SaveModuleToFile(const Module& module, const std::string& path);
bool LoadModuleFromFile(Module* module, const std::string& path);

// In-memory weight transfer between two identically-shaped modules (e.g.
// cloning a pretrained encoder before finetuning it on a new domain).
bool CopyParameters(const Module& source, Module* dest);

}  // namespace qpe::nn

#endif  // QPE_NN_SERIALIZE_H_
