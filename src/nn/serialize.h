#ifndef QPE_NN_SERIALIZE_H_
#define QPE_NN_SERIALIZE_H_

#include <iostream>
#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace qpe::nn {

// Binary checkpointing of module parameters, keyed by the stable dotted
// parameter names. Loading requires an identically-shaped architecture.
// This is what carries pretrained encoder weights into finetuning runs.
//
// Loading is *transactional*: every tensor is staged and validated against
// the destination module first, and values are committed only if the whole
// stream parses — on any failure the module is left byte-identical to its
// pre-call state. Status messages carry the failing tensor name and byte
// offset so a corrupt file is diagnosable.

void SaveModule(const Module& module, std::ostream& os);

util::Status LoadModuleStatus(Module* module, std::istream& is);
util::Status SaveModuleToFileStatus(const Module& module,
                                    const std::string& path);
util::Status LoadModuleFromFileStatus(Module* module, const std::string& path);

// Legacy bool wrappers (same transactional semantics, diagnostics dropped).
bool LoadModule(Module* module, std::istream& is);
bool SaveModuleToFile(const Module& module, const std::string& path);
bool LoadModuleFromFile(Module* module, const std::string& path);

// In-memory weight transfer between two identically-shaped modules (e.g.
// cloning a pretrained encoder before finetuning it on a new domain).
bool CopyParameters(const Module& source, Module* dest);

namespace internal {

// The two halves of transactional loading, exposed so composite formats
// (nn/checkpoint.h bundles module + optimizer + RNG state) can stage the
// module section, keep validating the rest of their payload, and commit
// everything only once nothing can fail anymore.
struct StagedModule {
  std::vector<std::vector<float>> values;  // one buffer per named parameter
};

// Parses and validates a module section against `module` without touching
// its storage.
util::Status StageModule(Module* module, std::istream& is,
                         StagedModule* staged);
// Infallible: writes staged values into the module's parameters.
void CommitModule(Module* module, StagedModule&& staged);

}  // namespace internal

}  // namespace qpe::nn

#endif  // QPE_NN_SERIALIZE_H_
