#ifndef QPE_NN_CHECKPOINT_H_
#define QPE_NN_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace qpe::nn {

// Crash-safe training checkpoints. A checkpoint captures everything a
// training loop needs to continue bit-exactly after an interruption:
// module parameters, optimizer moments and step counters, the training
// loop's RNG stream (including the Box-Muller cache), and loop progress
// counters. The on-disk format is versioned and CRC32-guarded:
//
//   header  : magic u32 | version u32 | payload_size u64 | payload_crc u32
//   payload : training state | rng state | module section | optimizer state
//
// Writes are crash-safe: the file is assembled in `path + ".tmp"`, flushed
// and fsync'd, then atomically renamed over `path` — a crash at any moment
// leaves either the previous checkpoint or the new one, never a torn file.
// Loads are transactional: the header, CRC, and every staged tensor/buffer
// are validated before *anything* is committed, so a corrupt or mismatched
// checkpoint leaves the in-memory model and optimizer untouched.

// Attached to a training-options struct to enable checkpointing. An empty
// path disables it (the default, preserving the pre-existing behaviour of
// every training loop).
struct CheckpointConfig {
  std::string path;        // checkpoint file; "" => no checkpointing
  int interval_epochs = 1; // save every N completed epochs (and at the end)
  // Load `path` before training if it exists; a missing file starts from
  // scratch, any other load error aborts the run (surfaced via the loop's
  // stats / status output).
  bool resume = true;
};

// Loop progress stored alongside the weights. `next_epoch` is the first
// epoch the resumed run should execute; the early-stopping trackers and
// loss-spike counters carry over so resumed runs converge identically.
struct TrainingState {
  int64_t next_epoch = 0;
  int64_t global_step = 0;
  int64_t skipped_batches = 0;   // cumulative loss-spike skips
  int64_t nonfinite_losses = 0;  // cumulative NaN/Inf losses observed
  double best_val = 1e18;        // early-stopping: best validation metric
  int64_t best_epoch = -1;       // ... and the epoch it occurred
  util::RngState rng;            // the loop's data-order/dropout stream
};

// True if a regular file exists at `path` (a cheap resume probe).
bool CheckpointExists(const std::string& path);

util::Status SaveTrainingCheckpoint(const std::string& path,
                                    const Module& module,
                                    const Optimizer& optimizer,
                                    const TrainingState& state);

// Restores module + optimizer + state from `path`. On any error (missing
// file, truncation, CRC mismatch, version or shape mismatch) returns a
// descriptive Status and mutates nothing.
util::Status LoadTrainingCheckpoint(const std::string& path, Module* module,
                                    Optimizer* optimizer,
                                    TrainingState* state);

}  // namespace qpe::nn

#endif  // QPE_NN_CHECKPOINT_H_
