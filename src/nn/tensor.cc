#include "nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace qpe::nn {

namespace {

constexpr float kLogEps = 1e-12f;

#if defined(__GLIBC__)
// Training loops allocate/free many medium-sized buffers (a 400x400
// attention matrix is ~640 KB); glibc's default M_MMAP_THRESHOLD of 128 KB
// would serve each from a fresh mmap, paying page faults on every forward
// pass. Keep them on the recycled heap instead. Lives here so it links into
// every binary that uses tensors.
struct MallocTuning {
  MallocTuning() {
    mallopt(M_MMAP_THRESHOLD, 256 << 20);
    mallopt(M_TRIM_THRESHOLD, 256 << 20);
  }
};
const MallocTuning kMallocTuning;
#endif  // __GLIBC__

thread_local bool tl_no_grad = false;
thread_local const std::unordered_map<Tensor::Impl*, float*>* tl_grad_redirect =
    nullptr;

// Where a backward function accumulates a parent's gradient. Normally the
// parent's own (lazily allocated) grad buffer; under an active
// GradientCapture the shared targets are redirected to per-thread shadow
// buffers so concurrent Backward() calls on graphs sharing parameter
// leaves never write the same memory.
float* GradPtr(Tensor::Impl* p) {
  if (tl_grad_redirect) {
    auto it = tl_grad_redirect->find(p);
    if (it != tl_grad_redirect->end()) return it->second;
  }
  p->EnsureGrad();
  return p->grad.data();
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction and accessors
// ---------------------------------------------------------------------------

Tensor Tensor::Zeros(int rows, int cols, bool requires_grad) {
  auto impl = std::make_shared<Impl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->requires_grad = requires_grad;
  impl->value.assign(static_cast<size_t>(rows) * cols, 0.0f);
  // grad stays empty until EnsureGrad(): most tensors (eval-mode
  // activations, forward intermediates whose graph is discarded) never
  // receive a gradient.
  return Tensor(std::move(impl));
}

Tensor Tensor::Full(int rows, int cols, float value, bool requires_grad) {
  Tensor t = Zeros(rows, cols, requires_grad);
  std::fill(t.value().begin(), t.value().end(), value);
  return t;
}

Tensor Tensor::FromVector(int rows, int cols, const std::vector<float>& data,
                          bool requires_grad) {
  assert(static_cast<int>(data.size()) == rows * cols);
  Tensor t = Zeros(rows, cols, requires_grad);
  t.value() = data;
  return t;
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full(1, 1, value, requires_grad);
}

Tensor Tensor::Xavier(int rows, int cols, util::Rng* rng) {
  Tensor t = Zeros(rows, cols, /*requires_grad=*/true);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : t.value()) {
    v = static_cast<float>(rng->Uniform(-bound, bound));
  }
  return t;
}

Tensor Tensor::Gaussian(int rows, int cols, float stddev, util::Rng* rng) {
  Tensor t = Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.value()) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

int Tensor::rows() const { return impl_ ? impl_->rows : 0; }
int Tensor::cols() const { return impl_ ? impl_->cols : 0; }
bool Tensor::requires_grad() const {
  return impl_ != nullptr && impl_->requires_grad;
}

std::vector<float>& Tensor::value() { return impl_->value; }
const std::vector<float>& Tensor::value() const { return impl_->value; }
std::vector<float>& Tensor::grad() {
  impl_->EnsureGrad();
  return impl_->grad;
}
const std::vector<float>& Tensor::grad() const {
  impl_->EnsureGrad();
  return impl_->grad;
}

float Tensor::at(int r, int c) const {
  return impl_->value[static_cast<size_t>(r) * impl_->cols + c];
}
void Tensor::set(int r, int c, float v) {
  impl_->value[static_cast<size_t>(r) * impl_->cols + c] = v;
}

void Tensor::ZeroGrad() const {
  if (impl_ && !impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  if (!impl_) return Tensor();
  Tensor t = Zeros(rows(), cols(), /*requires_grad=*/false);
  t.value() = impl_->value;
  return t;
}

Tensor Tensor::MakeResult(int rows, int cols,
                          std::vector<std::shared_ptr<Impl>> parents) {
  bool any_grad = false;
  if (!tl_no_grad) {
    for (const auto& p : parents) any_grad = any_grad || p->requires_grad;
  }
  Tensor t = Zeros(rows, cols, any_grad);
  // Only keep graph edges when a gradient can flow.
  if (any_grad) t.impl_->parents = std::move(parents);
  return t;
}

// ---------------------------------------------------------------------------
// Backward
// ---------------------------------------------------------------------------

void Tensor::Backward() const {
  assert(impl_ && impl_->rows == 1 && impl_->cols == 1 &&
         "Backward() requires a scalar result");
  // Iterative topological sort (graphs can be thousands of nodes deep for
  // LSTMs, so recursion is unsafe). The scratch is thread_local and reused
  // across calls: training loops run Backward() every step and the vectors
  // keep their high-water capacity.
  thread_local std::vector<Impl*> topo;
  thread_local std::vector<std::pair<Impl*, size_t>> stack;
  topo.clear();
  stack.clear();

  stack.emplace_back(impl_.get(), 0);
  impl_->visited = true;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      Impl* parent = node->parents[next++].get();
      // Leaves (no parents, no backward_fn — parameters and inputs) are
      // never enqueued: they contribute nothing to the sweep, and skipping
      // them means the traversal never touches `visited` on impls shared
      // between graphs running Backward() concurrently on other threads.
      if (!parent->visited &&
          !(parent->parents.empty() && !parent->backward_fn)) {
        parent->visited = true;
        stack.emplace_back(parent, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  for (Impl* node : topo) {
    node->visited = false;  // reset scratch
    // Backward functions read their own node's grad buffer; with lazy
    // allocation it may not exist yet (e.g. a node whose consumers all
    // skipped zero gradients).
    node->EnsureGrad();
  }

  impl_->grad[0] = 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

// ---------------------------------------------------------------------------
// NoGradGuard / GradientCapture
// ---------------------------------------------------------------------------

NoGradGuard::NoGradGuard() : previous_(tl_no_grad) { tl_no_grad = true; }
NoGradGuard::~NoGradGuard() { tl_no_grad = previous_; }

GradientCapture::GradientCapture(const std::vector<Tensor>& targets,
                                 std::vector<std::vector<float>>* buffers) {
  buffers->resize(targets.size());
  map_.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    Tensor::Impl* impl = targets[i].impl();
    std::vector<float>& buf = (*buffers)[i];
    buf.assign(impl->value.size(), 0.0f);
    map_.emplace(impl, buf.data());
  }
  previous_ = tl_grad_redirect;
  tl_grad_redirect = &map_;
}

GradientCapture::~GradientCapture() { tl_grad_redirect = previous_; }

// ---------------------------------------------------------------------------
// MatMul: blocked forward/backward kernels
// ---------------------------------------------------------------------------

namespace {

// Below this many flops (2*m*k*n) the kernels run inline: pool dispatch
// costs more than the multiply.
constexpr int64_t kMatMulParallelFlops = 1 << 17;
// Tile sizes: a [kKC x kNC] panel of B (64 KB) stays resident in L1/L2
// while it is streamed against every row of A.
constexpr int kKC = 64;
constexpr int kNC = 256;

// out[i0:i1, :] += A[i0:i1, :] * B. Per output element the k-dimension is
// accumulated in ascending order regardless of tiling or row partition, so
// results are identical for every thread count.
void MatMulForwardRange(const float* av, const float* bv, float* ov, int i0,
                        int i1, int k, int n) {
  for (int p0 = 0; p0 < k; p0 += kKC) {
    const int p1 = std::min(k, p0 + kKC);
    for (int j0 = 0; j0 < n; j0 += kNC) {
      const int j1 = std::min(n, j0 + kNC);
      for (int i = i0; i < i1; ++i) {
        const float* arow = av + static_cast<size_t>(i) * k;
        float* orow = ov + static_cast<size_t>(i) * n;
        for (int p = p0; p < p1; ++p) {
          const float aval = arow[p];
          if (aval == 0.0f) continue;  // Relu outputs are often sparse
          const float* brow = bv + static_cast<size_t>(p) * n;
          for (int j = j0; j < j1; ++j) orow[j] += aval * brow[j];
        }
      }
    }
  }
}

// dA[i0:i1, :] += dOut[i0:i1, :] * B^T, computed as row-dot-products so
// both inner operands are contiguous (no stride-n walk through B).
void MatMulBackwardA(const float* og, const float* bv, float* ag, int i0,
                     int i1, int k, int n) {
  for (int i = i0; i < i1; ++i) {
    const float* orow = og + static_cast<size_t>(i) * n;
    float* arow = ag + static_cast<size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float* brow = bv + static_cast<size_t>(p) * n;
      float dot = 0.0f;
      for (int j = 0; j < n; ++j) dot += orow[j] * brow[j];
      arow[p] += dot;
    }
  }
}

// dB[p0:p1, :] += (A^T * dOut)[p0:p1, :] as rank-1 row updates: for each i,
// axpy dOut row i into the B-gradient rows selected by A row i. Per output
// element the i-dimension is accumulated in ascending order regardless of
// the p partition.
void MatMulBackwardB(const float* av, const float* og, float* bg, int p0,
                     int p1, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = av + static_cast<size_t>(i) * k;
    const float* orow = og + static_cast<size_t>(i) * n;
    for (int p = p0; p < p1; ++p) {
      const float aval = arow[p];
      if (aval == 0.0f) continue;
      float* brow = bg + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) brow[j] += aval * orow[j];
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, b.impl_});
  const float* av = a.impl_->value.data();
  const float* bv = b.impl_->value.data();
  float* ov = out.impl_->value.data();  // pre-zeroed by MakeResult
  const int64_t flops = 2LL * m * k * n;
  if (flops < kMatMulParallelFlops) {
    MatMulForwardRange(av, bv, ov, 0, m, k, n);
  } else {
    util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
      MatMulForwardRange(av, bv, ov, static_cast<int>(i0),
                         static_cast<int>(i1), k, n);
    });
  }
  if (out.requires_grad()) {
    auto ai = a.impl_, bi = b.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, k, n, flops]() {
      const float* og = oi->grad.data();
      if (ai->requires_grad) {
        float* ag = GradPtr(ai.get());
        const float* bv = bi->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardA(og, bv, ag, 0, m, k, n);
        } else {
          util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
            MatMulBackwardA(og, bv, ag, static_cast<int>(i0),
                            static_cast<int>(i1), k, n);
          });
        }
      }
      if (bi->requires_grad) {
        float* bg = GradPtr(bi.get());
        const float* av = ai->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardB(av, og, bg, 0, k, m, k, n);
        } else {
          util::ParallelFor(k, /*grain=*/1, [&](int64_t p0, int64_t p1) {
            MatMulBackwardB(av, og, bg, static_cast<int>(p0),
                            static_cast<int>(p1), m, k, n);
          });
        }
      }
    };
  }
  return out;
}

Tensor MatMulReference(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, b.impl_});
  const float* av = a.impl_->value.data();
  const float* bv = b.impl_->value.data();
  float* ov = out.impl_->value.data();
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aval = av[static_cast<size_t>(i) * k + p];
      if (aval == 0.0f) continue;
      const float* brow = bv + static_cast<size_t>(p) * n;
      float* orow = ov + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += aval * brow[j];
    }
  }
  if (out.requires_grad()) {
    auto ai = a.impl_, bi = b.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, k, n]() {
      const float* og = oi->grad.data();
      if (ai->requires_grad) {
        float* ag = GradPtr(ai.get());
        const float* bv = bi->value.data();
        // dA = dOut * B^T
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            const float g = og[static_cast<size_t>(i) * n + j];
            if (g == 0.0f) continue;
            for (int p = 0; p < k; ++p) {
              ag[static_cast<size_t>(i) * k + p] +=
                  g * bv[static_cast<size_t>(p) * n + j];
            }
          }
        }
      }
      if (bi->requires_grad) {
        float* bg = GradPtr(bi.get());
        const float* av = ai->value.data();
        // dB = A^T * dOut
        for (int p = 0; p < k; ++p) {
          for (int i = 0; i < m; ++i) {
            const float aval = av[static_cast<size_t>(i) * k + p];
            if (aval == 0.0f) continue;
            const float* orow = og + static_cast<size_t>(i) * n;
            float* brow = bg + static_cast<size_t>(p) * n;
            for (int j = 0; j < n; ++j) brow[j] += aval * orow[j];
          }
        }
      }
    };
  }
  return out;
}

namespace {

// Maps a broadcast operand's (r, c) index for an [m, n] result.
inline size_t BIdx(int r, int c, int brows, int bcols) {
  const int rr = brows == 1 ? 0 : r;
  const int cc = bcols == 1 ? 0 : c;
  return static_cast<size_t>(rr) * bcols + cc;
}

enum class BinOp { kAdd, kSub, kMul };

Tensor Binary(const Tensor& a, const Tensor& b, BinOp op) {
  const int m = a.rows(), n = a.cols();
  const int bm = b.rows(), bn = b.cols();
  assert((bm == m || bm == 1) && (bn == n || bn == 1));
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, b.impl_});
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < n; ++c) {
      const float av = a.impl_->value[static_cast<size_t>(r) * n + c];
      const float bv = b.impl_->value[BIdx(r, c, bm, bn)];
      float v = 0;
      switch (op) {
        case BinOp::kAdd: v = av + bv; break;
        case BinOp::kSub: v = av - bv; break;
        case BinOp::kMul: v = av * bv; break;
      }
      out.impl_->value[static_cast<size_t>(r) * n + c] = v;
    }
  }
  if (out.requires_grad()) {
    auto ai = a.impl_, bi = b.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, n, bm, bn, op]() {
      float* ag = ai->requires_grad ? GradPtr(ai.get()) : nullptr;
      float* bg = bi->requires_grad ? GradPtr(bi.get()) : nullptr;
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          const float g = oi->grad[static_cast<size_t>(r) * n + c];
          if (g == 0.0f) continue;
          const size_t b_idx = BIdx(r, c, bm, bn);
          switch (op) {
            case BinOp::kAdd:
              if (ag) ag[static_cast<size_t>(r) * n + c] += g;
              if (bg) bg[b_idx] += g;
              break;
            case BinOp::kSub:
              if (ag) ag[static_cast<size_t>(r) * n + c] += g;
              if (bg) bg[b_idx] -= g;
              break;
            case BinOp::kMul:
              if (ag) {
                ag[static_cast<size_t>(r) * n + c] += g * bi->value[b_idx];
              }
              if (bg) {
                bg[b_idx] += g * ai->value[static_cast<size_t>(r) * n + c];
              }
              break;
          }
        }
      }
    };
  }
  return out;
}

// Elementwise unary op with derivative expressed from (input, output).
Tensor Unary(const Tensor& a, float (*fwd)(float),
             float (*dfn)(float /*x*/, float /*y*/)) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_});
  for (int i = 0; i < m * n; ++i) out.impl_->value[i] = fwd(a.impl_->value[i]);
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, dfn, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int i = 0; i < m * n; ++i) {
        ag[i] += oi->grad[i] * dfn(ai->value[i], oi->value[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) { return Binary(a, b, BinOp::kAdd); }
Tensor Sub(const Tensor& a, const Tensor& b) { return Binary(a, b, BinOp::kSub); }
Tensor Mul(const Tensor& a, const Tensor& b) { return Binary(a, b, BinOp::kMul); }

Tensor Scale(const Tensor& a, float s) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_});
  for (int i = 0; i < m * n; ++i) out.impl_->value[i] = a.impl_->value[i] * s;
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, s, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int i = 0; i < m * n; ++i) ag[i] += oi->grad[i] * s;
    };
  }
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_});
  for (int i = 0; i < m * n; ++i) out.impl_->value[i] = a.impl_->value[i] + s;
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int i = 0; i < m * n; ++i) ag[i] += oi->grad[i];
    };
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  return Unary(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::exp(std::min(x, 30.0f)); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::log(std::max(x, kLogEps)); },
      [](float x, float) { return 1.0f / std::max(x, kLogEps); });
}

Tensor Sqrt(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float, float y) { return y > 0 ? 0.5f / y : 0.0f; });
}

Tensor Square(const Tensor& a) {
  return Unary(
      a, [](float x) { return x * x; }, [](float x, float) { return 2 * x; });
}

Tensor Abs(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::abs(x); },
      [](float x, float) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}

Tensor Transpose(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(n, m, {a.impl_});
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < n; ++c) {
      out.impl_->value[static_cast<size_t>(c) * m + r] =
          a.impl_->value[static_cast<size_t>(r) * n + c];
    }
  }
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          ag[static_cast<size_t>(r) * n + c] +=
              oi->grad[static_cast<size_t>(c) * m + r];
        }
      }
    };
  }
  return out;
}

Tensor Sum(const Tensor& a) {
  Tensor out = Tensor::MakeResult(1, 1, {a.impl_});
  float total = 0;
  for (float v : a.impl_->value) total += v;
  out.impl_->value[0] = total;
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi]() {
      const float g = oi->grad[0];
      float* ag = GradPtr(ai.get());
      const size_t count = ai->value.size();
      for (size_t i = 0; i < count; ++i) ag[i] += g;
    };
  }
  return out;
}

Tensor Mean(const Tensor& a) {
  return Scale(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor RowSum(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, 1, {a.impl_});
  for (int r = 0; r < m; ++r) {
    float total = 0;
    for (int c = 0; c < n; ++c) {
      total += a.impl_->value[static_cast<size_t>(r) * n + c];
    }
    out.impl_->value[r] = total;
  }
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int r = 0; r < m; ++r) {
        const float g = oi->grad[r];
        for (int c = 0; c < n; ++c) {
          ag[static_cast<size_t>(r) * n + c] += g;
        }
      }
    };
  }
  return out;
}

Tensor RowMean(const Tensor& a) {
  return Scale(RowSum(a), 1.0f / static_cast<float>(a.cols()));
}

Tensor SoftmaxRows(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_});
  for (int r = 0; r < m; ++r) {
    const float* row = a.impl_->value.data() + static_cast<size_t>(r) * n;
    float* orow = out.impl_->value.data() + static_cast<size_t>(r) * n;
    float max_v = row[0];
    for (int c = 1; c < n; ++c) max_v = std::max(max_v, row[c]);
    float total = 0;
    for (int c = 0; c < n; ++c) {
      orow[c] = std::exp(row[c] - max_v);
      total += orow[c];
    }
    for (int c = 0; c < n; ++c) orow[c] /= total;
  }
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int r = 0; r < m; ++r) {
        const float* y = oi->value.data() + static_cast<size_t>(r) * n;
        const float* gy = oi->grad.data() + static_cast<size_t>(r) * n;
        float* gx = ag + static_cast<size_t>(r) * n;
        float dot = 0;
        for (int c = 0; c < n; ++c) dot += y[c] * gy[c];
        for (int c = 0; c < n; ++c) gx[c] += y[c] * (gy[c] - dot);
      }
    };
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  const int m = parts[0].rows();
  int total_cols = 0;
  std::vector<std::shared_ptr<Tensor::Impl>> parents;
  for (const Tensor& p : parts) {
    assert(p.rows() == m);
    total_cols += p.cols();
    parents.push_back(p.impl_);
  }
  Tensor out = Tensor::MakeResult(m, total_cols, parents);
  int offset = 0;
  for (const Tensor& p : parts) {
    const int n = p.cols();
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < n; ++c) {
        out.impl_->value[static_cast<size_t>(r) * total_cols + offset + c] =
            p.impl_->value[static_cast<size_t>(r) * n + c];
      }
    }
    offset += n;
  }
  if (out.requires_grad()) {
    std::vector<std::shared_ptr<Tensor::Impl>> part_impls;
    for (const Tensor& p : parts) part_impls.push_back(p.impl_);
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [part_impls, oi, m, total_cols]() {
      int offset = 0;
      for (const auto& pi : part_impls) {
        const int n = pi->cols;
        if (pi->requires_grad) {
          float* pg = GradPtr(pi.get());
          for (int r = 0; r < m; ++r) {
            for (int c = 0; c < n; ++c) {
              pg[static_cast<size_t>(r) * n + c] +=
                  oi->grad[static_cast<size_t>(r) * total_cols + offset + c];
            }
          }
        }
        offset += n;
      }
    };
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  const int n = parts[0].cols();
  int total_rows = 0;
  std::vector<std::shared_ptr<Tensor::Impl>> parents;
  for (const Tensor& p : parts) {
    assert(p.cols() == n);
    total_rows += p.rows();
    parents.push_back(p.impl_);
  }
  Tensor out = Tensor::MakeResult(total_rows, n, parents);
  int offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.impl_->value.begin(), p.impl_->value.end(),
              out.impl_->value.begin() + static_cast<size_t>(offset) * n);
    offset += p.rows();
  }
  if (out.requires_grad()) {
    std::vector<std::shared_ptr<Tensor::Impl>> part_impls;
    for (const Tensor& p : parts) part_impls.push_back(p.impl_);
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [part_impls, oi, n]() {
      int offset = 0;
      for (const auto& pi : part_impls) {
        if (pi->requires_grad) {
          float* pg = GradPtr(pi.get());
          for (int i = 0; i < pi->rows * n; ++i) {
            pg[i] += oi->grad[static_cast<size_t>(offset) * n + i];
          }
        }
        offset += pi->rows;
      }
    };
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  const int m = a.rows(), n = a.cols();
  assert(start >= 0 && start + len <= n);
  Tensor out = Tensor::MakeResult(m, len, {a.impl_});
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < len; ++c) {
      out.impl_->value[static_cast<size_t>(r) * len + c] =
          a.impl_->value[static_cast<size_t>(r) * n + start + c];
    }
  }
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n, start, len]() {
      float* ag = GradPtr(ai.get());
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < len; ++c) {
          ag[static_cast<size_t>(r) * n + start + c] +=
              oi->grad[static_cast<size_t>(r) * len + c];
        }
      }
    };
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  const int n = a.cols();
  assert(start >= 0 && start + len <= a.rows());
  Tensor out = Tensor::MakeResult(len, n, {a.impl_});
  std::copy(a.impl_->value.begin() + static_cast<size_t>(start) * n,
            a.impl_->value.begin() + static_cast<size_t>(start + len) * n,
            out.impl_->value.begin());
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, n, start, len]() {
      float* ag = GradPtr(ai.get());
      for (int i = 0; i < len * n; ++i) {
        ag[static_cast<size_t>(start) * n + i] += oi->grad[i];
      }
    };
  }
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  const int n = a.cols();
  const int m = static_cast<int>(indices.size());
  Tensor out = Tensor::MakeResult(m, n, {a.impl_});
  for (int r = 0; r < m; ++r) {
    assert(indices[r] >= 0 && indices[r] < a.rows());
    std::copy(a.impl_->value.begin() + static_cast<size_t>(indices[r]) * n,
              a.impl_->value.begin() + static_cast<size_t>(indices[r] + 1) * n,
              out.impl_->value.begin() + static_cast<size_t>(r) * n);
  }
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, indices, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          ag[static_cast<size_t>(indices[r]) * n + c] +=
              oi->grad[static_cast<size_t>(r) * n + c];
        }
      }
    };
  }
  return out;
}

Tensor Dropout(const Tensor& a, float p, util::Rng* rng) {
  if (p <= 0.0f) return a;
  const int m = a.rows(), n = a.cols();
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(m * n);
  Tensor out = Tensor::MakeResult(m, n, {a.impl_});
  for (int i = 0; i < m * n; ++i) {
    (*mask)[i] = rng->Bernoulli(p) ? 0.0f : scale;
    out.impl_->value[i] = a.impl_->value[i] * (*mask)[i];
  }
  if (out.requires_grad()) {
    auto ai = a.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, mask, m, n]() {
      float* ag = GradPtr(ai.get());
      for (int i = 0; i < m * n; ++i) ag[i] += oi->grad[i] * (*mask)[i];
    };
  }
  return out;
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets) {
  const int m = logits.rows(), n = logits.cols();
  assert(static_cast<int>(targets.size()) == m);
  Tensor out = Tensor::MakeResult(1, 1, {logits.impl_});
  // Cache the softmax for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(m * n);
  float loss = 0;
  for (int r = 0; r < m; ++r) {
    const float* row = logits.impl_->value.data() + static_cast<size_t>(r) * n;
    float* prow = probs->data() + static_cast<size_t>(r) * n;
    float max_v = row[0];
    for (int c = 1; c < n; ++c) max_v = std::max(max_v, row[c]);
    float total = 0;
    for (int c = 0; c < n; ++c) {
      prow[c] = std::exp(row[c] - max_v);
      total += prow[c];
    }
    for (int c = 0; c < n; ++c) prow[c] /= total;
    loss -= std::log(std::max(prow[targets[r]], kLogEps));
  }
  out.impl_->value[0] = loss / static_cast<float>(m);
  if (out.requires_grad()) {
    auto li = logits.impl_;
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [li, oi, probs, targets, m, n]() {
      const float g = oi->grad[0] / static_cast<float>(m);
      float* lg = GradPtr(li.get());
      for (int r = 0; r < m; ++r) {
        const float* prow = probs->data() + static_cast<size_t>(r) * n;
        float* grow = lg + static_cast<size_t>(r) * n;
        for (int c = 0; c < n; ++c) {
          grow[c] += g * (prow[c] - (c == targets[r] ? 1.0f : 0.0f));
        }
      }
    };
  }
  return out;
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  double total = 0;
  for (const Tensor& p : params) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0) {
    const float scale = max_norm / norm;
    for (Tensor p : params) {  // shared handle: copy aliases the storage
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace qpe::nn
