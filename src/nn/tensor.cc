#include "nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/arena.h"
#include "nn/simd.h"
#include "nn/simd_kernels_inl.h"
#include "util/thread_pool.h"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace qpe::nn {

namespace {

constexpr float kLogEps = 1e-12f;

#if defined(__GLIBC__)
// Training loops allocate/free many medium-sized buffers (a 400x400
// attention matrix is ~640 KB); glibc's default M_MMAP_THRESHOLD of 128 KB
// would serve each from a fresh mmap, paying page faults on every forward
// pass. Keep them on the recycled heap instead. Lives here so it links into
// every binary that uses tensors.
struct MallocTuning {
  MallocTuning() {
    mallopt(M_MMAP_THRESHOLD, 256 << 20);
    mallopt(M_TRIM_THRESHOLD, 256 << 20);
  }
};
const MallocTuning kMallocTuning;
#endif  // __GLIBC__

thread_local bool tl_no_grad = false;
thread_local const std::unordered_map<Tensor::Impl*, float*>* tl_grad_redirect =
    nullptr;

// Single creation point for tensor storage. Tensors that can participate
// in the long-lived parameter set (requires_grad=true at creation) always
// come from the plain heap; everything else draws from the thread's
// TensorArena when an ArenaScope is active, so per-step graph storage is
// recycled instead of freed. zero_fill=false is only legal when the caller
// overwrites every element before the value is read.
Tensor NewTensor(int rows, int cols, bool requires_grad, bool zero_fill) {
  if (!requires_grad) {
    if (TensorArena* arena = TensorArena::Current()) {
      return Tensor(arena->Acquire(rows, cols, zero_fill));
    }
  }
  auto impl = std::make_shared<Tensor::Impl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->requires_grad = requires_grad;
  // Fresh vectors value-initialize, so the heap path is always zeroed.
  // grad stays empty until EnsureGrad(): most tensors (eval-mode
  // activations, forward intermediates whose graph is discarded) never
  // receive a gradient.
  impl->value.resize(static_cast<size_t>(rows) * cols);
  return Tensor(std::move(impl));
}

}  // namespace

// Where a backward function accumulates a parent's gradient. Normally the
// parent's own (lazily allocated) grad buffer; under an active
// GradientCapture the shared targets are redirected to per-thread shadow
// buffers so concurrent Backward() calls on graphs sharing parameter
// leaves never write the same memory. Exported (tensor.h) because the
// packed-batch training backward accumulates parameter gradients outside
// this translation unit and must honor the same redirect.
float* GradPtr(Tensor::Impl* p) {
  if (tl_grad_redirect) {
    auto it = tl_grad_redirect->find(p);
    if (it != tl_grad_redirect->end()) return it->second;
  }
  p->EnsureGrad();
  return p->grad.data();
}

// ---------------------------------------------------------------------------
// Construction and accessors
// ---------------------------------------------------------------------------

Tensor Tensor::Zeros(int rows, int cols, bool requires_grad) {
  return NewTensor(rows, cols, requires_grad, /*zero_fill=*/true);
}

Tensor Tensor::Full(int rows, int cols, float value, bool requires_grad) {
  Tensor t = NewTensor(rows, cols, requires_grad, /*zero_fill=*/false);
  std::fill(t.value().begin(), t.value().end(), value);
  return t;
}

Tensor Tensor::FromVector(int rows, int cols, const std::vector<float>& data,
                          bool requires_grad) {
  assert(static_cast<int>(data.size()) == rows * cols);
  Tensor t = NewTensor(rows, cols, requires_grad, /*zero_fill=*/false);
  std::copy(data.begin(), data.end(), t.value().begin());
  return t;
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full(1, 1, value, requires_grad);
}

Tensor Tensor::Xavier(int rows, int cols, util::Rng* rng) {
  Tensor t = Zeros(rows, cols, /*requires_grad=*/true);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : t.value()) {
    v = static_cast<float>(rng->Uniform(-bound, bound));
  }
  return t;
}

Tensor Tensor::Gaussian(int rows, int cols, float stddev, util::Rng* rng) {
  Tensor t = Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.value()) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

int Tensor::rows() const { return impl_ ? impl_->rows : 0; }
int Tensor::cols() const { return impl_ ? impl_->cols : 0; }
bool Tensor::requires_grad() const {
  return impl_ != nullptr && impl_->requires_grad;
}

std::vector<float>& Tensor::value() { return impl_->value; }
const std::vector<float>& Tensor::value() const { return impl_->value; }
std::vector<float>& Tensor::grad() {
  impl_->EnsureGrad();
  return impl_->grad;
}
const std::vector<float>& Tensor::grad() const {
  impl_->EnsureGrad();
  return impl_->grad;
}

float Tensor::at(int r, int c) const {
  return impl_->value[static_cast<size_t>(r) * impl_->cols + c];
}
void Tensor::set(int r, int c, float v) {
  impl_->value[static_cast<size_t>(r) * impl_->cols + c] = v;
}

void Tensor::ZeroGrad() const {
  if (impl_ && !impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  if (!impl_) return Tensor();
  Tensor t = NewTensor(rows(), cols(), /*requires_grad=*/false,
                       /*zero_fill=*/false);
  std::copy(impl_->value.begin(), impl_->value.end(), t.value().begin());
  return t;
}

namespace {

// Shared MakeResult body over any parent range. Parents are copied into the
// result's existing `parents` vector (assign reuses recycled capacity)
// instead of moving a freshly allocated vector in.
template <typename ParentRange>
Tensor MakeResultImpl(int rows, int cols, const ParentRange& parents,
                      Tensor::Fill fill) {
  bool any_grad = false;
  if (!tl_no_grad) {
    for (const auto& p : parents) any_grad = any_grad || p->requires_grad;
  }
  Tensor t = NewTensor(rows, cols, /*requires_grad=*/false,
                       /*zero_fill=*/fill == Tensor::Fill::kZero);
  t.impl_->requires_grad = any_grad;
  // Only keep graph edges when a gradient can flow.
  if (any_grad) t.impl_->parents.assign(parents.begin(), parents.end());
  return t;
}

}  // namespace

Tensor Tensor::MakeResult(int rows, int cols,
                          std::initializer_list<std::shared_ptr<Impl>> parents,
                          Fill fill) {
  return MakeResultImpl(rows, cols, parents, fill);
}

Tensor Tensor::MakeResult(int rows, int cols,
                          const std::vector<std::shared_ptr<Impl>>& parents,
                          Fill fill) {
  return MakeResultImpl(rows, cols, parents, fill);
}

// ---------------------------------------------------------------------------
// Backward
// ---------------------------------------------------------------------------

void Tensor::Backward() const {
  assert(impl_ && impl_->rows == 1 && impl_->cols == 1 &&
         "Backward() requires a scalar result");
  // Iterative topological sort (graphs can be thousands of nodes deep for
  // LSTMs, so recursion is unsafe). The scratch is thread_local and reused
  // across calls: training loops run Backward() every step and the vectors
  // keep their high-water capacity.
  thread_local std::vector<Impl*> topo;
  thread_local std::vector<std::pair<Impl*, size_t>> stack;
  topo.clear();
  stack.clear();

  stack.emplace_back(impl_.get(), 0);
  impl_->visited = true;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      Impl* parent = node->parents[next++].get();
      // Leaves (no parents, no backward_fn — parameters and inputs) are
      // never enqueued: they contribute nothing to the sweep, and skipping
      // them means the traversal never touches `visited` on impls shared
      // between graphs running Backward() concurrently on other threads.
      if (!parent->visited &&
          !(parent->parents.empty() && !parent->backward_fn)) {
        parent->visited = true;
        stack.emplace_back(parent, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  for (Impl* node : topo) {
    node->visited = false;  // reset scratch
    // Backward functions read their own node's grad buffer; with lazy
    // allocation it may not exist yet (e.g. a node whose consumers all
    // skipped zero gradients).
    node->EnsureGrad();
  }

  impl_->grad[0] = 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

// ---------------------------------------------------------------------------
// NoGradGuard / GradientCapture
// ---------------------------------------------------------------------------

NoGradGuard::NoGradGuard() : previous_(tl_no_grad) { tl_no_grad = true; }
NoGradGuard::~NoGradGuard() { tl_no_grad = previous_; }

bool GradEnabled() { return !tl_no_grad; }

GradientCapture::GradientCapture(const std::vector<Tensor>& targets,
                                 std::vector<std::vector<float>>* buffers) {
  buffers->resize(targets.size());
  map_.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    Tensor::Impl* impl = targets[i].impl();
    std::vector<float>& buf = (*buffers)[i];
    buf.assign(impl->value.size(), 0.0f);
    map_.emplace(impl, buf.data());
  }
  previous_ = tl_grad_redirect;
  tl_grad_redirect = &map_;
}

GradientCapture::~GradientCapture() { tl_grad_redirect = previous_; }

// ---------------------------------------------------------------------------
// MatMul: blocked forward/backward kernels
// ---------------------------------------------------------------------------

namespace {

// Below this many flops (2*m*k*n) the kernels run inline: pool dispatch
// costs more than the multiply.
constexpr int64_t kMatMulParallelFlops = 1 << 17;

// The blocked MatMul forward micro-kernel lives in the SIMD dispatch table
// (nn/simd.h): out[i0:i1, :] += A[i0:i1, :] * B with the k dimension
// accumulated in ascending order per output element at every SIMD level,
// so results are identical for every thread count and instruction set.
// Tiling constants are kSimdMatMulKC/kSimdMatMulNC in simd_kernels_inl.h.
inline void MatMulForwardRange(const float* av, const float* bv, float* ov,
                               int i0, int i1, int k, int n) {
  simd::K().matmul_forward_range(av, bv, ov, i0, i1, k, n);
}

// dA[i0:i1, :] += dOut[i0:i1, :] * B^T — in the dispatch table since the
// backward kernels joined it; each dA element stays one complete
// ascending-j dot added once, at every level (MatMulBackwardAT).
inline void MatMulBackwardA(const float* og, const float* bv, float* ag,
                            int i0, int i1, int k, int n) {
  simd::K().matmul_backward_a(og, bv, ag, i0, i1, k, n);
}

// dB[p0:p1, :] += (A^T * dOut)[p0:p1, :] as rank-1 row updates with the i
// dimension accumulated in ascending order per output element regardless
// of the p partition (MatMulBackwardBT in the dispatch table).
inline void MatMulBackwardB(const float* av, const float* og, float* bg,
                            int p0, int p1, int m, int k, int n) {
  simd::K().matmul_backward_b(av, og, bg, p0, p1, m, k, n);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, b.impl_});
  const float* av = a.impl_->value.data();
  const float* bv = b.impl_->value.data();
  float* ov = out.impl_->value.data();  // pre-zeroed by MakeResult
  const int64_t flops = 2LL * m * k * n;
  if (flops < kMatMulParallelFlops) {
    MatMulForwardRange(av, bv, ov, 0, m, k, n);
  } else {
    util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
      MatMulForwardRange(av, bv, ov, static_cast<int>(i0),
                         static_cast<int>(i1), k, n);
    });
  }
  if (out.requires_grad()) {
    // Backward closures capture parent impls as raw pointers: the result's
    // `parents` vector owns them for the closure's whole lifetime, and the
    // smaller capture fits BackwardFn's inline storage.
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const bi = b.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, k, n, flops]() {
      const float* og = oi->grad.data();
      if (ai->requires_grad) {
        float* ag = GradPtr(ai);
        const float* bv = bi->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardA(og, bv, ag, 0, m, k, n);
        } else {
          util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
            MatMulBackwardA(og, bv, ag, static_cast<int>(i0),
                            static_cast<int>(i1), k, n);
          });
        }
      }
      if (bi->requires_grad) {
        float* bg = GradPtr(bi);
        const float* av = ai->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardB(av, og, bg, 0, k, m, k, n);
        } else {
          util::ParallelFor(k, /*grain=*/1, [&](int64_t p0, int64_t p1) {
            MatMulBackwardB(av, og, bg, static_cast<int>(p0),
                            static_cast<int>(p1), m, k, n);
          });
        }
      }
    };
  }
  return out;
}

Tensor MatMulReference(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, b.impl_});
  const float* av = a.impl_->value.data();
  const float* bv = b.impl_->value.data();
  float* ov = out.impl_->value.data();
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aval = av[static_cast<size_t>(i) * k + p];
      if (aval == 0.0f) continue;
      const float* brow = bv + static_cast<size_t>(p) * n;
      float* orow = ov + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += aval * brow[j];
    }
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const bi = b.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, k, n]() {
      const float* og = oi->grad.data();
      if (ai->requires_grad) {
        float* ag = GradPtr(ai);
        const float* bv = bi->value.data();
        // dA = dOut * B^T
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            const float g = og[static_cast<size_t>(i) * n + j];
            if (g == 0.0f) continue;
            for (int p = 0; p < k; ++p) {
              ag[static_cast<size_t>(i) * k + p] +=
                  g * bv[static_cast<size_t>(p) * n + j];
            }
          }
        }
      }
      if (bi->requires_grad) {
        float* bg = GradPtr(bi);
        const float* av = ai->value.data();
        // dB = A^T * dOut
        for (int p = 0; p < k; ++p) {
          for (int i = 0; i < m; ++i) {
            const float aval = av[static_cast<size_t>(i) * k + p];
            if (aval == 0.0f) continue;
            const float* orow = og + static_cast<size_t>(i) * n;
            float* brow = bg + static_cast<size_t>(p) * n;
            for (int j = 0; j < n; ++j) brow[j] += aval * orow[j];
          }
        }
      }
    };
  }
  return out;
}

namespace {

// Maps a broadcast operand's (r, c) index for an [m, n] result.
inline size_t BIdx(int r, int c, int brows, int bcols) {
  const int rr = brows == 1 ? 0 : r;
  const int cc = bcols == 1 ? 0 : c;
  return static_cast<size_t>(rr) * bcols + cc;
}

enum class BinOp { kAdd, kSub, kMul };

Tensor Binary(const Tensor& a, const Tensor& b, BinOp op) {
  const int m = a.rows(), n = a.cols();
  const int bm = b.rows(), bn = b.cols();
  assert((bm == m || bm == 1) && (bn == n || bn == 1));
  Tensor out =
      Tensor::MakeResult(m, n, {a.impl_, b.impl_}, Tensor::Fill::kOverwrite);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < n; ++c) {
      const float av = a.impl_->value[static_cast<size_t>(r) * n + c];
      const float bv = b.impl_->value[BIdx(r, c, bm, bn)];
      float v = 0;
      switch (op) {
        case BinOp::kAdd: v = av + bv; break;
        case BinOp::kSub: v = av - bv; break;
        case BinOp::kMul: v = av * bv; break;
      }
      out.impl_->value[static_cast<size_t>(r) * n + c] = v;
    }
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const bi = b.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, n, bm, bn, op]() {
      float* ag = ai->requires_grad ? GradPtr(ai) : nullptr;
      float* bg = bi->requires_grad ? GradPtr(bi) : nullptr;
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          const float g = oi->grad[static_cast<size_t>(r) * n + c];
          if (g == 0.0f) continue;
          const size_t b_idx = BIdx(r, c, bm, bn);
          switch (op) {
            case BinOp::kAdd:
              if (ag) ag[static_cast<size_t>(r) * n + c] += g;
              if (bg) bg[b_idx] += g;
              break;
            case BinOp::kSub:
              if (ag) ag[static_cast<size_t>(r) * n + c] += g;
              if (bg) bg[b_idx] -= g;
              break;
            case BinOp::kMul:
              if (ag) {
                ag[static_cast<size_t>(r) * n + c] += g * bi->value[b_idx];
              }
              if (bg) {
                bg[b_idx] += g * ai->value[static_cast<size_t>(r) * n + c];
              }
              break;
          }
        }
      }
    };
  }
  return out;
}

// Elementwise unary op with derivative expressed from (input, output).
Tensor Unary(const Tensor& a, float (*fwd)(float),
             float (*dfn)(float /*x*/, float /*y*/)) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int i = 0; i < m * n; ++i) out.impl_->value[i] = fwd(a.impl_->value[i]);
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, dfn, m, n]() {
      float* ag = GradPtr(ai);
      for (int i = 0; i < m * n; ++i) {
        ag[i] += oi->grad[i] * dfn(ai->value[i], oi->value[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) { return Binary(a, b, BinOp::kAdd); }
Tensor Sub(const Tensor& a, const Tensor& b) { return Binary(a, b, BinOp::kSub); }
Tensor Mul(const Tensor& a, const Tensor& b) { return Binary(a, b, BinOp::kMul); }

Tensor Scale(const Tensor& a, float s) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int i = 0; i < m * n; ++i) out.impl_->value[i] = a.impl_->value[i] * s;
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, s, m, n]() {
      float* ag = GradPtr(ai);
      for (int i = 0; i < m * n; ++i) ag[i] += oi->grad[i] * s;
    };
  }
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int i = 0; i < m * n; ++i) out.impl_->value[i] = a.impl_->value[i] + s;
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai);
      for (int i = 0; i < m * n; ++i) ag[i] += oi->grad[i];
    };
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  return Unary(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

namespace {

// Exact (erf-form) GELU and its derivative Phi(x) + x * phi(x).
inline float GeluFwd(float x) {
  return 0.5f * x * (1.0f + std::erf(x * 0.70710678118654752f));
}
inline float GeluDeriv(float x) {
  const float cdf = 0.5f * (1.0f + std::erf(x * 0.70710678118654752f));
  const float pdf = 0.39894228040143268f * std::exp(-0.5f * x * x);
  return cdf + x * pdf;
}

}  // namespace

Tensor Gelu(const Tensor& a) {
  return Unary(
      a, [](float x) { return GeluFwd(x); },
      [](float x, float) { return GeluDeriv(x); });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::exp(std::min(x, 30.0f)); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::log(std::max(x, kLogEps)); },
      [](float x, float) { return 1.0f / std::max(x, kLogEps); });
}

Tensor Sqrt(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float, float y) { return y > 0 ? 0.5f / y : 0.0f; });
}

Tensor Square(const Tensor& a) {
  return Unary(
      a, [](float x) { return x * x; }, [](float x, float) { return 2 * x; });
}

Tensor Abs(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::abs(x); },
      [](float x, float) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}

Tensor Transpose(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(n, m, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < n; ++c) {
      out.impl_->value[static_cast<size_t>(c) * m + r] =
          a.impl_->value[static_cast<size_t>(r) * n + c];
    }
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai);
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          ag[static_cast<size_t>(r) * n + c] +=
              oi->grad[static_cast<size_t>(c) * m + r];
        }
      }
    };
  }
  return out;
}

Tensor Sum(const Tensor& a) {
  Tensor out = Tensor::MakeResult(1, 1, {a.impl_}, Tensor::Fill::kOverwrite);
  float total = 0;
  for (float v : a.impl_->value) total += v;
  out.impl_->value[0] = total;
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi]() {
      const float g = oi->grad[0];
      float* ag = GradPtr(ai);
      const size_t count = ai->value.size();
      for (size_t i = 0; i < count; ++i) ag[i] += g;
    };
  }
  return out;
}

Tensor Mean(const Tensor& a) {
  return Scale(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor RowSum(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, 1, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int r = 0; r < m; ++r) {
    float total = 0;
    for (int c = 0; c < n; ++c) {
      total += a.impl_->value[static_cast<size_t>(r) * n + c];
    }
    out.impl_->value[r] = total;
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai);
      for (int r = 0; r < m; ++r) {
        const float g = oi->grad[r];
        for (int c = 0; c < n; ++c) {
          ag[static_cast<size_t>(r) * n + c] += g;
        }
      }
    };
  }
  return out;
}

Tensor RowMean(const Tensor& a) {
  return Scale(RowSum(a), 1.0f / static_cast<float>(a.cols()));
}

Tensor SoftmaxRows(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeResult(m, n, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int r = 0; r < m; ++r) {
    const float* row = a.impl_->value.data() + static_cast<size_t>(r) * n;
    float* orow = out.impl_->value.data() + static_cast<size_t>(r) * n;
    float max_v = row[0];
    for (int c = 1; c < n; ++c) max_v = std::max(max_v, row[c]);
    float total = 0;
    for (int c = 0; c < n; ++c) {
      orow[c] = std::exp(row[c] - max_v);
      total += orow[c];
    }
    for (int c = 0; c < n; ++c) orow[c] /= total;
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n]() {
      float* ag = GradPtr(ai);
      for (int r = 0; r < m; ++r) {
        const float* y = oi->value.data() + static_cast<size_t>(r) * n;
        const float* gy = oi->grad.data() + static_cast<size_t>(r) * n;
        float* gx = ag + static_cast<size_t>(r) * n;
        float dot = 0;
        for (int c = 0; c < n; ++c) dot += y[c] * gy[c];
        for (int c = 0; c < n; ++c) gx[c] += y[c] * (gy[c] - dot);
      }
    };
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  const int m = parts[0].rows();
  int total_cols = 0;
  std::vector<std::shared_ptr<Tensor::Impl>> parents;
  for (const Tensor& p : parts) {
    assert(p.rows() == m);
    total_cols += p.cols();
    parents.push_back(p.impl_);
  }
  Tensor out =
      Tensor::MakeResult(m, total_cols, parents, Tensor::Fill::kOverwrite);
  int offset = 0;
  for (const Tensor& p : parts) {
    const int n = p.cols();
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < n; ++c) {
        out.impl_->value[static_cast<size_t>(r) * total_cols + offset + c] =
            p.impl_->value[static_cast<size_t>(r) * n + c];
      }
    }
    offset += n;
  }
  if (out.requires_grad()) {
    // The parts are exactly the result's parent edges — iterate those
    // instead of capturing a second vector of owners.
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [oi, m, total_cols]() {
      int offset = 0;
      for (const auto& pi : oi->parents) {
        const int n = pi->cols;
        if (pi->requires_grad) {
          float* pg = GradPtr(pi.get());
          for (int r = 0; r < m; ++r) {
            for (int c = 0; c < n; ++c) {
              pg[static_cast<size_t>(r) * n + c] +=
                  oi->grad[static_cast<size_t>(r) * total_cols + offset + c];
            }
          }
        }
        offset += n;
      }
    };
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  const int n = parts[0].cols();
  int total_rows = 0;
  std::vector<std::shared_ptr<Tensor::Impl>> parents;
  for (const Tensor& p : parts) {
    assert(p.cols() == n);
    total_rows += p.rows();
    parents.push_back(p.impl_);
  }
  Tensor out =
      Tensor::MakeResult(total_rows, n, parents, Tensor::Fill::kOverwrite);
  int offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.impl_->value.begin(), p.impl_->value.end(),
              out.impl_->value.begin() + static_cast<size_t>(offset) * n);
    offset += p.rows();
  }
  if (out.requires_grad()) {
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [oi, n]() {
      int offset = 0;
      for (const auto& pi : oi->parents) {
        if (pi->requires_grad) {
          float* pg = GradPtr(pi.get());
          for (int i = 0; i < pi->rows * n; ++i) {
            pg[i] += oi->grad[static_cast<size_t>(offset) * n + i];
          }
        }
        offset += pi->rows;
      }
    };
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  const int m = a.rows(), n = a.cols();
  assert(start >= 0 && start + len <= n);
  Tensor out = Tensor::MakeResult(m, len, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < len; ++c) {
      out.impl_->value[static_cast<size_t>(r) * len + c] =
          a.impl_->value[static_cast<size_t>(r) * n + start + c];
    }
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, m, n, start, len]() {
      float* ag = GradPtr(ai);
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < len; ++c) {
          ag[static_cast<size_t>(r) * n + start + c] +=
              oi->grad[static_cast<size_t>(r) * len + c];
        }
      }
    };
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  const int n = a.cols();
  assert(start >= 0 && start + len <= a.rows());
  Tensor out = Tensor::MakeResult(len, n, {a.impl_}, Tensor::Fill::kOverwrite);
  std::copy(a.impl_->value.begin() + static_cast<size_t>(start) * n,
            a.impl_->value.begin() + static_cast<size_t>(start + len) * n,
            out.impl_->value.begin());
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, n, start, len]() {
      float* ag = GradPtr(ai);
      for (int i = 0; i < len * n; ++i) {
        ag[static_cast<size_t>(start) * n + i] += oi->grad[i];
      }
    };
  }
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  const int n = a.cols();
  const int m = static_cast<int>(indices.size());
  Tensor out = Tensor::MakeResult(m, n, {a.impl_}, Tensor::Fill::kOverwrite);
  for (int r = 0; r < m; ++r) {
    assert(indices[r] >= 0 && indices[r] < a.rows());
    std::copy(a.impl_->value.begin() + static_cast<size_t>(indices[r]) * n,
              a.impl_->value.begin() + static_cast<size_t>(indices[r] + 1) * n,
              out.impl_->value.begin() + static_cast<size_t>(r) * n);
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, indices, m, n]() {
      float* ag = GradPtr(ai);
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          ag[static_cast<size_t>(indices[r]) * n + c] +=
              oi->grad[static_cast<size_t>(r) * n + c];
        }
      }
    };
  }
  return out;
}

Tensor Dropout(const Tensor& a, float p, util::Rng* rng) {
  if (p <= 0.0f) return a;
  const int m = a.rows(), n = a.cols();
  const float scale = 1.0f / (1.0f - p);
  // The mask is itself a (gradient-free) tensor so its storage recycles
  // with the graph; as a parent of `out` it stays alive for the backward
  // pass. Allocated before `out` to preserve the arena's child-after-parent
  // ordering. Leaves without grad never affect any_grad or the topo sweep.
  Tensor mask = NewTensor(m, n, /*requires_grad=*/false, /*zero_fill=*/false);
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, mask.impl_},
                                  Tensor::Fill::kOverwrite);
  float* mv = mask.impl_->value.data();
  for (int i = 0; i < m * n; ++i) {
    mv[i] = rng->Bernoulli(p) ? 0.0f : scale;
    out.impl_->value[i] = a.impl_->value[i] * mv[i];
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const mi = mask.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, mi, oi, m, n]() {
      float* ag = GradPtr(ai);
      const float* mv = mi->value.data();
      for (int i = 0; i < m * n; ++i) ag[i] += oi->grad[i] * mv[i];
    };
  }
  return out;
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets) {
  const int m = logits.rows(), n = logits.cols();
  assert(static_cast<int>(targets.size()) == m);
  // Cache the softmax for the backward pass as a gradient-free parent
  // tensor (arena-recycled with the rest of the graph); allocated before
  // `out` to preserve child-after-parent acquisition order.
  Tensor probs = NewTensor(m, n, /*requires_grad=*/false, /*zero_fill=*/false);
  Tensor out = Tensor::MakeResult(1, 1, {logits.impl_, probs.impl_},
                                  Tensor::Fill::kOverwrite);
  float loss = 0;
  for (int r = 0; r < m; ++r) {
    const float* row = logits.impl_->value.data() + static_cast<size_t>(r) * n;
    float* prow = probs.impl_->value.data() + static_cast<size_t>(r) * n;
    float max_v = row[0];
    for (int c = 1; c < n; ++c) max_v = std::max(max_v, row[c]);
    float total = 0;
    for (int c = 0; c < n; ++c) {
      prow[c] = std::exp(row[c] - max_v);
      total += prow[c];
    }
    for (int c = 0; c < n; ++c) prow[c] /= total;
    loss -= std::log(std::max(prow[targets[r]], kLogEps));
  }
  out.impl_->value[0] = loss / static_cast<float>(m);
  if (out.requires_grad()) {
    Tensor::Impl* const li = logits.impl_.get();
    Tensor::Impl* const pi = probs.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [li, pi, oi, targets, m, n]() {
      const float g = oi->grad[0] / static_cast<float>(m);
      float* lg = GradPtr(li);
      for (int r = 0; r < m; ++r) {
        const float* prow = pi->value.data() + static_cast<size_t>(r) * n;
        float* grow = lg + static_cast<size_t>(r) * n;
        for (int c = 0; c < n; ++c) {
          grow[c] += g * (prow[c] - (c == targets[r] ? 1.0f : 0.0f));
        }
      }
    };
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fused serving kernels
// ---------------------------------------------------------------------------
//
// Contiguous row-major single-pass kernels; the __restrict qualifiers and
// simple ascending inner loops are what lets the compiler vectorize them
// (see -DQPE_NATIVE=ON for arch-specific codegen). Forward arithmetic is
// bit-identical to the op chains they replace — see tensor.h.

Tensor LinearRowBias(const Tensor& x, const Tensor& w, const Tensor& bias) {
  assert(x.cols() == w.rows());
  const int m = x.rows(), k = x.cols(), n = w.cols();
  assert(bias.rows() == 1 && bias.cols() == n);
  Tensor out = Tensor::MakeResult(m, n, {x.impl_, w.impl_, bias.impl_});
  const float* xv = x.impl_->value.data();
  const float* wv = w.impl_->value.data();
  const float* biasv = bias.impl_->value.data();
  float* ov = out.impl_->value.data();  // pre-zeroed by MakeResult
  const int64_t flops = 2LL * m * k * n;
  if (flops < kMatMulParallelFlops) {
    MatMulForwardRange(xv, wv, ov, 0, m, k, n);
  } else {
    util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
      MatMulForwardRange(xv, wv, ov, static_cast<int>(i0),
                         static_cast<int>(i1), k, n);
    });
  }
  // Bias is added after each output element's multiply fully accumulated —
  // the same order as the Add(MatMul(x, w), bias) chain, so bit-identical.
  for (int i = 0; i < m; ++i) {
    float* __restrict orow = ov + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) orow[j] += biasv[j];
  }
  if (out.requires_grad()) {
    Tensor::Impl* const xi = x.impl_.get();
    Tensor::Impl* const wi = w.impl_.get();
    Tensor::Impl* const bi = bias.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [xi, wi, bi, oi, m, k, n, flops]() {
      const float* og = oi->grad.data();
      if (xi->requires_grad) {
        float* xg = GradPtr(xi);
        const float* wv = wi->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardA(og, wv, xg, 0, m, k, n);
        } else {
          util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
            MatMulBackwardA(og, wv, xg, static_cast<int>(i0),
                            static_cast<int>(i1), k, n);
          });
        }
      }
      if (wi->requires_grad) {
        float* wg = GradPtr(wi);
        const float* xv = xi->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardB(xv, og, wg, 0, k, m, k, n);
        } else {
          util::ParallelFor(k, /*grain=*/1, [&](int64_t p0, int64_t p1) {
            MatMulBackwardB(xv, og, wg, static_cast<int>(p0),
                            static_cast<int>(p1), m, k, n);
          });
        }
      }
      if (bi->requires_grad) {
        // Column sums: one add_rows per dOut row keeps the ascending-row
        // accumulation order per bias element.
        float* __restrict bg = GradPtr(bi);
        for (int i = 0; i < m; ++i) {
          simd::K().add_rows(bg, og + static_cast<size_t>(i) * n,
                             static_cast<size_t>(n));
        }
      }
    };
  }
  return out;
}

Tensor LinearRowBiasRelu(const Tensor& x, const Tensor& w,
                         const Tensor& bias) {
  assert(x.cols() == w.rows());
  const int m = x.rows(), k = x.cols(), n = w.cols();
  assert(bias.rows() == 1 && bias.cols() == n);
  Tensor out = Tensor::MakeResult(m, n, {x.impl_, w.impl_, bias.impl_},
                                  Tensor::Fill::kOverwrite);
  const float* xv = x.impl_->value.data();
  const float* wv = w.impl_->value.data();
  const float* biasv = bias.impl_->value.data();
  float* ov = out.impl_->value.data();
  const int64_t flops = 2LL * m * k * n;
  // linear_bias_act is bit-identical to fill + matmul_forward_range + the
  // bias_relu pass (see nn/simd.h), and rows are independent, so splitting
  // the row range across threads keeps LinearRowBias's parallel shape.
  if (flops < kMatMulParallelFlops) {
    simd::K().linear_bias_act(xv, wv, biasv, ov, m, k, n, /*relu=*/1);
  } else {
    util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
      simd::K().linear_bias_act(xv + i0 * k, wv, biasv, ov + i0 * n,
                                static_cast<int>(i1 - i0), k, n, /*relu=*/1);
    });
  }
  if (out.requires_grad()) {
    Tensor::Impl* const xi = x.impl_.get();
    Tensor::Impl* const wi = w.impl_.get();
    Tensor::Impl* const bi = bias.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [xi, wi, bi, oi, m, k, n, flops]() {
      // Recover the pre-activation gradient into a zero-filled scratch by
      // gating dOut on out > 0 (out > 0 iff the pre-activation was > 0:
      // the GEMM accumulator starts at +0 and IEEE addition only yields
      // -0 from two -0 operands, so the clamp gates exactly the <= 0
      // pre-activations). Clamped entries stay exactly +0 — the same bits
      // the separate Relu node's input-grad buffer held in the chain —
      // and the bias column sums ride the same gated pass in the chain's
      // ascending row order, so all three gradients match the
      // LinearRowBias + Relu chain bit for bit.
      thread_local std::vector<float> d_pre;
      d_pre.assign(static_cast<size_t>(m) * n, 0.0f);
      float* bg = bi->requires_grad ? GradPtr(bi) : nullptr;
      simd::K().bias_act_backward(oi->value.data(), oi->grad.data(),
                                  d_pre.data(), bg, m, n);
      const float* og = d_pre.data();
      if (xi->requires_grad) {
        float* xg = GradPtr(xi);
        const float* wv = wi->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardA(og, wv, xg, 0, m, k, n);
        } else {
          util::ParallelFor(m, /*grain=*/1, [&](int64_t i0, int64_t i1) {
            MatMulBackwardA(og, wv, xg, static_cast<int>(i0),
                            static_cast<int>(i1), k, n);
          });
        }
      }
      if (wi->requires_grad) {
        float* wg = GradPtr(wi);
        const float* xv = xi->value.data();
        if (flops < kMatMulParallelFlops) {
          MatMulBackwardB(xv, og, wg, 0, k, m, k, n);
        } else {
          util::ParallelFor(k, /*grain=*/1, [&](int64_t p0, int64_t p1) {
            MatMulBackwardB(xv, og, wg, static_cast<int>(p0),
                            static_cast<int>(p1), m, k, n);
          });
        }
      }
    };
  }
  return out;
}

Tensor BiasRelu(const Tensor& a, const Tensor& bias) {
  const int m = a.rows(), n = a.cols();
  assert(bias.rows() == 1 && bias.cols() == n);
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, bias.impl_},
                                  Tensor::Fill::kOverwrite);
  simd::K().bias_relu(a.impl_->value.data(), bias.impl_->value.data(),
                      out.impl_->value.data(), m, n);
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const bi = bias.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, n]() {
      // out > 0 iff the pre-activation a + bias was > 0; the gated
      // accumulation lives in the dispatch table (BiasActBackwardT).
      float* ag = ai->requires_grad ? GradPtr(ai) : nullptr;
      float* bg = bi->requires_grad ? GradPtr(bi) : nullptr;
      simd::K().bias_act_backward(oi->value.data(), oi->grad.data(), ag, bg,
                                  m, n);
    };
  }
  return out;
}

Tensor BiasGelu(const Tensor& a, const Tensor& bias) {
  const int m = a.rows(), n = a.cols();
  assert(bias.rows() == 1 && bias.cols() == n);
  Tensor out = Tensor::MakeResult(m, n, {a.impl_, bias.impl_},
                                  Tensor::Fill::kOverwrite);
  {
    const float* __restrict av = a.impl_->value.data();
    const float* __restrict bv = bias.impl_->value.data();
    float* __restrict ov = out.impl_->value.data();
    for (int r = 0; r < m; ++r) {
      const float* __restrict arow = av + static_cast<size_t>(r) * n;
      float* __restrict orow = ov + static_cast<size_t>(r) * n;
      for (int c = 0; c < n; ++c) orow[c] = GeluFwd(arow[c] + bv[c]);
    }
  }
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const bi = bias.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, bi, oi, m, n]() {
      const float* __restrict av = ai->value.data();
      const float* __restrict bv = bi->value.data();
      const float* __restrict og = oi->grad.data();
      float* __restrict ag = ai->requires_grad ? GradPtr(ai) : nullptr;
      float* __restrict bg = bi->requires_grad ? GradPtr(bi) : nullptr;
      for (int r = 0; r < m; ++r) {
        const size_t base = static_cast<size_t>(r) * n;
        for (int c = 0; c < n; ++c) {
          const float g = og[base + c] * GeluDeriv(av[base + c] + bv[c]);
          if (ag) ag[base + c] += g;
          if (bg) bg[c] += g;
        }
      }
    };
  }
  return out;
}

// Row statistics live in simd_kernels_inl.h (simd::LayerNormRowStats): the
// forward and backward kernels of every SIMD level share one definition so
// their mean/recip bits can never diverge.

Tensor LayerNormRows(const Tensor& x, const Tensor& gamma, const Tensor& beta) {
  const int m = x.rows(), n = x.cols();
  assert(gamma.rows() == 1 && gamma.cols() == n);
  assert(beta.rows() == 1 && beta.cols() == n);
  Tensor out = Tensor::MakeResult(m, n, {x.impl_, gamma.impl_, beta.impl_},
                                  Tensor::Fill::kOverwrite);
  const float invn = 1.0f / static_cast<float>(n);
  simd::K().layer_norm_rows(x.impl_->value.data(), gamma.impl_->value.data(),
                            beta.impl_->value.data(), out.impl_->value.data(),
                            m, n, invn);
  if (out.requires_grad()) {
    Tensor::Impl* const xi = x.impl_.get();
    Tensor::Impl* const gi = gamma.impl_.get();
    Tensor::Impl* const bi = beta.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [xi, gi, bi, oi, m, n, invn]() {
      // dxhat = dy * gamma; dx = r * (dxhat - mean(dxhat) - xhat *
      // mean(dxhat * xhat)) — the standard layer-norm backward, in the
      // dispatch table (LayerNormRowsBackwardT) with the row statistics
      // recomputed through the shared LayerNormRowStats.
      float* xg = xi->requires_grad ? GradPtr(xi) : nullptr;
      float* gg = gi->requires_grad ? GradPtr(gi) : nullptr;
      float* bg = bi->requires_grad ? GradPtr(bi) : nullptr;
      simd::K().layer_norm_rows_backward(xi->value.data(), gi->value.data(),
                                         oi->grad.data(), xg, gg, bg, m, n,
                                         invn);
    };
  }
  return out;
}

Tensor SoftmaxRowsMasked(const Tensor& a, const std::vector<int>& valid) {
  const int m = a.rows(), n = a.cols();
  assert(static_cast<int>(valid.size()) == m);
  Tensor out = Tensor::MakeResult(m, n, {a.impl_});
  // Padding columns keep MakeResult's zero fill: the kernel only writes the
  // valid prefix of each row.
  simd::K().softmax_rows_masked(a.impl_->value.data(), out.impl_->value.data(),
                                valid.data(), m, n);
  if (out.requires_grad()) {
    Tensor::Impl* const ai = a.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [ai, oi, valid, m, n]() {
      simd::K().softmax_rows_masked_backward(oi->value.data(),
                                             oi->grad.data(), GradPtr(ai),
                                             valid.data(), m, n);
    };
  }
  return out;
}

Tensor MultiHeadAttentionPacked(const Tensor& q, const Tensor& k,
                                const Tensor& v,
                                const std::vector<int>& offsets,
                                const std::vector<int>& lengths,
                                int num_heads, float scale) {
  const int total = q.rows(), dim = q.cols();
  assert(k.rows() == total && k.cols() == dim);
  assert(v.rows() == total && v.cols() == dim);
  assert(num_heads > 0 && dim % num_heads == 0);
  assert(offsets.size() == lengths.size());
  Tensor out = Tensor::MakeResult(total, dim, {q.impl_, k.impl_, v.impl_});
#ifndef NDEBUG
  for (size_t s = 0; s < lengths.size(); ++s) {
    assert(offsets[s] >= 0 && lengths[s] > 0 &&
           offsets[s] + lengths[s] <= total);
  }
#endif
  // The fused forward (kt pack, scores, softmax, context) lives in the SIMD
  // dispatch table; see AttentionForwardPackedT in simd_kernels_inl.h for
  // the kernel body and its bit-exactness notes.
  simd::K().attention_forward_packed(
      q.impl_->value.data(), k.impl_->value.data(), v.impl_->value.data(),
      out.impl_->value.data(), offsets.data(), lengths.data(),
      static_cast<int>(lengths.size()), num_heads, dim, scale);
  if (out.requires_grad()) {
    Tensor::Impl* const qi = q.impl_.get();
    Tensor::Impl* const ki = k.impl_.get();
    Tensor::Impl* const vi = v.impl_.get();
    Tensor::Impl* const oi = out.impl_.get();  // raw: no self-cycle
    out.impl_->backward_fn = [qi, ki, vi, oi, offsets, lengths, num_heads,
                              scale, dim]() {
      // Probabilities are recomputed inside the kernel (cheaper than
      // caching [len, len] per sequence per head across the graph's
      // lifetime); see AttentionBackwardPackedT in simd_kernels_inl.h.
      float* qg = qi->requires_grad ? GradPtr(qi) : nullptr;
      float* kg = ki->requires_grad ? GradPtr(ki) : nullptr;
      float* vg = vi->requires_grad ? GradPtr(vi) : nullptr;
      simd::K().attention_backward_packed(
          qi->value.data(), ki->value.data(), vi->value.data(),
          oi->grad.data(), qg, kg, vg, offsets.data(), lengths.data(),
          static_cast<int>(lengths.size()), num_heads, dim, scale);
    };
  }
  return out;
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  double total = 0;
  for (const Tensor& p : params) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0) {
    const float scale = max_norm / norm;
    for (Tensor p : params) {  // shared handle: copy aliases the storage
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace qpe::nn
