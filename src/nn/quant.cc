#include "nn/quant.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "nn/simd.h"

namespace qpe::nn {

namespace {

// Packed-tile int8 GEMM knob, re-read per call so tests can A/B the two
// layouts in-process with setenv. Default on; QPE_INT8_PACKED=0 falls back
// to the channel-contiguous int8_gemm layout.
bool Int8PackedEnabled() {
  const char* s = std::getenv("QPE_INT8_PACKED");
  return s == nullptr || std::strcmp(s, "0") != 0;
}

}  // namespace

int8_t QuantizeValue(float x, float inv_scale) {
  // Round to nearest, ties away from zero — matches the reference
  // quantizers of the usual int8 toolchains. Spelled trunc(t +
  // copysign(0.5, t)) instead of std::round so every step is a plain IEEE
  // op the vector quantize_buffer lanes can reproduce bit for bit.
  const float t = x * inv_scale;
  const float scaled = std::trunc(t + std::copysign(0.5f, t));
  if (scaled >= 127.0f) return 127;
  if (scaled <= -127.0f) return -127;
  return static_cast<int8_t>(scaled);
}

void QuantizeBuffer(const float* x, size_t n, float scale, int8_t* out) {
  const float inv = 1.0f / scale;
  simd::K().quantize_buffer(x, static_cast<int>(n), inv, out);
}

void QuantCalibrator::Observe(const float* x, size_t n) {
  float m = absmax_;
  for (size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  absmax_ = m;
}

float QuantCalibrator::scale() const {
  const float s = absmax_ / 127.0f;
  return s > kMinQuantScale ? s : kMinQuantScale;
}

QuantizedLinear QuantizedLinear::FromLinear(const Tensor& weight,
                                            const Tensor& bias,
                                            float input_scale) {
  const int in = weight.rows();
  const int out = weight.cols();
  assert(bias.rows() == 1 && bias.cols() == out);
  QuantizedLinear q;
  q.in_ = in;
  q.out_ = out;
  q.input_scale_ = input_scale > kMinQuantScale ? input_scale : kMinQuantScale;
  q.weight_.resize(static_cast<size_t>(out) * in);
  q.weight_scale_.resize(out);
  q.bias_.assign(bias.value().begin(), bias.value().end());
  const std::vector<float>& w = weight.value();  // [in, out] row-major
  for (int j = 0; j < out; ++j) {
    float absmax = 0.0f;
    for (int p = 0; p < in; ++p) {
      const float a = std::fabs(w[static_cast<size_t>(p) * out + j]);
      if (a > absmax) absmax = a;
    }
    const float scale = absmax / 127.0f;
    const float safe = scale > kMinQuantScale ? scale : kMinQuantScale;
    q.weight_scale_[j] = safe;
    const float inv = 1.0f / safe;
    int8_t* channel = q.weight_.data() + static_cast<size_t>(j) * in;
    for (int p = 0; p < in; ++p) {
      channel[p] = QuantizeValue(w[static_cast<size_t>(p) * out + j], inv);
    }
  }
  // Pre-pack the weight tiles once here so the serve path never touches
  // the channel-contiguous layout when the packed GEMM is enabled.
  q.k_pad_ = simd::Int8PackedKPad(in);
  q.packed_tiles_.resize(simd::Int8PackedSize(in, out));
  simd::PackInt8WeightTiles(q.weight_.data(), in, out,
                            q.packed_tiles_.data());
  return q;
}

void QuantizedLinear::Forward(const float* x, int m, float* y,
                              std::vector<int8_t>* qx_scratch,
                              std::vector<float>* row_scale_scratch) const {
  assert(in_ > 0 && out_ > 0);
  const float inv = 1.0f / input_scale_;
  // Static per-tensor activation scale: every row shares input_scale_.
  row_scale_scratch->assign(static_cast<size_t>(m), input_scale_);
  const auto& kern = simd::K();
  if (Int8PackedEnabled()) {
    // Packed path: activations quantized into [m, k_pad] rows with zeroed
    // k tails (the padding contributes exact zeros to the integer dots).
    qx_scratch->resize(static_cast<size_t>(m) * k_pad_);
    if (in_ == k_pad_) {
      kern.quantize_buffer(x, m * in_, inv, qx_scratch->data());
    } else {
      for (int i = 0; i < m; ++i) {
        int8_t* row = qx_scratch->data() + static_cast<size_t>(i) * k_pad_;
        kern.quantize_buffer(x + static_cast<size_t>(i) * in_, in_, inv, row);
        std::memset(row + in_, 0, static_cast<size_t>(k_pad_ - in_));
      }
    }
    kern.int8_gemm_packed(qx_scratch->data(), packed_tiles_.data(), y, m, in_,
                          out_, row_scale_scratch->data(),
                          weight_scale_.data(), bias_.data());
    return;
  }
  qx_scratch->resize(static_cast<size_t>(m) * in_);
  kern.quantize_buffer(x, m * in_, inv, qx_scratch->data());
  kern.int8_gemm(qx_scratch->data(), weight_.data(), y, m, in_, out_,
                 row_scale_scratch->data(), weight_scale_.data(),
                 bias_.data());
}

void QuantizedLinear::ForwardPrequantized(
    int m, float* y, const std::vector<int8_t>& qx_scratch,
    std::vector<float>* row_scale_scratch) const {
  assert(in_ > 0 && out_ > 0);
  row_scale_scratch->assign(static_cast<size_t>(m), input_scale_);
  const auto& kern = simd::K();
  if (Int8PackedEnabled()) {
    assert(qx_scratch.size() == static_cast<size_t>(m) * k_pad_);
    kern.int8_gemm_packed(qx_scratch.data(), packed_tiles_.data(), y, m, in_,
                          out_, row_scale_scratch->data(),
                          weight_scale_.data(), bias_.data());
    return;
  }
  assert(qx_scratch.size() == static_cast<size_t>(m) * in_);
  kern.int8_gemm(qx_scratch.data(), weight_.data(), y, m, in_, out_,
                 row_scale_scratch->data(), weight_scale_.data(),
                 bias_.data());
}

}  // namespace qpe::nn
