#include "nn/quant.h"

#include <cassert>
#include <cmath>

#include "nn/simd.h"

namespace qpe::nn {

int8_t QuantizeValue(float x, float inv_scale) {
  // std::nearbyint under the default rounding mode would be
  // round-to-nearest-even; round() (ties away from zero) matches the
  // reference quantizers of the usual int8 toolchains and is equally
  // deterministic.
  const float scaled = std::round(x * inv_scale);
  if (scaled >= 127.0f) return 127;
  if (scaled <= -127.0f) return -127;
  return static_cast<int8_t>(scaled);
}

void QuantizeBuffer(const float* x, size_t n, float scale, int8_t* out) {
  const float inv = 1.0f / scale;
  for (size_t i = 0; i < n; ++i) out[i] = QuantizeValue(x[i], inv);
}

void QuantCalibrator::Observe(const float* x, size_t n) {
  float m = absmax_;
  for (size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  absmax_ = m;
}

float QuantCalibrator::scale() const {
  const float s = absmax_ / 127.0f;
  return s > kMinQuantScale ? s : kMinQuantScale;
}

QuantizedLinear QuantizedLinear::FromLinear(const Tensor& weight,
                                            const Tensor& bias,
                                            float input_scale) {
  const int in = weight.rows();
  const int out = weight.cols();
  assert(bias.rows() == 1 && bias.cols() == out);
  QuantizedLinear q;
  q.in_ = in;
  q.out_ = out;
  q.input_scale_ = input_scale > kMinQuantScale ? input_scale : kMinQuantScale;
  q.weight_.resize(static_cast<size_t>(out) * in);
  q.weight_scale_.resize(out);
  q.bias_.assign(bias.value().begin(), bias.value().end());
  const std::vector<float>& w = weight.value();  // [in, out] row-major
  for (int j = 0; j < out; ++j) {
    float absmax = 0.0f;
    for (int p = 0; p < in; ++p) {
      const float a = std::fabs(w[static_cast<size_t>(p) * out + j]);
      if (a > absmax) absmax = a;
    }
    const float scale = absmax / 127.0f;
    const float safe = scale > kMinQuantScale ? scale : kMinQuantScale;
    q.weight_scale_[j] = safe;
    const float inv = 1.0f / safe;
    int8_t* channel = q.weight_.data() + static_cast<size_t>(j) * in;
    for (int p = 0; p < in; ++p) {
      channel[p] = QuantizeValue(w[static_cast<size_t>(p) * out + j], inv);
    }
  }
  return q;
}

void QuantizedLinear::Forward(const float* x, int m, float* y,
                              std::vector<int8_t>* qx_scratch,
                              std::vector<float>* row_scale_scratch) const {
  assert(in_ > 0 && out_ > 0);
  qx_scratch->resize(static_cast<size_t>(m) * in_);
  QuantizeBuffer(x, static_cast<size_t>(m) * in_, input_scale_,
                 qx_scratch->data());
  // Static per-tensor activation scale: every row shares input_scale_.
  row_scale_scratch->assign(static_cast<size_t>(m), input_scale_);
  simd::K().int8_gemm(qx_scratch->data(), weight_.data(), y, m, in_, out_,
                      row_scale_scratch->data(), weight_scale_.data(),
                      bias_.data());
}

}  // namespace qpe::nn
