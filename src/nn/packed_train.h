#ifndef QPE_NN_PACKED_TRAIN_H_
#define QPE_NN_PACKED_TRAIN_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace qpe::nn {

// Gradient-capable sibling of the packed inference engine
// (nn/packed_forward.h): one columnar transformer forward that retains
// every activation the backward needs, plus a hand-scheduled columnar
// backward that replays the autograd op chain's gradient arithmetic
// through the dispatched simd::Kernels backward table.
//
// Bit-exactness contract: for a batch packed in REVERSE caller order (the
// autograd engine executes later-built sibling subtrees first, so caller
// plan ci is packed sequence S-1-ci), the forward activations and every
// gradient accumulated into the parameters are bit-identical — at every
// SIMD dispatch level — to running the per-plan op-chain forward/backward
// once per plan. The forward shares the inference kernels the op chain
// already dispatches to; the backward calls the same backward kernels in
// the op chain's reverse-topological order, and every per-memory-location
// accumulation sequence matches the per-plan order because the kernels
// accumulate rows in ascending packed order (= per-plan order under the
// reversed packing). Dropout masks are pre-drawn in caller plan order so
// the RNG consumption matches the per-plan path stream for stream.

// Raw view of one trainable parameter: the value pointer for the forward
// and the autograd node for gradient routing. Gradients are always
// resolved through GradPtr(impl) at backward time, so data-parallel
// shards under a GradientCapture accumulate into their private buffers
// exactly like the op-chain closures do.
struct PackedTrainParam {
  const float* v = nullptr;
  Tensor::Impl* impl = nullptr;
};

struct PackedTrainSite {
  PackedTrainParam weight;  // [in, out] row-major
  PackedTrainParam bias;    // [1, out]
};

struct PackedTrainLayerParams {
  PackedTrainParam norm1_gamma, norm1_beta, norm2_gamma, norm2_beta;
};

// Model view the encoder refreshes per call (checkpoint loads replace the
// parameter value buffers, never the autograd nodes).
struct PackedTrainView {
  int model_dim = 0;
  int ff_dim = 0;
  int num_heads = 0;
  int num_layers = 0;
  int level1_dim = 0;
  int level2_dim = 0;
  int level3_dim = 0;
  int output_dim = 0;  // == model_dim when has_projection is false
  bool has_projection = false;
  float dropout = 0.0f;
  PackedTrainParam embed1, embed2, embed3, positional;
  std::vector<PackedTrainLayerParams> layers;
  std::vector<PackedTrainSite> sites;  // layer-major wq,wk,wv,wo,ff1,ff2;
                                       // projection last when present
};

// Per-layer retained activations, all row-major over the packed rows.
struct PackedTrainLayerActs {
  std::vector<float> x;    // [rows, d] layer input
  std::vector<float> n1;   // [rows, d] norm1 output
  std::vector<float> q, k, v;  // [rows, d] attention projections
  std::vector<float> att;  // [rows, d] attention context
  std::vector<float> hm;   // [rows, d] post-attention residual
  std::vector<float> n2;   // [rows, d] norm2 output
  std::vector<float> ffa;  // [rows, f] ff1 ReLU output
  std::vector<float> mask_att, mask_ff;  // [rows, d] dropout multipliers
};

// Reusable training workspace: packing columns, retained activations and
// backward scratch, all growing to the high-water shape and persisting.
// One instance per thread via ThreadLocal(); the generation counter lets a
// deferred backward closure detect (and abort on) a workspace that a newer
// forward has overwritten — the shard-per-pair training loop runs exactly
// one forward per Backward(), so this never fires in practice.
class PackedTrainBatch {
 public:
  // --- packing columns (copied from the assembled nn::PackedBatch) ---
  std::vector<int> ids1, ids2, ids3;  // [rows]
  std::vector<int> positions;         // [rows]
  std::vector<int> offsets, lengths;  // [num_seqs]
  int rows = 0;
  int num_seqs = 0;

  PackedTrainView view;
  uint64_t generation = 0;
  bool used_dropout = false;

  // --- forward activations ---
  std::vector<PackedTrainLayerActs> layers;
  std::vector<float> hout;     // [rows, d] final hidden state
  std::vector<float> cls;      // [num_seqs, d] pooled CLS rows
  std::vector<float> proj;     // [num_seqs, output_dim]
  std::vector<float> scratch;  // [rows, d] pre-residual linear outputs

  // --- backward scratch ---
  std::vector<float> d_h, d_tmp, d_att, d_q, d_k, d_v, d_n1, d_n2;  // [rows,d]
  std::vector<float> d_act, d_pre;  // [rows, f]
  std::vector<float> d_cls;         // [num_seqs, d]

  static PackedTrainBatch& ThreadLocal();
};

// QPE_PACKED_TRAIN=0 falls back to the per-plan op-chain training path
// (the bitwise reference); defaults on. Orthogonal to QPE_PACKED, which
// gates the whole columnar family.
bool PackedTrainEnvEnabled();

// Runs the recording columnar forward over the packed workspace (columns
// and view already filled). A non-null `rng` enables dropout with the
// view's rate; masks are drawn in caller plan order (sequence S-1-ci for
// ci ascending), layer by layer, attention mask before feed-forward mask —
// the exact stream order of the per-plan Dropout ops. Bumps the
// workspace generation and returns the [num_seqs, output_dim] result
// (the projection output, or the pooled CLS rows when the model has no
// projection).
const float* PackedTrainForward(PackedTrainBatch& ws, util::Rng* rng);

// Columnar backward: consumes the retained activations and accumulates
// parameter gradients (through GradPtr) for the upstream gradient
// `out_grad` [num_seqs, output_dim]. `generation` must match the forward
// that produced the activations; a mismatch aborts.
void PackedTrainBackward(PackedTrainBatch& ws, const float* out_grad,
                         uint64_t generation);

}  // namespace qpe::nn

#endif  // QPE_NN_PACKED_TRAIN_H_
