#include "nn/parallel.h"

#include <cstddef>

#include "nn/arena.h"
#include "util/thread_pool.h"

namespace qpe::nn {

double ParallelGradientStep(const std::vector<Tensor>& params, int num_shards,
                            const std::function<Tensor(int)>& build_loss,
                            ShardGradBuffers* scratch) {
  scratch->resize(num_shards);
  std::vector<double> losses(num_shards, 0.0);

  util::ParallelRun(num_shards, [&](int shard) {
    // One shard graph = one arena epoch: declared first so the loss handle
    // and capture are destroyed before EndEpoch() recycles the graph.
    ArenaScope arena;
    // Redirect parameter-gradient writes into this shard's private
    // buffers; everything else in the shard graph is shard-local.
    GradientCapture capture(params, &(*scratch)[shard]);
    Tensor loss = build_loss(shard);
    loss.Backward();
    losses[shard] = loss.value()[0];
  });

  // Deterministic reduction: shards in ascending order, so the result is
  // independent of how the shard tasks were scheduled across threads.
  double total_loss = 0.0;
  for (int shard = 0; shard < num_shards; ++shard) {
    total_loss += losses[shard];
    const std::vector<std::vector<float>>& grads = (*scratch)[shard];
    for (size_t p = 0; p < params.size(); ++p) {
      Tensor param = params[p];  // shared handle: copy aliases the storage
      float* dst = param.grad().data();
      const std::vector<float>& src = grads[p];
      for (size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
    }
  }
  return total_loss;
}

}  // namespace qpe::nn
