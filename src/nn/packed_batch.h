#ifndef QPE_NN_PACKED_BATCH_H_
#define QPE_NN_PACKED_BATCH_H_

#include <cstdint>
#include <vector>

#include "nn/transformer.h"

namespace qpe::nn {

// Raw-pointer views of one transformer layer's normalization parameters,
// used by the packed inference engine (nn/packed_forward.h). The engine
// never owns weights: the fp32 encoder refreshes these pointers from its
// parameter tensors on every call (checkpoint loads replace the underlying
// buffers), the quantized encoder points them at vectors it owns.
struct PackedLayerView {
  const float* norm1_gamma = nullptr;
  const float* norm1_beta = nullptr;
  const float* norm2_gamma = nullptr;
  const float* norm2_beta = nullptr;
};

// Everything the packed engine needs to know about a model, as plain
// dimensions and borrowed pointers. The GEMM weights are deliberately
// absent — they reach the engine through its `linear` callback, which is
// how the same skeleton serves fp32, calibration-tap, and int8 callers.
struct PackedModelView {
  int model_dim = 0;
  int ff_dim = 0;
  int num_heads = 0;
  int num_layers = 0;
  int level1_dim = 0;
  int level2_dim = 0;
  int level3_dim = 0;
  int output_dim = 0;  // == model_dim when has_projection is false
  bool has_projection = false;
  const float* embed1 = nullptr;  // [vocab1, level1_dim]
  const float* embed2 = nullptr;  // [vocab2, level2_dim]
  const float* embed3 = nullptr;  // [vocab3, level3_dim]
  const float* positional = nullptr;  // [max_len, model_dim]
  std::vector<PackedLayerView> layers;
};

// Reusable columnar workspace of the packed batch pipeline: the token-id
// and position columns batch assembly fills (struct-of-arrays, one column
// per embedding level), plus every activation matrix the engine writes.
// All buffers grow to the high-water batch shape and then persist, so a
// steady-state micro-batch touches the heap zero times: the packer reuses
// the id columns and layout vectors, the engine reuses the activation
// matrices, and the quantized GEMM reuses the qx/row_scale scratch.
//
// One instance per thread via ThreadLocal(); nothing here is shared.
class PackedBatch {
 public:
  // --- filled by batch assembly (encoder::PackPlansColumns) ---
  std::vector<int> ids1, ids2, ids3;  // clamped token ids, one per row
  std::vector<int> lengths;           // per-plan token counts
  BatchLayout layout;                 // built in place, capacity reused

  // --- filled by the engine (nn/packed_forward.h) ---
  std::vector<float> h;       // [rows, d] hidden state
  std::vector<float> normed;  // [rows, d] layer-norm / GEMM output scratch
  std::vector<float> q, k, v;  // [rows, d] attention projections
  std::vector<float> kbt;      // [head][head_dim][rows] transposed keys
  std::vector<float> vb;       // [head][rows][head_dim] blocked values
  std::vector<float> ctx;      // [rows, d] attention context
  std::vector<float> ff;       // [rows, ff_dim]
  std::vector<float> cls;      // [num_seqs, d] pooled CLS rows
  std::vector<float> proj;     // [num_seqs, output_dim]
  std::vector<float> probs;    // max_len^2 attention-score scratch

  // --- quantized-linear scratch (QuantizedLinear::Forward) ---
  std::vector<int8_t> qx;
  std::vector<float> row_scale;

  // Model view the fp32 encoder refreshes per call (the quantized encoder
  // carries its own stable view instead).
  PackedModelView view;

  // Clears the id columns, lengths, and layout while keeping every
  // buffer's capacity. Call once per micro-batch before packing.
  void BeginBatch();

  // Rebuilds `layout` from `lengths` in place, reusing the offsets /
  // lengths / positions capacity. Same validation (and abort) semantics as
  // BatchLayout::FromLengths.
  void BuildLayout();

  // Marks the end of packing: if any id/layout column had to reallocate
  // since BeginBatch, records one growth event (see TotalGrowthEvents).
  void FinishPack();

  // Grows a buffer to at least n elements, recording a growth event when
  // the capacity was insufficient.
  void EnsureF(std::vector<float>* buf, size_t n);
  void EnsureI(std::vector<int>* buf, size_t n);
  void EnsureI8(std::vector<int8_t>* buf, size_t n);

  static PackedBatch& ThreadLocal();

  // Process-wide count of workspace reallocation events. Flat across
  // steady-state micro-batches — the arena-steady-state test asserts the
  // delta is zero after warmup.
  static uint64_t TotalGrowthEvents();

 private:
  size_t PackCapacitySum() const;
  size_t pack_capacity_snapshot_ = 0;
};

}  // namespace qpe::nn

#endif  // QPE_NN_PACKED_BATCH_H_
