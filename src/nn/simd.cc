#include "nn/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "nn/simd_kernels_inl.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace qpe::nn::simd {

// Per-ISA tables, defined in simd_avx2.cc / simd_neon.cc when the build
// compiles them (QPE_HAVE_* set by CMake for the matching architecture).
#if defined(QPE_HAVE_AVX2)
const Kernels* GetAvx2Kernels();
#endif
#if defined(QPE_HAVE_NEON)
const Kernels* GetNeonKernels();
#endif

namespace {

// Width-1 "vector" policy: instantiating the shared kernel bodies with it
// reproduces the pre-SIMD scalar loops statement for statement, so the
// scalar table is the bit-exactness reference for every other level.
struct ScalarOps {
  static constexpr int kLanes = 1;
  using Vec = float;
  static Vec Load(const float* p) { return *p; }
  static void Store(float* p, Vec v) { *p = v; }
  static Vec Broadcast(float x) { return x; }
  static Vec Add(Vec a, Vec b) { return a + b; }
  static Vec Sub(Vec a, Vec b) { return a - b; }
  static Vec Mul(Vec a, Vec b) { return a * b; }
  static Vec Div(Vec a, Vec b) { return a / b; }
  static Vec Max(Vec a, Vec b) { return a < b ? b : a; }
  static Vec Sqrt(Vec v) { return std::sqrt(v); }
  static float HMax(Vec v) { return v; }
  // std::exp, not a polynomial: the scalar table is the seed-bit-exact
  // reference, so its exp must be the libm call the pre-SIMD code made.
  static Vec Exp(Vec v) { return std::exp(v); }
};

void ScalarMatMulForwardRange(const float* a, const float* b, float* out,
                              int i0, int i1, int k, int n) {
  MatMulForwardRangeT<ScalarOps>(a, b, out, i0, i1, k, n);
}

void ScalarBiasRelu(const float* a, const float* bias, float* out, int m,
                    int n) {
  BiasReluT<ScalarOps>(a, bias, out, m, n);
}

void ScalarLayerNormRows(const float* x, const float* gamma, const float* beta,
                         float* out, int m, int n, float invn) {
  LayerNormRowsT<ScalarOps>(x, gamma, beta, out, m, n, invn);
}

void ScalarSoftmaxRowsMasked(const float* a, float* out, const int* valid,
                             int m, int n) {
  SoftmaxRowsMaskedT<ScalarOps>(a, out, valid, m, n);
}

void ScalarAttentionForwardPacked(const float* q, const float* k,
                                  const float* v, float* out,
                                  const int* offsets, const int* lengths,
                                  int num_seqs, int num_heads, int dim,
                                  float scale) {
  AttentionForwardPackedT<ScalarOps>(q, k, v, out, offsets, lengths, num_seqs,
                                     num_heads, dim, scale);
}

// Reference int8 GEMM: plain int32 dot products. Integer arithmetic is
// exact, so the vector variants must match this bit for bit.
void ScalarInt8Gemm(const int8_t* a, const int8_t* b, float* c, int m, int k,
                    int n, const float* a_scale, const float* b_scale,
                    const float* bias) {
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = b + static_cast<size_t>(j) * k;
      int32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      float y = static_cast<float>(acc) * as * b_scale[j];
      if (bias != nullptr) y += bias[j];
      crow[j] = y;
    }
  }
}

void ScalarEmbedGatherAdd(const float* e1, const float* e2, const float* e3,
                          const float* pos, const int* ids1, const int* ids2,
                          const int* ids3, const int* positions, float* out,
                          int rows, int d1, int d2, int d3) {
  EmbedGatherAddT<ScalarOps>(e1, e2, e3, pos, ids1, ids2, ids3, positions, out,
                             rows, d1, d2, d3);
}

void ScalarAttentionForwardBlocked(const float* q, const float* kbt,
                                   const float* vb, float* out,
                                   const int* offsets, const int* lengths,
                                   int num_seqs, int num_heads, int total_rows,
                                   int dim, float scale, float* probs) {
  AttentionForwardBlockedT<ScalarOps>(q, kbt, vb, out, offsets, lengths,
                                      num_seqs, num_heads, total_rows, dim,
                                      scale, probs);
}

void ScalarInt8GemmPacked(const int8_t* a, const int16_t* bp, float* c, int m,
                          int k, int n, const float* a_scale,
                          const float* b_scale, const float* bias) {
  Int8GemmPackedRef(a, bp, c, m, k, n, a_scale, b_scale, bias);
}

void ScalarQuantizeBuffer(const float* x, int n, float inv_scale,
                          int8_t* out) {
  QuantizeBufferRef(x, n, inv_scale, out);
}

void ScalarLinearBiasAct(const float* a, const float* b, const float* bias,
                         float* out, int m, int k, int n, int relu) {
  LinearBiasActT<ScalarOps>(a, b, bias, out, m, k, n, relu);
}

void ScalarAddRows(float* dst, const float* src, size_t n) {
  AddRowsT<ScalarOps>(dst, src, n);
}

void ScalarMatMulBackwardA(const float* og, const float* bv, float* ag,
                           int i0, int i1, int k, int n) {
  MatMulBackwardAT<ScalarOps>(og, bv, ag, i0, i1, k, n);
}

void ScalarMatMulBackwardB(const float* av, const float* og, float* bg,
                           int p0, int p1, int m, int k, int n) {
  MatMulBackwardBT<ScalarOps>(av, og, bg, p0, p1, m, k, n);
}

void ScalarBiasActBackward(const float* ov, const float* og, float* ag,
                           float* bg, int m, int n) {
  BiasActBackwardT<ScalarOps>(ov, og, ag, bg, m, n);
}

void ScalarLayerNormRowsBackward(const float* xv, const float* gv,
                                 const float* og, float* xg, float* gg,
                                 float* bg, int m, int n, float invn) {
  LayerNormRowsBackwardT<ScalarOps>(xv, gv, og, xg, gg, bg, m, n, invn);
}

void ScalarSoftmaxRowsMaskedBackward(const float* yv, const float* gy,
                                     float* gx, const int* valid, int m,
                                     int n) {
  SoftmaxRowsMaskedBackwardT<ScalarOps>(yv, gy, gx, valid, m, n);
}

void ScalarAttentionBackwardPacked(const float* qv, const float* kv,
                                   const float* vv, const float* og,
                                   float* qg, float* kg, float* vg,
                                   const int* offsets, const int* lengths,
                                   int num_seqs, int num_heads, int dim,
                                   float scale) {
  AttentionBackwardPackedT<ScalarOps>(qv, kv, vv, og, qg, kg, vg, offsets,
                                      lengths, num_seqs, num_heads, dim,
                                      scale);
}

void ScalarAdamStep(float* value, const float* grad, float* m, float* v,
                    size_t n, float lr, float beta1, float beta2, float eps,
                    float bias1, float bias2, float weight_decay) {
  AdamStepT<ScalarOps>(value, grad, m, v, n, lr, beta1, beta2, eps, bias1,
                       bias2, weight_decay);
}

const Kernels kScalarTable = {
    Level::kScalar,
    "scalar",
    &ScalarMatMulForwardRange,
    &ScalarBiasRelu,
    &ScalarLayerNormRows,
    &ScalarSoftmaxRowsMasked,
    &ScalarAttentionForwardPacked,
    &ScalarInt8Gemm,
    &ScalarEmbedGatherAdd,
    &ScalarAttentionForwardBlocked,
    &ScalarInt8GemmPacked,
    &ScalarQuantizeBuffer,
    &ScalarLinearBiasAct,
    &ScalarAddRows,
    &ScalarMatMulBackwardA,
    &ScalarMatMulBackwardB,
    &ScalarBiasActBackward,
    &ScalarLayerNormRowsBackward,
    &ScalarSoftmaxRowsMaskedBackward,
    &ScalarAttentionBackwardPacked,
    &ScalarAdamStep,
};

Level DetectHardwareLevel() {
#if defined(QPE_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#if defined(QPE_HAVE_NEON)
#if defined(__linux__)
  if (getauxval(AT_HWCAP) & HWCAP_ASIMD) return Level::kNeon;
#else
  return Level::kNeon;  // AdvSIMD is architecturally mandatory on aarch64
#endif
#endif
  return Level::kScalar;
}

Level InitialLevel() {
  Level level = DetectHardwareLevel();
  level = ParseLevel(std::getenv("QPE_SIMD"), level);
  if (TableFor(level) == nullptr) level = Level::kScalar;
#if defined(QPE_SANITIZE_BUILD)
  // Sanitizer builds run everything through the scalar reference so TSan
  // and ASan never have to reason about vendor intrinsics; the detection
  // and dispatch code above still executes.
  level = Level::kScalar;
#endif
  return level;
}

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* ActiveTable() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First use (or a benign race between first users: both writers store
    // the same pointer). TableFor is non-null here by InitialLevel.
    table = TableFor(InitialLevel());
    g_active.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

void PackInt8WeightTiles(const int8_t* w, int k, int n, int16_t* packed) {
  const int kp = Int8PackedKPad(k);
  const int kb = kp / kInt8TileK;
  const int tiles = (n + kInt8TileN - 1) / kInt8TileN;
  for (int t = 0; t < tiles; ++t) {
    for (int b = 0; b < kb; ++b) {
      for (int ch = 0; ch < kInt8TileN; ++ch) {
        const int j = t * kInt8TileN + ch;
        int16_t* dst =
            packed + ((static_cast<size_t>(t) * kb + b) * kInt8TileN + ch) *
                         kInt8TileK;
        for (int kk = 0; kk < kInt8TileK; ++kk) {
          const int p = b * kInt8TileK + kk;
          dst[kk] = (j < n && p < k)
                        ? static_cast<int16_t>(w[static_cast<size_t>(j) * k + p])
                        : int16_t{0};
        }
      }
    }
  }
}

const Kernels* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarTable;
    case Level::kAvx2:
#if defined(QPE_HAVE_AVX2)
      return GetAvx2Kernels();
#else
      return nullptr;
#endif
    case Level::kNeon:
#if defined(QPE_HAVE_NEON)
      return GetNeonKernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const Kernels& K() { return *ActiveTable(); }

Level ActiveLevel() { return K().level; }

Level HardwareLevel() { return DetectHardwareLevel(); }

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kNeon: return "neon";
  }
  return "scalar";
}

Level ParseLevel(const char* s, Level fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  if (std::strcmp(s, "0") == 0 || std::strcmp(s, "scalar") == 0 ||
      std::strcmp(s, "off") == 0) {
    return Level::kScalar;
  }
  if (std::strcmp(s, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(s, "neon") == 0) return Level::kNeon;
  return fallback;  // "1", "auto", unknown strings: keep the detected level
}

Level ForceLevel(Level level) {
  const Kernels* table = TableFor(level);
  if (table == nullptr) table = &kScalarTable;
#if defined(QPE_SANITIZE_BUILD)
  table = &kScalarTable;
#endif
  g_active.store(table, std::memory_order_release);
  return table->level;
}

}  // namespace qpe::nn::simd
