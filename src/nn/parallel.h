#ifndef QPE_NN_PARALLEL_H_
#define QPE_NN_PARALLEL_H_

#include <functional>
#include <vector>

#include "nn/tensor.h"

namespace qpe::nn {

// Per-shard gradient scratch for ParallelGradientStep: one buffer per
// (shard, parameter). Declare it once outside the epoch loop so buffer
// capacity is reused across steps instead of reallocated.
using ShardGradBuffers = std::vector<std::vector<std::vector<float>>>;

// One data-parallel gradient accumulation step.
//
// Runs build_loss(shard) for every shard in [0, num_shards) — potentially
// concurrently on the global thread pool — where each call must build an
// independent forward graph over its shard of the minibatch and return the
// shard's scalar loss contribution (already weighted so that the sum over
// shards equals the minibatch loss). Backward() runs inside each shard
// task with gradient accumulation into `params` redirected to per-shard
// buffers; the buffers are then reduced into the parameters' own grad
// storage on the calling thread in ascending shard order.
//
// Because each shard's computation is independent of which thread ran it
// and the reduction order is fixed, the resulting gradients and the
// returned loss sum are identical for every thread count (threads=1 runs
// everything inline).
//
// `params` must include EVERY requires_grad tensor shared between shard
// graphs (i.e. all model parameters, not just the subset the optimizer
// updates) — an unlisted shared parameter would be written concurrently.
// Gradients accumulate into params' existing grads; zero them first for a
// fresh step. Returns the sum of the shard losses, accumulated in shard
// order.
double ParallelGradientStep(const std::vector<Tensor>& params, int num_shards,
                            const std::function<Tensor(int)>& build_loss,
                            ShardGradBuffers* scratch);

}  // namespace qpe::nn

#endif  // QPE_NN_PARALLEL_H_
