#ifndef QPE_NN_LOSS_H_
#define QPE_NN_LOSS_H_

#include "nn/tensor.h"

namespace qpe::nn {

// Loss functions composed from autograd ops. Predictions and targets must
// have identical shapes; each returns a scalar ([1,1]) tensor.

inline Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  return Mean(Square(Sub(prediction, target)));
}

inline Tensor L1Loss(const Tensor& prediction, const Tensor& target) {
  return Mean(Abs(Sub(prediction, target)));
}

// Binary cross entropy on probabilities (apply Sigmoid first for logits).
inline Tensor BceLoss(const Tensor& probability, const Tensor& target) {
  const Tensor pos = Mul(target, Log(probability));
  const Tensor one_minus_p = Sub(Tensor::Full(probability.rows(),
                                              probability.cols(), 1.0f),
                                 probability);
  const Tensor one_minus_t =
      Sub(Tensor::Full(target.rows(), target.cols(), 1.0f), target);
  const Tensor neg = Mul(one_minus_t, Log(one_minus_p));
  return Scale(Mean(Add(pos, neg)), -1.0f);
}

}  // namespace qpe::nn

#endif  // QPE_NN_LOSS_H_
