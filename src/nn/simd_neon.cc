// NEON (AdvSIMD) kernel table, compiled only on aarch64. The TU is built
// with -ffp-contract=off and uses explicit vmulq/vaddq pairs — never
// vmlaq/vfmaq — so the vector lanes stay bit-identical to the scalar
// reference kernels.

#if defined(QPE_HAVE_NEON)

#include <arm_neon.h>

#include "nn/simd.h"
#include "nn/simd_kernels_inl.h"

namespace qpe::nn::simd {

namespace {

struct NeonOps {
  static constexpr int kLanes = 4;
  using Vec = float32x4_t;
  static Vec Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, Vec v) { vst1q_f32(p, v); }
  static Vec Broadcast(float x) { return vdupq_n_f32(x); }
  static Vec Add(Vec a, Vec b) { return vaddq_f32(a, b); }
  static Vec Sub(Vec a, Vec b) { return vsubq_f32(a, b); }
  static Vec Mul(Vec a, Vec b) { return vmulq_f32(a, b); }
  static Vec Div(Vec a, Vec b) { return vdivq_f32(a, b); }
  static Vec Max(Vec a, Vec b) { return vmaxq_f32(a, b); }
  static float HMax(Vec v) { return vmaxvq_f32(v); }
  // 4-lane expf, same Cephes-style reduction + degree-5 polynomial as the
  // AVX2 table (~2 ulp). Allowed to diverge from the scalar std::exp
  // reference under the epsilon contract; see simd_kernels_inl.h.
  static Vec Exp(Vec x) {
    x = vminq_f32(vmaxq_f32(x, vdupq_n_f32(-87.3365478515625f)),
                  vdupq_n_f32(88.3762626647949f));
    const Vec n = vrndnq_f32(vmulq_f32(x, vdupq_n_f32(1.44269504088896341f)));
    Vec r = vsubq_f32(x, vmulq_f32(n, vdupq_n_f32(0.693359375f)));
    r = vsubq_f32(r, vmulq_f32(n, vdupq_n_f32(-2.12194440e-4f)));
    Vec p = vdupq_n_f32(1.9875691500e-4f);
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(1.3981999507e-3f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(8.3334519073e-3f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(4.1665795894e-2f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(1.6666665459e-1f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(5.0000001201e-1f));
    p = vaddq_f32(vmulq_f32(vmulq_f32(p, r), r),
                  vaddq_f32(r, vdupq_n_f32(1.0f)));
    const int32x4_t pow2 =
        vshlq_n_s32(vaddq_s32(vcvtnq_s32_f32(n), vdupq_n_s32(127)), 23);
    return vmulq_f32(p, vreinterpretq_f32_s32(pow2));
  }
};

void NeonMatMulForwardRange(const float* a, const float* b, float* out, int i0,
                            int i1, int k, int n) {
  MatMulForwardRangeT<NeonOps>(a, b, out, i0, i1, k, n);
}

void NeonBiasRelu(const float* a, const float* bias, float* out, int m,
                  int n) {
  BiasReluT<NeonOps>(a, bias, out, m, n);
}

void NeonLayerNormRows(const float* x, const float* gamma, const float* beta,
                       float* out, int m, int n, float invn) {
  LayerNormRowsT<NeonOps>(x, gamma, beta, out, m, n, invn);
}

void NeonSoftmaxRowsMasked(const float* a, float* out, const int* valid,
                           int m, int n) {
  SoftmaxRowsMaskedT<NeonOps>(a, out, valid, m, n);
}

void NeonAttentionForwardPacked(const float* q, const float* k, const float* v,
                                float* out, const int* offsets,
                                const int* lengths, int num_seqs,
                                int num_heads, int dim, float scale) {
  AttentionForwardPackedT<NeonOps>(q, k, v, out, offsets, lengths, num_seqs,
                                   num_heads, dim, scale);
}

// int8 dot products 16 elements per step via widening multiplies:
// vmull_s8 (int8x8 -> int16x8) then vpadalq_s16 into int32 accumulators.
// Exact integer arithmetic, bit-identical to the scalar reference.
void NeonInt8Gemm(const int8_t* a, const int8_t* b, float* c, int m, int k,
                  int n, const float* a_scale, const float* b_scale,
                  const float* bias) {
  const int kv = (k / 16) * 16;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = b + static_cast<size_t>(j) * k;
      int32x4_t acc = vdupq_n_s32(0);
      int p = 0;
      for (; p < kv; p += 16) {
        const int8x16_t av = vld1q_s8(arow + p);
        const int8x16_t bv = vld1q_s8(brow + p);
        acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(av), vget_low_s8(bv)));
        acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(av), vget_high_s8(bv)));
      }
      int32_t total = vaddvq_s32(acc);
      for (; p < k; ++p) {
        total += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      float y = static_cast<float>(total) * as * b_scale[j];
      if (bias != nullptr) y += bias[j];
      crow[j] = y;
    }
  }
}

const Kernels kNeonTable = {
    Level::kNeon,
    "neon",
    &NeonMatMulForwardRange,
    &NeonBiasRelu,
    &NeonLayerNormRows,
    &NeonSoftmaxRowsMasked,
    &NeonAttentionForwardPacked,
    &NeonInt8Gemm,
};

}  // namespace

const Kernels* GetNeonKernels() { return &kNeonTable; }

}  // namespace qpe::nn::simd

#endif  // QPE_HAVE_NEON
