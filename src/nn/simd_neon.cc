// NEON (AdvSIMD) kernel table, compiled only on aarch64. The TU is built
// with -ffp-contract=off and uses explicit vmulq/vaddq pairs — never
// vmlaq/vfmaq — so the vector lanes stay bit-identical to the scalar
// reference kernels.

#if defined(QPE_HAVE_NEON)

#include <arm_neon.h>

#include "nn/simd.h"
#include "nn/simd_kernels_inl.h"

namespace qpe::nn::simd {

namespace {

struct NeonOps {
  static constexpr int kLanes = 4;
  using Vec = float32x4_t;
  static Vec Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, Vec v) { vst1q_f32(p, v); }
  static Vec Broadcast(float x) { return vdupq_n_f32(x); }
  static Vec Add(Vec a, Vec b) { return vaddq_f32(a, b); }
  static Vec Sub(Vec a, Vec b) { return vsubq_f32(a, b); }
  static Vec Mul(Vec a, Vec b) { return vmulq_f32(a, b); }
  static Vec Div(Vec a, Vec b) { return vdivq_f32(a, b); }
  static Vec Max(Vec a, Vec b) { return vmaxq_f32(a, b); }
  // Correctly rounded per IEEE 754, same bits as scalar sqrtf per lane.
  static Vec Sqrt(Vec v) { return vsqrtq_f32(v); }
  static float HMax(Vec v) { return vmaxvq_f32(v); }
  // All-ones mask where v > 0 (NaN lanes gate off), and a bitwise AND —
  // the pair turns BiasActBackwardT's branch into a mask.
  static Vec GtZero(Vec v) {
    return vreinterpretq_f32_u32(vcgtq_f32(v, vdupq_n_f32(0.0f)));
  }
  static Vec And(Vec a, Vec b) {
    return vreinterpretq_f32_u32(
        vandq_u32(vreinterpretq_u32_f32(a), vreinterpretq_u32_f32(b)));
  }
  // 4-lane expf, same Cephes-style reduction + degree-5 polynomial as the
  // AVX2 table (~2 ulp). Allowed to diverge from the scalar std::exp
  // reference under the epsilon contract; see simd_kernels_inl.h.
  static Vec Exp(Vec x) {
    x = vminq_f32(vmaxq_f32(x, vdupq_n_f32(-87.3365478515625f)),
                  vdupq_n_f32(88.3762626647949f));
    const Vec n = vrndnq_f32(vmulq_f32(x, vdupq_n_f32(1.44269504088896341f)));
    Vec r = vsubq_f32(x, vmulq_f32(n, vdupq_n_f32(0.693359375f)));
    r = vsubq_f32(r, vmulq_f32(n, vdupq_n_f32(-2.12194440e-4f)));
    Vec p = vdupq_n_f32(1.9875691500e-4f);
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(1.3981999507e-3f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(8.3334519073e-3f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(4.1665795894e-2f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(1.6666665459e-1f));
    p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(5.0000001201e-1f));
    p = vaddq_f32(vmulq_f32(vmulq_f32(p, r), r),
                  vaddq_f32(r, vdupq_n_f32(1.0f)));
    const int32x4_t pow2 =
        vshlq_n_s32(vaddq_s32(vcvtnq_s32_f32(n), vdupq_n_s32(127)), 23);
    return vmulq_f32(p, vreinterpretq_f32_s32(pow2));
  }
};

void NeonMatMulForwardRange(const float* a, const float* b, float* out, int i0,
                            int i1, int k, int n) {
  MatMulForwardRangeT<NeonOps>(a, b, out, i0, i1, k, n);
}

void NeonBiasRelu(const float* a, const float* bias, float* out, int m,
                  int n) {
  BiasReluT<NeonOps>(a, bias, out, m, n);
}

void NeonLayerNormRows(const float* x, const float* gamma, const float* beta,
                       float* out, int m, int n, float invn) {
  LayerNormRowsT<NeonOps>(x, gamma, beta, out, m, n, invn);
}

void NeonSoftmaxRowsMasked(const float* a, float* out, const int* valid,
                           int m, int n) {
  SoftmaxRowsMaskedT<NeonOps>(a, out, valid, m, n);
}

void NeonAttentionForwardPacked(const float* q, const float* k, const float* v,
                                float* out, const int* offsets,
                                const int* lengths, int num_seqs,
                                int num_heads, int dim, float scale) {
  AttentionForwardPackedT<NeonOps>(q, k, v, out, offsets, lengths, num_seqs,
                                   num_heads, dim, scale);
}

// int8 dot products 16 elements per step via widening multiplies:
// vmull_s8 (int8x8 -> int16x8) then vpadalq_s16 into int32 accumulators.
// Exact integer arithmetic, bit-identical to the scalar reference.
void NeonInt8Gemm(const int8_t* a, const int8_t* b, float* c, int m, int k,
                  int n, const float* a_scale, const float* b_scale,
                  const float* bias) {
  const int kv = (k / 16) * 16;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = b + static_cast<size_t>(j) * k;
      int32x4_t acc = vdupq_n_s32(0);
      int p = 0;
      for (; p < kv; p += 16) {
        const int8x16_t av = vld1q_s8(arow + p);
        const int8x16_t bv = vld1q_s8(brow + p);
        acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(av), vget_low_s8(bv)));
        acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(av), vget_high_s8(bv)));
      }
      int32_t total = vaddvq_s32(acc);
      for (; p < k; ++p) {
        total += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      float y = static_cast<float>(total) * as * b_scale[j];
      if (bias != nullptr) y += bias[j];
      crow[j] = y;
    }
  }
}

void NeonEmbedGatherAdd(const float* e1, const float* e2, const float* e3,
                        const float* pos, const int* ids1, const int* ids2,
                        const int* ids3, const int* positions, float* out,
                        int rows, int d1, int d2, int d3) {
  EmbedGatherAddT<NeonOps>(e1, e2, e3, pos, ids1, ids2, ids3, positions, out,
                           rows, d1, d2, d3);
}

void NeonAttentionForwardBlocked(const float* q, const float* kbt,
                                 const float* vb, float* out,
                                 const int* offsets, const int* lengths,
                                 int num_seqs, int num_heads, int total_rows,
                                 int dim, float scale, float* probs) {
  AttentionForwardBlockedT<NeonOps>(q, kbt, vb, out, offsets, lengths,
                                    num_seqs, num_heads, total_rows, dim,
                                    scale, probs);
}

// Packed-tile int8 GEMM: one widened activation block feeds four
// multiply-accumulate-long dots against the four consecutive channel rows
// of the tile (pre-sign-extended to int16 at pack time, so the weight
// loads need no widening) — sequential weight reads, one vaddvq per
// channel per tile instead of per k-step. vmlal_s16 accumulates straight
// into int32 lanes, matching the op count of the old vmull_s8 + vpadal
// pair. Exact integer arithmetic, bit-identical to Int8GemmPackedRef.
void NeonInt8GemmPacked(const int8_t* a, const int16_t* bp, float* c, int m,
                        int k, int n, const float* a_scale,
                        const float* b_scale, const float* bias) {
  const int kp = Int8PackedKPad(k);
  const int kb = kp / kInt8TileK;
  const int tiles = (n + kInt8TileN - 1) / kInt8TileN;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * kp;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int t = 0; t < tiles; ++t) {
      const int16_t* btile =
          bp + static_cast<size_t>(t) * kb * (kInt8TileN * kInt8TileK);
      int32x4_t acc0 = vdupq_n_s32(0);
      int32x4_t acc1 = vdupq_n_s32(0);
      int32x4_t acc2 = vdupq_n_s32(0);
      int32x4_t acc3 = vdupq_n_s32(0);
      for (int b = 0; b < kb; ++b) {
        const int8x16_t av = vld1q_s8(arow + b * kInt8TileK);
        const int16x8_t alo = vmovl_s8(vget_low_s8(av));
        const int16x8_t ahi = vmovl_s8(vget_high_s8(av));
        const int16_t* bb =
            btile + static_cast<size_t>(b) * (kInt8TileN * kInt8TileK);
        const int16x8_t b0l = vld1q_s16(bb);
        const int16x8_t b0h = vld1q_s16(bb + 8);
        const int16x8_t b1l = vld1q_s16(bb + kInt8TileK);
        const int16x8_t b1h = vld1q_s16(bb + kInt8TileK + 8);
        const int16x8_t b2l = vld1q_s16(bb + 2 * kInt8TileK);
        const int16x8_t b2h = vld1q_s16(bb + 2 * kInt8TileK + 8);
        const int16x8_t b3l = vld1q_s16(bb + 3 * kInt8TileK);
        const int16x8_t b3h = vld1q_s16(bb + 3 * kInt8TileK + 8);
        acc0 = vmlal_s16(acc0, vget_low_s16(alo), vget_low_s16(b0l));
        acc0 = vmlal_s16(acc0, vget_high_s16(alo), vget_high_s16(b0l));
        acc0 = vmlal_s16(acc0, vget_low_s16(ahi), vget_low_s16(b0h));
        acc0 = vmlal_s16(acc0, vget_high_s16(ahi), vget_high_s16(b0h));
        acc1 = vmlal_s16(acc1, vget_low_s16(alo), vget_low_s16(b1l));
        acc1 = vmlal_s16(acc1, vget_high_s16(alo), vget_high_s16(b1l));
        acc1 = vmlal_s16(acc1, vget_low_s16(ahi), vget_low_s16(b1h));
        acc1 = vmlal_s16(acc1, vget_high_s16(ahi), vget_high_s16(b1h));
        acc2 = vmlal_s16(acc2, vget_low_s16(alo), vget_low_s16(b2l));
        acc2 = vmlal_s16(acc2, vget_high_s16(alo), vget_high_s16(b2l));
        acc2 = vmlal_s16(acc2, vget_low_s16(ahi), vget_low_s16(b2h));
        acc2 = vmlal_s16(acc2, vget_high_s16(ahi), vget_high_s16(b2h));
        acc3 = vmlal_s16(acc3, vget_low_s16(alo), vget_low_s16(b3l));
        acc3 = vmlal_s16(acc3, vget_high_s16(alo), vget_high_s16(b3l));
        acc3 = vmlal_s16(acc3, vget_low_s16(ahi), vget_low_s16(b3h));
        acc3 = vmlal_s16(acc3, vget_high_s16(ahi), vget_high_s16(b3h));
      }
      const int32_t acc[kInt8TileN] = {vaddvq_s32(acc0), vaddvq_s32(acc1),
                                       vaddvq_s32(acc2), vaddvq_s32(acc3)};
      const int jmax = (n - t * kInt8TileN < kInt8TileN) ? n - t * kInt8TileN
                                                         : kInt8TileN;
      for (int ch = 0; ch < jmax; ++ch) {
        const int j = t * kInt8TileN + ch;
        float y = static_cast<float>(acc[ch]) * as * b_scale[j];
        if (bias != nullptr) y += bias[j];
        crow[j] = y;
      }
    }
  }
}

// 4-lane quantize: the exact trunc(t + copysign(0.5, t)) sequence of
// QuantizeOneRef lane by lane — every step an exact IEEE op.
void NeonQuantizeBuffer(const float* x, int n, float inv_scale, int8_t* out) {
  const float32x4_t vs = vdupq_n_f32(inv_scale);
  const uint32x4_t sign = vdupq_n_u32(0x80000000u);
  const float32x4_t half = vdupq_n_f32(0.5f);
  const float32x4_t hi = vdupq_n_f32(127.0f);
  const float32x4_t lo = vdupq_n_f32(-127.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t t = vmulq_f32(vld1q_f32(x + i), vs);
    const float32x4_t h = vreinterpretq_f32_u32(vorrq_u32(
        vandq_u32(vreinterpretq_u32_f32(t), sign),
        vreinterpretq_u32_f32(half)));
    float32x4_t r = vrndq_f32(vaddq_f32(t, h));  // round toward zero
    r = vmaxq_f32(vminq_f32(r, hi), lo);
    const int32x4_t q32 = vcvtq_s32_f32(r);
    const int16x4_t q16 = vmovn_s32(q32);
    const int8x8_t q8 = vmovn_s16(vcombine_s16(q16, q16));
    out[i] = vget_lane_s8(q8, 0);
    out[i + 1] = vget_lane_s8(q8, 1);
    out[i + 2] = vget_lane_s8(q8, 2);
    out[i + 3] = vget_lane_s8(q8, 3);
  }
  for (; i < n; ++i) out[i] = QuantizeOneRef(x[i], inv_scale);
}

void NeonLinearBiasAct(const float* a, const float* b, const float* bias,
                       float* out, int m, int k, int n, int relu) {
  LinearBiasActT<NeonOps>(a, b, bias, out, m, k, n, relu);
}

void NeonAddRows(float* dst, const float* src, size_t n) {
  AddRowsT<NeonOps>(dst, src, n);
}

void NeonMatMulBackwardA(const float* og, const float* bv, float* ag, int i0,
                         int i1, int k, int n) {
  MatMulBackwardAT<NeonOps>(og, bv, ag, i0, i1, k, n);
}

void NeonMatMulBackwardB(const float* av, const float* og, float* bg, int p0,
                         int p1, int m, int k, int n) {
  MatMulBackwardBT<NeonOps>(av, og, bg, p0, p1, m, k, n);
}

void NeonBiasActBackward(const float* ov, const float* og, float* ag,
                         float* bg, int m, int n) {
  BiasActBackwardT<NeonOps>(ov, og, ag, bg, m, n);
}

void NeonLayerNormRowsBackward(const float* xv, const float* gv,
                               const float* og, float* xg, float* gg,
                               float* bg, int m, int n, float invn) {
  LayerNormRowsBackwardT<NeonOps>(xv, gv, og, xg, gg, bg, m, n, invn);
}

void NeonSoftmaxRowsMaskedBackward(const float* yv, const float* gy,
                                   float* gx, const int* valid, int m, int n) {
  SoftmaxRowsMaskedBackwardT<NeonOps>(yv, gy, gx, valid, m, n);
}

void NeonAttentionBackwardPacked(const float* qv, const float* kv,
                                 const float* vv, const float* og, float* qg,
                                 float* kg, float* vg, const int* offsets,
                                 const int* lengths, int num_seqs,
                                 int num_heads, int dim, float scale) {
  AttentionBackwardPackedT<NeonOps>(qv, kv, vv, og, qg, kg, vg, offsets,
                                    lengths, num_seqs, num_heads, dim, scale);
}

void NeonAdamStep(float* value, const float* grad, float* m, float* v,
                  size_t n, float lr, float beta1, float beta2, float eps,
                  float bias1, float bias2, float weight_decay) {
  AdamStepT<NeonOps>(value, grad, m, v, n, lr, beta1, beta2, eps, bias1,
                     bias2, weight_decay);
}

const Kernels kNeonTable = {
    Level::kNeon,
    "neon",
    &NeonMatMulForwardRange,
    &NeonBiasRelu,
    &NeonLayerNormRows,
    &NeonSoftmaxRowsMasked,
    &NeonAttentionForwardPacked,
    &NeonInt8Gemm,
    &NeonEmbedGatherAdd,
    &NeonAttentionForwardBlocked,
    &NeonInt8GemmPacked,
    &NeonQuantizeBuffer,
    &NeonLinearBiasAct,
    &NeonAddRows,
    &NeonMatMulBackwardA,
    &NeonMatMulBackwardB,
    &NeonBiasActBackward,
    &NeonLayerNormRowsBackward,
    &NeonSoftmaxRowsMaskedBackward,
    &NeonAttentionBackwardPacked,
    &NeonAdamStep,
};

}  // namespace

const Kernels* GetNeonKernels() { return &kNeonTable; }

}  // namespace qpe::nn::simd

#endif  // QPE_HAVE_NEON
