#include "nn/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <utility>
#include <vector>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "nn/serialize.h"
#include "util/checksum.h"
#include "util/fault_injection.h"

namespace qpe::nn {

namespace {

constexpr uint32_t kCheckpointMagic = 0x51504543;  // "QPEC"
constexpr uint32_t kCheckpointVersion = 1;
// magic + version + payload_size + payload_crc
constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;

// --- little binary writer/reader over in-memory payloads ---

void PutBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}
void PutU32(std::string* out, uint32_t v) { PutBytes(out, &v, sizeof(v)); }
void PutU64(std::string* out, uint64_t v) { PutBytes(out, &v, sizeof(v)); }
void PutI64(std::string* out, int64_t v) { PutBytes(out, &v, sizeof(v)); }
void PutF64(std::string* out, double v) { PutBytes(out, &v, sizeof(v)); }
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked reader; every failure carries the byte offset so corrupt
// payloads are diagnosable.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& data) : data_(data) {}

  util::Status Bytes(void* out, size_t size, const char* what) {
    if (pos_ + size > data_.size()) {
      return util::DataLossError(
          std::string("checkpoint payload truncated reading ") + what +
          " at offset " + std::to_string(pos_) + " (need " +
          std::to_string(size) + " byte(s), have " +
          std::to_string(data_.size() - pos_) + ")");
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return util::OkStatus();
  }
  util::Status U32(uint32_t* v, const char* what) {
    return Bytes(v, sizeof(*v), what);
  }
  util::Status U64(uint64_t* v, const char* what) {
    return Bytes(v, sizeof(*v), what);
  }
  util::Status I64(int64_t* v, const char* what) {
    return Bytes(v, sizeof(*v), what);
  }
  util::Status F64(double* v, const char* what) {
    return Bytes(v, sizeof(*v), what);
  }
  util::Status Str(std::string* s, const char* what) {
    uint32_t len = 0;
    if (util::Status st = U32(&len, what); !st.ok()) return st;
    if (pos_ + len > data_.size()) {
      return util::DataLossError(
          std::string("checkpoint payload truncated reading ") + what +
          " at offset " + std::to_string(pos_));
    }
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return util::OkStatus();
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

std::string BuildPayload(const Module& module, const Optimizer& optimizer,
                         const TrainingState& state) {
  std::string payload;
  // Training state.
  PutI64(&payload, state.next_epoch);
  PutI64(&payload, state.global_step);
  PutI64(&payload, state.skipped_batches);
  PutI64(&payload, state.nonfinite_losses);
  PutF64(&payload, state.best_val);
  PutI64(&payload, state.best_epoch);
  // RNG stream.
  for (uint64_t word : state.rng.s) PutU64(&payload, word);
  PutU32(&payload, state.rng.has_cached_normal ? 1 : 0);
  PutF64(&payload, state.rng.cached_normal);
  // Module section (the nn/serialize format, embedded verbatim).
  std::ostringstream module_os(std::ios::binary);
  SaveModule(module, module_os);
  const std::string module_bytes = module_os.str();
  PutU64(&payload, module_bytes.size());
  payload.append(module_bytes);
  // Optimizer state.
  const OptimizerState opt = optimizer.ExportState();
  PutString(&payload, opt.kind);
  PutI64(&payload, opt.step_count);
  PutU32(&payload, static_cast<uint32_t>(opt.slots.size()));
  for (const auto& slot : opt.slots) {
    PutU32(&payload, static_cast<uint32_t>(slot.size()));
    for (const auto& buffer : slot) {
      PutU64(&payload, buffer.size());
      PutBytes(&payload, buffer.data(), buffer.size() * sizeof(float));
    }
  }
  return payload;
}

util::Status ParsePayload(const std::string& payload, Module* module,
                          TrainingState* staged_state,
                          OptimizerState* staged_opt,
                          internal::StagedModule* staged_module) {
  PayloadReader reader(payload);
  util::Status s;
  if (s = reader.I64(&staged_state->next_epoch, "next_epoch"); !s.ok())
    return s;
  if (s = reader.I64(&staged_state->global_step, "global_step"); !s.ok())
    return s;
  if (s = reader.I64(&staged_state->skipped_batches, "skipped_batches");
      !s.ok())
    return s;
  if (s = reader.I64(&staged_state->nonfinite_losses, "nonfinite_losses");
      !s.ok())
    return s;
  if (s = reader.F64(&staged_state->best_val, "best_val"); !s.ok()) return s;
  if (s = reader.I64(&staged_state->best_epoch, "best_epoch"); !s.ok())
    return s;
  for (uint64_t& word : staged_state->rng.s) {
    if (s = reader.U64(&word, "rng state"); !s.ok()) return s;
  }
  uint32_t has_cached = 0;
  if (s = reader.U32(&has_cached, "rng cache flag"); !s.ok()) return s;
  staged_state->rng.has_cached_normal = has_cached != 0;
  if (s = reader.F64(&staged_state->rng.cached_normal, "rng cached normal");
      !s.ok())
    return s;
  // Module section.
  uint64_t module_size = 0;
  if (s = reader.U64(&module_size, "module section size"); !s.ok()) return s;
  if (module_size > reader.remaining()) {
    return util::DataLossError(
        "checkpoint module section claims " + std::to_string(module_size) +
        " byte(s) but only " + std::to_string(reader.remaining()) +
        " remain at offset " + std::to_string(reader.pos()));
  }
  std::string module_bytes(module_size, '\0');
  if (s = reader.Bytes(module_bytes.data(), module_size, "module section");
      !s.ok())
    return s;
  std::istringstream module_is(module_bytes, std::ios::binary);
  if (s = internal::StageModule(module, module_is, staged_module); !s.ok())
    return s;
  // Optimizer state.
  if (s = reader.Str(&staged_opt->kind, "optimizer kind"); !s.ok()) return s;
  if (s = reader.I64(&staged_opt->step_count, "optimizer step count"); !s.ok())
    return s;
  uint32_t num_slots = 0;
  if (s = reader.U32(&num_slots, "optimizer slot count"); !s.ok()) return s;
  staged_opt->slots.assign(num_slots, {});
  for (uint32_t slot = 0; slot < num_slots; ++slot) {
    uint32_t num_buffers = 0;
    if (s = reader.U32(&num_buffers, "optimizer buffer count"); !s.ok())
      return s;
    staged_opt->slots[slot].assign(num_buffers, {});
    for (uint32_t i = 0; i < num_buffers; ++i) {
      uint64_t count = 0;
      if (s = reader.U64(&count, "optimizer buffer size"); !s.ok()) return s;
      if (count > reader.remaining() / sizeof(float)) {
        return util::DataLossError(
            "checkpoint optimizer buffer claims " + std::to_string(count) +
            " float(s) but only " + std::to_string(reader.remaining()) +
            " byte(s) remain at offset " + std::to_string(reader.pos()));
      }
      staged_opt->slots[slot][i].resize(count);
      if (s = reader.Bytes(staged_opt->slots[slot][i].data(),
                           count * sizeof(float), "optimizer buffer");
          !s.ok())
        return s;
    }
  }
  if (reader.remaining() != 0) {
    return util::DataLossError("checkpoint payload has " +
                               std::to_string(reader.remaining()) +
                               " trailing byte(s) after optimizer state");
  }
  return util::OkStatus();
}

#ifdef __unix__
util::Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return util::IoError("cannot reopen '" + path + "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return util::IoError("fsync of '" + path + "' failed");
  return util::OkStatus();
}
#endif

}  // namespace

bool CheckpointExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

util::Status SaveTrainingCheckpoint(const std::string& path,
                                    const Module& module,
                                    const Optimizer& optimizer,
                                    const TrainingState& state) {
  const std::string payload = BuildPayload(module, optimizer, state);
  const uint32_t crc = util::Crc32(payload);

  const std::string tmp_path = path + ".tmp";
  // Any failure past this point must not leave a stray temp file behind.
  auto fail = [&tmp_path](util::Status s) {
    std::remove(tmp_path.c_str());
    return s;
  };
  if (util::Status s = util::InjectFault("checkpoint.open_tmp"); !s.ok()) {
    return fail(std::move(s));
  }
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      return util::IoError("cannot open '" + tmp_path + "' for writing");
    }
    std::string header;
    PutU32(&header, kCheckpointMagic);
    PutU32(&header, kCheckpointVersion);
    PutU64(&header, payload.size());
    PutU32(&header, crc);
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    if (util::Status s = util::InjectFault("checkpoint.write"); !s.ok()) {
      return fail(std::move(s));
    }
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (util::Status s = util::InjectFault("checkpoint.flush"); !s.ok()) {
      return fail(std::move(s));
    }
    if (!os) return fail(util::IoError("write to '" + tmp_path + "' failed"));
  }
#ifdef __unix__
  // Durability: the data must be on disk *before* the rename publishes it.
  if (util::Status s = FsyncPath(tmp_path); !s.ok()) return fail(std::move(s));
#endif
  if (util::Status s = util::InjectFault("checkpoint.rename"); !s.ok()) {
    return fail(std::move(s));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return fail(util::IoError("atomic rename '" + tmp_path + "' -> '" + path +
                              "' failed"));
  }
  return util::OkStatus();
}

util::Status LoadTrainingCheckpoint(const std::string& path, Module* module,
                                    Optimizer* optimizer,
                                    TrainingState* state) {
  if (util::Status s = util::InjectFault("checkpoint.read.open"); !s.ok()) {
    return s;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::NotFoundError("cannot open checkpoint '" + path + "'");
  std::ostringstream buffer(std::ios::binary);
  buffer << is.rdbuf();
  if (util::Status s = util::InjectFault("checkpoint.read"); !s.ok()) return s;
  if (is.bad()) return util::IoError("read of checkpoint '" + path + "' failed");
  const std::string file = buffer.str();

  if (file.size() < kHeaderSize) {
    return util::DataLossError("checkpoint '" + path + "' is " +
                               std::to_string(file.size()) +
                               " byte(s), smaller than the " +
                               std::to_string(kHeaderSize) + "-byte header");
  }
  uint32_t magic = 0, version = 0, crc = 0;
  uint64_t payload_size = 0;
  std::memcpy(&magic, file.data(), 4);
  std::memcpy(&version, file.data() + 4, 4);
  std::memcpy(&payload_size, file.data() + 8, 8);
  std::memcpy(&crc, file.data() + 16, 4);
  if (magic != kCheckpointMagic) {
    return util::DataLossError("checkpoint '" + path + "' has bad magic " +
                               std::to_string(magic) + ", expected " +
                               std::to_string(kCheckpointMagic));
  }
  if (version != kCheckpointVersion) {
    return util::FailedPreconditionError(
        "checkpoint '" + path + "' is format version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kCheckpointVersion));
  }
  if (file.size() - kHeaderSize != payload_size) {
    return util::DataLossError(
        "checkpoint '" + path + "' header claims a " +
        std::to_string(payload_size) + "-byte payload but " +
        std::to_string(file.size() - kHeaderSize) + " byte(s) follow");
  }
  const std::string payload = file.substr(kHeaderSize);
  const uint32_t computed = util::Crc32(payload);
  if (computed != crc) {
    return util::DataLossError(
        "checkpoint '" + path + "' payload CRC mismatch: stored " +
        std::to_string(crc) + ", computed " + std::to_string(computed) +
        " (corrupted file)");
  }

  // Stage everything; commit only when nothing can fail anymore.
  TrainingState staged_state;
  OptimizerState staged_opt;
  internal::StagedModule staged_module;
  if (util::Status s = ParsePayload(payload, module, &staged_state,
                                    &staged_opt, &staged_module);
      !s.ok()) {
    return util::Status(s.code(), "checkpoint '" + path + "': " + s.message());
  }
  // ImportState validates against the live optimizer before mutating it, so
  // it is the last fallible step; the module and state commits below cannot
  // fail.
  if (util::Status s = optimizer->ImportState(staged_opt); !s.ok()) {
    return util::Status(s.code(), "checkpoint '" + path + "': " + s.message());
  }
  internal::CommitModule(module, std::move(staged_module));
  *state = staged_state;
  return util::OkStatus();
}

}  // namespace qpe::nn
