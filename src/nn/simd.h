#ifndef QPE_NN_SIMD_H_
#define QPE_NN_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace qpe::nn::simd {

// Instruction-set level of the kernel table in use. Exactly one non-scalar
// level is compiled per architecture (AVX2 on x86-64, NEON on aarch64); the
// scalar table is always built and is the bit-exactness reference: with
// QPE_SIMD=0 every kernel below produces the same bits the pre-SIMD scalar
// loops in nn/tensor.cc produced.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// Kernel dispatch table. All kernels operate on raw row-major buffers so
// both the autograd ops in nn/tensor.cc and the graph-free quantized
// inference engine (encoder/quantized_encoder.cc) share them.
//
// Numerics contract: the float kernels preserve each output element's
// accumulation order (axpy- and elementwise-shaped loops vectorize across
// independent output lanes, never across a reduction), and the vector
// variants use explicit mul+add — no FMA contraction. The AVX2/NEON tables
// are therefore bit-identical to the scalar table on every input today;
// tests still gate them by an epsilon contract (tests/simd_quant_test.cc)
// so a future lane-reduced kernel only has to stay within epsilon. The
// int8 kernel is pure integer arithmetic and must be bit-exact across all
// levels.
struct Kernels {
  Level level = Level::kScalar;
  const char* name = "scalar";

  // out[i0:i1, :] += A[i0:i1, :] * B with A [m,k], B [k,n]: the blocked
  // MatMul forward micro-kernel. Per output element the k dimension
  // accumulates in ascending order at every level.
  void (*matmul_forward_range)(const float* a, const float* b, float* out,
                               int i0, int i1, int k, int n);
  // out = max(a + bias, 0) over a row-major [m, n] block, bias [n].
  void (*bias_relu)(const float* a, const float* bias, float* out, int m,
                    int n);
  // Row-wise layer norm: y = ((x - mean) * recip) * gamma + beta. Row
  // statistics are computed scalar at every level (they are reductions;
  // keeping them scalar keeps the kernel bit-exact), the normalize pass
  // vectorizes across columns.
  void (*layer_norm_rows)(const float* x, const float* gamma,
                          const float* beta, float* out, int m, int n,
                          float invn);
  // Masked row softmax over the first valid[r] columns; remaining columns
  // are left untouched (the caller pre-zeroes them). exp and the sum stay
  // scalar (ascending-order reduction), max and the divide vectorize.
  void (*softmax_rows_masked)(const float* a, float* out, const int* valid,
                              int m, int n);
  // Fused packed multi-head attention forward (see
  // nn::MultiHeadAttentionPacked for the exact semantics).
  void (*attention_forward_packed)(const float* q, const float* k,
                                   const float* v, float* out,
                                   const int* offsets, const int* lengths,
                                   int num_seqs, int num_heads, int dim,
                                   float scale);
  // Quantized GEMM with int32 accumulation:
  //   c[i, j] = dot(a[i, :], b[j, :]) * a_scale[i] * b_scale[j] + bias[j]
  // a is [m, k] row-major int8 (quantized activations), b is [n, k] —
  // each output channel's weights contiguous (column-major of the [k, n]
  // weight matrix), bias may be null. The integer accumulation is exact,
  // so results are bit-identical across levels.
  void (*int8_gemm)(const int8_t* a, const int8_t* b, float* c, int m, int k,
                    int n, const float* a_scale, const float* b_scale,
                    const float* bias);
  // Fused embedding gather + positional add for the packed batch pipeline:
  //   out[r, :] = concat(e1[ids1[r]], e2[ids2[r]], e3[ids3[r]]) +
  //               pos[positions[r], :]
  // with out [rows, d1+d2+d3] row-major. Pure copies and elementwise adds
  // in ascending column order, so every level is bit-identical.
  void (*embed_gather_add)(const float* e1, const float* e2, const float* e3,
                           const float* pos, const int* ids1, const int* ids2,
                           const int* ids3, const int* positions, float* out,
                           int rows, int d1, int d2, int d3);
  // Head-blocked variant of attention_forward_packed. q and out stay in the
  // interleaved [total_rows, dim] projection layout; keys arrive
  // pre-transposed per head as kbt [head][head_dim][total_rows] (row stride
  // total_rows) and values head-blocked as vb [head][total_rows][head_dim]
  // (contiguous head lanes), so the score and context loops stream
  // contiguous memory instead of striding across the interleaved heads.
  // `probs` is caller-provided scratch of at least max(lengths)^2 floats —
  // the kernel allocates nothing. Per output element the arithmetic
  // sequence is identical to attention_forward_packed, so the two kernels
  // agree bit for bit at every level.
  void (*attention_forward_blocked)(const float* q, const float* kbt,
                                    const float* vb, float* out,
                                    const int* offsets, const int* lengths,
                                    int num_seqs, int num_heads,
                                    int total_rows, int dim, float scale,
                                    float* probs);
  // int8 GEMM over pre-packed weight tiles (see PackInt8WeightTiles): bp
  // holds kInt8TileN output channels x kInt8TileK k-steps per tile in the
  // exact order the micro-kernel consumes, zero-padded in both dimensions
  // and pre-sign-extended to int16 — the values are still int8-range, but
  // widening them once at pack time removes the per-step sign-extension
  // shuffles from the hot loop (on AVX2 that was 4 of the 5 shuffles per
  // k-block). a is [m, Int8PackedKPad(k)] row-major int8 with the k tail
  // of every row zeroed by the caller. Same dequantization as int8_gemm;
  // the padded entries contribute exact zeros to the integer dots, so the
  // result is bit-identical to int8_gemm on the unpacked operands —
  // across levels and across the two layouts.
  void (*int8_gemm_packed)(const int8_t* a, const int16_t* bp, float* c,
                           int m, int k, int n, const float* a_scale,
                           const float* b_scale, const float* bias);
  // Quantizes n floats with one shared scale: round to nearest, ties away
  // from zero, saturating to [-127, 127] (the QuantizeValue contract, as
  // trunc(t + copysign(0.5, t)) — exact IEEE ops, so scalar and vector
  // lanes produce identical int8 for every input).
  void (*quantize_buffer)(const float* x, int n, float inv_scale,
                          int8_t* out);
  // Fused linear for the packed pipeline: out = act(A * B + bias) with A
  // [m, k], B [k, n], bias [n]; act is ReLU when `relu` is nonzero. The
  // accumulators start at zero in registers and the bias/ReLU ride the
  // GEMM epilogue, so no zero-fill or bias pass touches the output — yet
  // per output element the value stream (ascending-k mul/add pairs over
  // the aval != 0 subsequence, one bias add, the `> 0` clamp) is exactly
  // fill + matmul_forward_range + the bias/bias_relu pass, so every level
  // is bit-identical to that three-step chain.
  void (*linear_bias_act)(const float* a, const float* b, const float* bias,
                          float* out, int m, int k, int n, int relu);
  // dst[i] += src[i] over n floats (the packed pipeline's residual adds).
  // Elementwise; every level is bit-identical.
  void (*add_rows)(float* dst, const float* src, size_t n);

  // --- Backward kernels -----------------------------------------------
  // The training-side counterparts of the forwards above, with the same
  // numerics contract: the scalar table reproduces the pre-SIMD backward
  // closures in nn/tensor.cc bit for bit, and the vector tables preserve
  // each gradient element's accumulation order (dot-shaped reductions
  // keep their ascending order per lane; elementwise passes vectorize
  // freely). The one cross-level deviation is again V::Exp, which the
  // packed attention backward uses to recompute the softmax
  // probabilities — so at a vector level the recomputed probs match that
  // level's *forward* bits exactly, and only cross-level equality is
  // epsilon-gated (like the forward).

  // dA[i0:i1, :] += dOut[i0:i1, :] * B^T with dOut [m, n], B [k, n]. Each
  // dA element is one complete ascending-j dot accumulated in a register
  // and added to dA once — the vector levels run lanes across the p (dA
  // column) dimension over a transposed copy of B, so every lane's dot
  // keeps the scalar's ascending-j order and the single final add.
  void (*matmul_backward_a)(const float* og, const float* bv, float* ag,
                            int i0, int i1, int k, int n);
  // dB[p0:p1, :] += (A^T * dOut)[p0:p1, :] with A [m, k], dOut [m, n]:
  // rank-1 row updates, i accumulated in ascending order per output
  // element regardless of the p partition, with the seed's aval == 0 skip
  // kept at every level (same value subsequence, so same bits). Vector
  // levels run lanes across the j (dB column) dimension.
  void (*matmul_backward_b)(const float* av, const float* og, float* bg,
                            int p0, int p1, int m, int k, int n);
  // Backward of bias_relu: for elements where the forward output ov was
  // > 0, ag[r, c] += og[r, c] and bg[c] += og[r, c]; gated elements are
  // untouched. ag / bg may be null to skip that gradient. bg accumulates
  // rows in ascending order per column at every level.
  void (*bias_act_backward)(const float* ov, const float* og, float* ag,
                            float* bg, int m, int n);
  // Backward of layer_norm_rows: given forward input xv and gamma gv,
  // accumulates xg (input grad), gg (gamma grad) and bg (beta grad), any
  // of which may be null. Row statistics and the m1/m2 reductions stay
  // scalar ascending at every level; the gg/bg and xg passes are
  // elementwise and vectorize bit-identically.
  void (*layer_norm_rows_backward)(const float* xv, const float* gv,
                                   const float* og, float* xg, float* gg,
                                   float* bg, int m, int n, float invn);
  // Backward of softmax_rows_masked: gx[r, c] += y[r, c] * (gy[r, c] -
  // dot_r) over the first valid[r] columns, dot_r = sum_c y * gy kept
  // scalar ascending; the gx pass is elementwise.
  void (*softmax_rows_masked_backward)(const float* yv, const float* gy,
                                       float* gx, const int* valid, int m,
                                       int n);
  // Backward of attention_forward_packed: recomputes the probabilities
  // (through V::Exp — see above) and accumulates qg / kg / vg, any of
  // which may be null. All dot reductions keep the scalar's ascending
  // order per lane; lanes run across key positions (d_probs) and head
  // columns (the gradient axpys).
  void (*attention_backward_packed)(const float* qv, const float* kv,
                                    const float* vv, const float* og,
                                    float* qg, float* kg, float* vg,
                                    const int* offsets, const int* lengths,
                                    int num_seqs, int num_heads, int dim,
                                    float scale);
  // Fused Adam/AdamW parameter update over one flat parameter buffer:
  //   m[j] = beta1 * m[j] + (1 - beta1) * g[j]
  //   v[j] = beta2 * v[j] + (1 - beta2) * g[j] * g[j]
  //   value[j] -= lr * (m[j]/bias1) / (sqrt(v[j]/bias2) + eps)       (Adam)
  //   value[j] -= lr * ((m[j]/bias1) / (sqrt(v[j]/bias2) + eps)
  //               + weight_decay * value[j])                         (AdamW)
  // Purely elementwise, and sqrt/div are correctly rounded IEEE ops, so
  // every level is bit-identical — lane for lane the vector path computes
  // the scalar expression tree (including the left-associated
  // ((1-beta2)*g)*g product). weight_decay == 0 selects the plain-Adam
  // expression so zero-decay AdamW stays bitwise identical to Adam.
  void (*adam_step)(float* value, const float* grad, float* m, float* v,
                    size_t n, float lr, float beta1, float beta2, float eps,
                    float bias1, float bias2, float weight_decay);
};

// Tile geometry of the packed int8 weight layout: kInt8TileN output
// channels interleaved per tile, kInt8TileK quantized inputs per step (one
// 128-bit int8 vector).
inline constexpr int kInt8TileK = 16;
inline constexpr int kInt8TileN = 4;

inline int Int8PackedKPad(int k) {
  return ((k + kInt8TileK - 1) / kInt8TileK) * kInt8TileK;
}
inline size_t Int8PackedSize(int k, int n) {
  const size_t tiles = static_cast<size_t>((n + kInt8TileN - 1) / kInt8TileN);
  return tiles * static_cast<size_t>(Int8PackedKPad(k)) * kInt8TileN;
}

// Repacks channel-contiguous int8 weights w [n][k] (the int8_gemm layout)
// into the tiled layout int8_gemm_packed consumes:
//   packed[((t*KB + b)*kInt8TileN + ch)*kInt8TileK + kk] = w[(t*kInt8TileN +
//   ch)][b*kInt8TileK + kk]
// with KB = Int8PackedKPad(k)/kInt8TileK; out-of-range channels and k
// positions are zero. Each entry is the int8 weight sign-extended to
// int16 (see int8_gemm_packed). `packed` must hold Int8PackedSize(k, n)
// elements. Plain widening copies — done once at Quantize() time, never
// on the serve path.
void PackInt8WeightTiles(const int8_t* w, int k, int n, int16_t* packed);

// The active kernel table. Selected once on first use: the best level the
// hardware supports (cpuid on x86-64, getauxval on aarch64), downgraded by
// the QPE_SIMD environment knob ("0"/"scalar" force the scalar table,
// "avx2"/"neon" request a level and fall back to scalar if unavailable)
// and forced to scalar under sanitizer builds (QPE_SANITIZE_BUILD) so TSan
// and ASan exercise the dispatch machinery without vendor intrinsics.
const Kernels& K();

// Level of the active table (== K().level).
Level ActiveLevel();

// Highest level this binary + CPU supports, before QPE_SIMD and sanitizer
// downgrades. Stamped into benchmark baselines next to the active level.
Level HardwareLevel();

const char* LevelName(Level level);

// Parses a QPE_SIMD-style string: "0"/"scalar" -> kScalar, "avx2" ->
// kAvx2, "neon" -> kNeon, "1"/"auto"/"" -> `fallback`. Unknown strings
// also return `fallback`. Exposed for tests.
Level ParseLevel(const char* s, Level fallback);

// Test/bench hook: swap the active table. Requests above what the binary
// supports (or any non-scalar level under a sanitizer build) clamp to
// scalar; returns the level actually installed. Not safe to call while
// kernels are running on other threads.
Level ForceLevel(Level level);

// Per-level tables; null when the level is not compiled into this binary.
// Scalar is always available.
const Kernels* TableFor(Level level);

}  // namespace qpe::nn::simd

#endif  // QPE_NN_SIMD_H_
