#ifndef QPE_NN_SIMD_H_
#define QPE_NN_SIMD_H_

#include <cstdint>

namespace qpe::nn::simd {

// Instruction-set level of the kernel table in use. Exactly one non-scalar
// level is compiled per architecture (AVX2 on x86-64, NEON on aarch64); the
// scalar table is always built and is the bit-exactness reference: with
// QPE_SIMD=0 every kernel below produces the same bits the pre-SIMD scalar
// loops in nn/tensor.cc produced.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// Kernel dispatch table. All kernels operate on raw row-major buffers so
// both the autograd ops in nn/tensor.cc and the graph-free quantized
// inference engine (encoder/quantized_encoder.cc) share them.
//
// Numerics contract: the float kernels preserve each output element's
// accumulation order (axpy- and elementwise-shaped loops vectorize across
// independent output lanes, never across a reduction), and the vector
// variants use explicit mul+add — no FMA contraction. The AVX2/NEON tables
// are therefore bit-identical to the scalar table on every input today;
// tests still gate them by an epsilon contract (tests/simd_quant_test.cc)
// so a future lane-reduced kernel only has to stay within epsilon. The
// int8 kernel is pure integer arithmetic and must be bit-exact across all
// levels.
struct Kernels {
  Level level = Level::kScalar;
  const char* name = "scalar";

  // out[i0:i1, :] += A[i0:i1, :] * B with A [m,k], B [k,n]: the blocked
  // MatMul forward micro-kernel. Per output element the k dimension
  // accumulates in ascending order at every level.
  void (*matmul_forward_range)(const float* a, const float* b, float* out,
                               int i0, int i1, int k, int n);
  // out = max(a + bias, 0) over a row-major [m, n] block, bias [n].
  void (*bias_relu)(const float* a, const float* bias, float* out, int m,
                    int n);
  // Row-wise layer norm: y = ((x - mean) * recip) * gamma + beta. Row
  // statistics are computed scalar at every level (they are reductions;
  // keeping them scalar keeps the kernel bit-exact), the normalize pass
  // vectorizes across columns.
  void (*layer_norm_rows)(const float* x, const float* gamma,
                          const float* beta, float* out, int m, int n,
                          float invn);
  // Masked row softmax over the first valid[r] columns; remaining columns
  // are left untouched (the caller pre-zeroes them). exp and the sum stay
  // scalar (ascending-order reduction), max and the divide vectorize.
  void (*softmax_rows_masked)(const float* a, float* out, const int* valid,
                              int m, int n);
  // Fused packed multi-head attention forward (see
  // nn::MultiHeadAttentionPacked for the exact semantics).
  void (*attention_forward_packed)(const float* q, const float* k,
                                   const float* v, float* out,
                                   const int* offsets, const int* lengths,
                                   int num_seqs, int num_heads, int dim,
                                   float scale);
  // Quantized GEMM with int32 accumulation:
  //   c[i, j] = dot(a[i, :], b[j, :]) * a_scale[i] * b_scale[j] + bias[j]
  // a is [m, k] row-major int8 (quantized activations), b is [n, k] —
  // each output channel's weights contiguous (column-major of the [k, n]
  // weight matrix), bias may be null. The integer accumulation is exact,
  // so results are bit-identical across levels.
  void (*int8_gemm)(const int8_t* a, const int8_t* b, float* c, int m, int k,
                    int n, const float* a_scale, const float* b_scale,
                    const float* bias);
};

// The active kernel table. Selected once on first use: the best level the
// hardware supports (cpuid on x86-64, getauxval on aarch64), downgraded by
// the QPE_SIMD environment knob ("0"/"scalar" force the scalar table,
// "avx2"/"neon" request a level and fall back to scalar if unavailable)
// and forced to scalar under sanitizer builds (QPE_SANITIZE_BUILD) so TSan
// and ASan exercise the dispatch machinery without vendor intrinsics.
const Kernels& K();

// Level of the active table (== K().level).
Level ActiveLevel();

// Highest level this binary + CPU supports, before QPE_SIMD and sanitizer
// downgrades. Stamped into benchmark baselines next to the active level.
Level HardwareLevel();

const char* LevelName(Level level);

// Parses a QPE_SIMD-style string: "0"/"scalar" -> kScalar, "avx2" ->
// kAvx2, "neon" -> kNeon, "1"/"auto"/"" -> `fallback`. Unknown strings
// also return `fallback`. Exposed for tests.
Level ParseLevel(const char* s, Level fallback);

// Test/bench hook: swap the active table. Requests above what the binary
// supports (or any non-scalar level under a sanitizer build) clamp to
// scalar; returns the level actually installed. Not safe to call while
// kernels are running on other threads.
Level ForceLevel(Level level);

// Per-level tables; null when the level is not compiled into this binary.
// Scalar is always available.
const Kernels* TableFor(Level level);

}  // namespace qpe::nn::simd

#endif  // QPE_NN_SIMD_H_
