#ifndef QPE_NN_QUANT_H_
#define QPE_NN_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace qpe::nn {

// Post-training int8 quantization primitives for the serving path.
//
// Scheme: symmetric linear quantization, q = clamp(round(x / scale), -127,
// 127), zero point 0. Weights are quantized per output channel (each output
// column of a Linear gets its own scale, from the column's absmax);
// activations are quantized per tensor with a STATIC scale calibrated
// offline on a held-out plan sample (QuantCalibrator). Static activation
// scales keep inference deterministic: the quantized engine does no
// data-dependent range analysis at serve time, so a plan always produces
// the same embedding regardless of what else is in its batch.
//
// The matmul itself runs in int8 x int8 -> int32 (simd::Kernels::int8_gemm,
// exact integer accumulation, bit-identical across SIMD levels), and the
// int32 result is rescaled to float by input_scale * weight_scale[channel]
// before the float bias is added.

// Smallest representable scale: guards against absmax == 0 (a dead channel
// or an all-zero calibration set) producing inf/NaN on dequantize.
inline constexpr float kMinQuantScale = 1e-10f;

// Rounds to nearest (ties away from zero) and saturates to [-127, 127].
// Symmetric range: -128 is never produced, so negation stays in range and
// the AVX2/NEON widening paths need no special case. Computed as
// trunc(t + copysign(0.5, t)) — exact IEEE ops only, so the vectorized
// quantize_buffer kernel lanes reproduce it bit for bit.
int8_t QuantizeValue(float x, float inv_scale);

// Quantizes n values with one shared scale (activations).
void QuantizeBuffer(const float* x, size_t n, float scale, int8_t* out);

// Streams activation tensors during offline calibration and yields the
// static per-tensor scale. Observe() is absmax tracking, so the order of
// observations does not matter and calibration is deterministic.
class QuantCalibrator {
 public:
  void Observe(const float* x, size_t n);
  float absmax() const { return absmax_; }
  // absmax / 127, floored at kMinQuantScale.
  float scale() const;

 private:
  float absmax_ = 0.0f;
};

// An int8-quantized Linear layer: per-channel symmetric weights, static
// per-tensor input scale, float bias. Immutable after construction.
class QuantizedLinear {
 public:
  QuantizedLinear() = default;

  // Quantizes a trained fp32 Linear. `weight` is [in, out] (the layout
  // nn::Linear trains), `bias` is [1, out]; `input_scale` comes from a
  // QuantCalibrator run over this layer's inputs. Weights are repacked to
  // [out][in] — each output channel contiguous — which is the layout the
  // int8 GEMM kernel consumes.
  static QuantizedLinear FromLinear(const Tensor& weight, const Tensor& bias,
                                    float input_scale);

  // y[m, out] = dequant(int8gemm(quant(x), W)) + bias, with x [m, in]
  // row-major. `qx_scratch` holds the quantized activations between calls
  // (resized as needed); passing the same scratch across calls makes the
  // hot loop allocation-free once warm. Thread-safe for concurrent callers
  // with distinct scratch buffers.
  void Forward(const float* x, int m, float* y,
               std::vector<int8_t>* qx_scratch,
               std::vector<float>* row_scale_scratch) const;

  // Forward over activations a previous Forward already quantized into
  // `qx_scratch` — valid only when that call saw the same x, m, and an
  // identical input_scale() (then the quantized bytes this layer would
  // produce are bit-identical, so skipping the quantize pass cannot change
  // the result). The packed engine's q/k/v projections share one
  // calibrated input, which makes two of their three quantize passes
  // redundant.
  void ForwardPrequantized(int m, float* y,
                           const std::vector<int8_t>& qx_scratch,
                           std::vector<float>* row_scale_scratch) const;

  int in_features() const { return in_; }
  int out_features() const { return out_; }
  float input_scale() const { return input_scale_; }
  const std::vector<float>& weight_scales() const { return weight_scale_; }
  const std::vector<int8_t>& packed_weight() const { return weight_; }
  const std::vector<int16_t>& packed_tiles() const { return packed_tiles_; }

 private:
  int in_ = 0;
  int out_ = 0;
  int k_pad_ = 0;  // simd::Int8PackedKPad(in_)
  float input_scale_ = 1.0f;
  std::vector<int8_t> weight_;        // [out][in], channel-contiguous
  std::vector<int16_t> packed_tiles_;  // simd::PackInt8WeightTiles layout
  std::vector<float> weight_scale_;   // [out]
  std::vector<float> bias_;           // [out]
};

}  // namespace qpe::nn

#endif  // QPE_NN_QUANT_H_
