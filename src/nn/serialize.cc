#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <utility>
#include <vector>

#include "util/fault_injection.h"

namespace qpe::nn {

namespace {

constexpr uint32_t kMagic = 0x51504531;  // "QPE1"

void WriteU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& is, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(is, &len)) return false;
  s->resize(len);
  is.read(s->data(), static_cast<std::streamsize>(len));
  return static_cast<bool>(is);
}

}  // namespace

void SaveModule(const Module& module, std::ostream& os) {
  const auto named = module.NamedParameters();
  WriteU32(os, kMagic);
  WriteU32(os, static_cast<uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    WriteString(os, name);
    WriteU32(os, static_cast<uint32_t>(tensor.rows()));
    WriteU32(os, static_cast<uint32_t>(tensor.cols()));
    os.write(reinterpret_cast<const char*>(tensor.value().data()),
             static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
}

namespace internal {

util::Status StageModule(Module* module, std::istream& is,
                         StagedModule* staged) {
  uint32_t magic = 0, count = 0;
  if (!ReadU32(is, &magic)) {
    return util::DataLossError("module stream truncated in header");
  }
  if (magic != kMagic) {
    return util::DataLossError("bad module magic " + std::to_string(magic) +
                               ", expected " + std::to_string(kMagic));
  }
  if (!ReadU32(is, &count)) {
    return util::DataLossError("module stream truncated in parameter count");
  }
  auto named = module->NamedParameters();
  if (count != named.size()) {
    return util::FailedPreconditionError(
        "module stream has " + std::to_string(count) +
        " parameter(s), destination module has " +
        std::to_string(named.size()));
  }
  // Stage phase: parse and validate every tensor against the destination
  // before touching any of its storage, so a failure anywhere leaves the
  // module byte-identical to its pre-call state.
  staged->values.assign(named.size(), {});
  for (size_t i = 0; i < named.size(); ++i) {
    const auto& [name, tensor] = named[i];
    std::string stored_name;
    uint32_t rows = 0, cols = 0;
    if (!ReadString(is, &stored_name)) {
      return util::DataLossError("module stream truncated in name of tensor " +
                                 std::to_string(i) + " ('" + name + "')");
    }
    if (stored_name != name) {
      return util::FailedPreconditionError(
          "tensor " + std::to_string(i) + " is named '" + stored_name +
          "' in the stream but '" + name + "' in the module");
    }
    if (!ReadU32(is, &rows) || !ReadU32(is, &cols)) {
      return util::DataLossError("module stream truncated in shape of '" +
                                 name + "'");
    }
    if (static_cast<int>(rows) != tensor.rows() ||
        static_cast<int>(cols) != tensor.cols()) {
      return util::FailedPreconditionError(
          "tensor '" + name + "' is [" + std::to_string(rows) + ", " +
          std::to_string(cols) + "] in the stream but [" +
          std::to_string(tensor.rows()) + ", " + std::to_string(tensor.cols()) +
          "] in the module");
    }
    staged->values[i].resize(static_cast<size_t>(tensor.numel()));
    is.read(
        reinterpret_cast<char*>(staged->values[i].data()),
        static_cast<std::streamsize>(staged->values[i].size() * sizeof(float)));
    if (!is) {
      return util::DataLossError("module stream truncated in data of '" +
                                 name + "'");
    }
  }
  return util::OkStatus();
}

void CommitModule(Module* module, StagedModule&& staged) {
  auto named = module->NamedParameters();
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.value() = std::move(staged.values[i]);
  }
}

}  // namespace internal

util::Status LoadModuleStatus(Module* module, std::istream& is) {
  if (util::Status s = util::InjectFault("module.load.read"); !s.ok()) {
    return s;
  }
  internal::StagedModule staged;
  if (util::Status s = internal::StageModule(module, is, &staged); !s.ok()) {
    return s;
  }
  internal::CommitModule(module, std::move(staged));
  return util::OkStatus();
}

util::Status SaveModuleToFileStatus(const Module& module,
                                    const std::string& path) {
  if (util::Status s = util::InjectFault("module.save.open"); !s.ok()) {
    return s;
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) return util::IoError("cannot open '" + path + "' for writing");
  SaveModule(module, os);
  if (util::Status s = util::InjectFault("module.save.write"); !s.ok()) {
    return s;
  }
  if (!os) return util::IoError("write to '" + path + "' failed");
  return util::OkStatus();
}

util::Status LoadModuleFromFileStatus(Module* module, const std::string& path) {
  if (util::Status s = util::InjectFault("module.load.open"); !s.ok()) {
    return s;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::NotFoundError("cannot open '" + path + "'");
  util::Status s = LoadModuleStatus(module, is);
  if (!s.ok()) {
    return util::Status(s.code(), "'" + path + "': " + s.message());
  }
  return s;
}

bool LoadModule(Module* module, std::istream& is) {
  return LoadModuleStatus(module, is).ok();
}

bool SaveModuleToFile(const Module& module, const std::string& path) {
  return SaveModuleToFileStatus(module, path).ok();
}

bool LoadModuleFromFile(Module* module, const std::string& path) {
  return LoadModuleFromFileStatus(module, path).ok();
}

bool CopyParameters(const Module& source, Module* dest) {
  const auto src = source.NamedParameters();
  auto dst = dest->NamedParameters();
  if (src.size() != dst.size()) return false;
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].first != dst[i].first ||
        src[i].second.rows() != dst[i].second.rows() ||
        src[i].second.cols() != dst[i].second.cols()) {
      return false;
    }
  }
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i].second.value() = src[i].second.value();
  }
  return true;
}

}  // namespace qpe::nn
