#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

namespace qpe::nn {

namespace {

constexpr uint32_t kMagic = 0x51504531;  // "QPE1"

void WriteU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& is, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(is, &len)) return false;
  s->resize(len);
  is.read(s->data(), static_cast<std::streamsize>(len));
  return static_cast<bool>(is);
}

}  // namespace

void SaveModule(const Module& module, std::ostream& os) {
  const auto named = module.NamedParameters();
  WriteU32(os, kMagic);
  WriteU32(os, static_cast<uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    WriteString(os, name);
    WriteU32(os, static_cast<uint32_t>(tensor.rows()));
    WriteU32(os, static_cast<uint32_t>(tensor.cols()));
    os.write(reinterpret_cast<const char*>(tensor.value().data()),
             static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
}

bool LoadModule(Module* module, std::istream& is) {
  uint32_t magic = 0, count = 0;
  if (!ReadU32(is, &magic) || magic != kMagic) return false;
  if (!ReadU32(is, &count)) return false;
  auto named = module->NamedParameters();
  if (count != named.size()) return false;
  for (auto& [name, tensor] : named) {
    std::string stored_name;
    uint32_t rows = 0, cols = 0;
    if (!ReadString(is, &stored_name) || stored_name != name) return false;
    if (!ReadU32(is, &rows) || !ReadU32(is, &cols)) return false;
    if (static_cast<int>(rows) != tensor.rows() ||
        static_cast<int>(cols) != tensor.cols()) {
      return false;
    }
    is.read(reinterpret_cast<char*>(tensor.value().data()),
            static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
    if (!is) return false;
  }
  return true;
}

bool SaveModuleToFile(const Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  SaveModule(module, os);
  return static_cast<bool>(os);
}

bool LoadModuleFromFile(Module* module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  return LoadModule(module, is);
}

bool CopyParameters(const Module& source, Module* dest) {
  const auto src = source.NamedParameters();
  auto dst = dest->NamedParameters();
  if (src.size() != dst.size()) return false;
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].first != dst[i].first ||
        src[i].second.rows() != dst[i].second.rows() ||
        src[i].second.cols() != dst[i].second.cols()) {
      return false;
    }
    dst[i].second.value() = src[i].second.value();
  }
  return true;
}

}  // namespace qpe::nn
