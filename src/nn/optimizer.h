#ifndef QPE_NN_OPTIMIZER_H_
#define QPE_NN_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace qpe::nn {

// Serializable snapshot of an optimizer's mutable state. `kind` guards
// against restoring, say, Adam moments into an Sgd; `slots` is one vector
// of per-parameter buffers per state kind (Sgd momentum: {velocity};
// Adam: {m, v}). Checkpoint/resume round-trips this bit-exactly.
struct OptimizerState {
  std::string kind;
  int64_t step_count = 0;
  std::vector<std::vector<std::vector<float>>> slots;
};

// Optimizers update parameter values in place from accumulated gradients,
// then expect ZeroGradAll() (or Module::ZeroGrad) before the next step.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;
  void ZeroGrad();

  // Snapshot / restore of moments and step counters for checkpointing.
  // ImportState validates kind, slot count, and every buffer size against
  // this optimizer and mutates nothing on mismatch.
  virtual OptimizerState ExportState() const = 0;
  virtual util::Status ImportState(const OptimizerState& state) = 0;

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  // Shared ImportState validation: checks `kind` and that each slot has one
  // correctly-sized buffer per parameter.
  util::Status ValidateState(const OptimizerState& state,
                             const std::string& expected_kind,
                             size_t expected_slots) const;

  std::vector<Tensor> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;
  OptimizerState ExportState() const override;
  util::Status ImportState(const OptimizerState& state) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

// Adam with the bias-corrected update of Kingma & Ba. Step() runs a fused
// single pass per parameter: value/grad/m/v are walked together through
// restrict-qualified pointers, so each element is touched once per step
// with no intermediate buffers.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;
  OptimizerState ExportState() const override;
  util::Status ImportState(const OptimizerState& state) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  // State tag for checkpoints; AdamW overrides so its moments can never be
  // restored into a plain Adam (or vice versa).
  virtual const char* kind() const { return "adam"; }

  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_ = 0.0f;  // decoupled decay; 0 in plain Adam
  int step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter) — the decay
// term lr * wd * value is applied alongside the Adam update from the
// pre-update value, never entering the moment estimates. With
// weight_decay = 0 the update is bit-identical to Adam's.
class AdamW : public Adam {
 public:
  AdamW(std::vector<Tensor> params, float lr, float weight_decay,
        float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  float weight_decay() const { return weight_decay_; }

 protected:
  const char* kind() const override { return "adamw"; }
};

}  // namespace qpe::nn

#endif  // QPE_NN_OPTIMIZER_H_
