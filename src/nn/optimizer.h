#ifndef QPE_NN_OPTIMIZER_H_
#define QPE_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace qpe::nn {

// Optimizers update parameter values in place from accumulated gradients,
// then expect ZeroGradAll() (or Module::ZeroGrad) before the next step.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace qpe::nn

#endif  // QPE_NN_OPTIMIZER_H_
