#ifndef QPE_NN_PACKED_FORWARD_H_
#define QPE_NN_PACKED_FORWARD_H_

#include <cmath>
#include <cstddef>
#include <cstring>

#include "nn/packed_batch.h"
#include "nn/simd.h"

namespace qpe::nn {

// Pipeline knobs, re-read from the environment on every call so tests can
// A/B both settings in one process with setenv. Both default on.
//
// QPE_PACKED=0: the fp32 encoder falls back to its tensor op-chain
// EncodeBatch instead of the packed engine (the engine itself ignores it).
bool PackedEnvEnabled();
// QPE_HEAD_BLOCK=0: the engine keeps the interleaved attention kernel
// instead of repacking K/V into head blocks.
bool HeadBlockEnabled();

// Repacks the interleaved key projection k [rows, dim] into kbt
// [head][head_dim][rows]: row (h, c) of kbt holds column h*head_dim + c of
// k, contiguous across packed rows. Plain copies.
void RepackHeadsKT(const float* k, int rows, int dim, int num_heads,
                   float* kbt);
// Repacks the interleaved value projection v [rows, dim] into vb
// [head][rows][head_dim]: each head's head_dim lanes contiguous per row.
void RepackHeadsVB(const float* v, int rows, int dim, int num_heads,
                   float* vb);

// The shared packed inference skeleton: embedding gather -> pre-norm
// attention blocks -> pre-norm feed-forward blocks -> CLS pooling ->
// optional output projection, all over raw contiguous buffers in `ws`.
// The caller packs the batch first (ws.ids*/ws.layout via
// encoder::PackPlansColumns) and supplies every GEMM through `linear(site,
// x, m, in, out, y, relu)`; sites are layer-major wq, wk, wv, wo, ff1, ff2,
// then the projection at num_layers * 6. `relu` is true exactly for the
// ff1 site — the callback owns the activation so a fused implementation
// (simd linear_bias_act) can apply it in the GEMM epilogue; implementations
// must reproduce BiasRelu's `> 0` clamp bit for bit. Returns a pointer into ws (ws.cls or
// ws.proj) holding the [num_seqs, output_dim] result — valid until the
// workspace's next use.
//
// Numerics: every kernel call and elementwise loop below reproduces the
// tensor op chain's arithmetic per output element (the ReLU clamp uses
// BiasRelu's `> 0` select so -0.0 maps to +0.0 exactly like the fused
// kernel), so with an exact fp32 `linear` this forward is bit-identical to
// per-plan Encode at the scalar level and epsilon-equal at vector levels
// (the one sanctioned divergence is the vector exp). The head-blocked
// attention kernel is bit-identical to the interleaved one at every level,
// so QPE_HEAD_BLOCK changes addressing, never bits.
template <typename LinearFn>
const float* PackedEncodeForward(const PackedModelView& mv, PackedBatch& ws,
                                 LinearFn&& linear) {
  const BatchLayout& layout = ws.layout;
  const int rows = layout.total_rows;
  const int num_seqs = layout.size();
  const int d = mv.model_dim;
  const int f = mv.ff_dim;
  const float invd = 1.0f / static_cast<float>(d);
  const int head_dim = d / mv.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const simd::Kernels& kern = simd::K();
  const bool blocked = HeadBlockEnabled();

  const size_t rd = static_cast<size_t>(rows) * d;
  ws.EnsureF(&ws.h, rd);
  ws.EnsureF(&ws.normed, rd);
  ws.EnsureF(&ws.q, rd);
  ws.EnsureF(&ws.k, rd);
  ws.EnsureF(&ws.v, rd);
  ws.EnsureF(&ws.ctx, rd);
  ws.EnsureF(&ws.ff, static_cast<size_t>(rows) * f);
  ws.EnsureF(&ws.cls, static_cast<size_t>(num_seqs) * d);
  if (blocked) {
    int max_len = 0;
    for (const int len : layout.lengths) {
      if (len > max_len) max_len = len;
    }
    ws.EnsureF(&ws.kbt, rd);
    ws.EnsureF(&ws.vb, rd);
    ws.EnsureF(&ws.probs, static_cast<size_t>(max_len) * max_len);
  }

  kern.embed_gather_add(mv.embed1, mv.embed2, mv.embed3, mv.positional,
                        ws.ids1.data(), ws.ids2.data(), ws.ids3.data(),
                        layout.positions.data(), ws.h.data(), rows,
                        mv.level1_dim, mv.level2_dim, mv.level3_dim);

  float* h = ws.h.data();
  float* normed = ws.normed.data();
  float* ff = ws.ff.data();
  for (int li = 0; li < mv.num_layers; ++li) {
    const PackedLayerView& lp = mv.layers[li];
    const int base = li * 6;
    // Pre-norm attention block with residual.
    kern.layer_norm_rows(h, lp.norm1_gamma, lp.norm1_beta, normed, rows, d,
                         invd);
    linear(base + 0, normed, rows, d, d, ws.q.data(), false);
    linear(base + 1, normed, rows, d, d, ws.k.data(), false);
    linear(base + 2, normed, rows, d, d, ws.v.data(), false);
    if (blocked) {
      RepackHeadsKT(ws.k.data(), rows, d, mv.num_heads, ws.kbt.data());
      RepackHeadsVB(ws.v.data(), rows, d, mv.num_heads, ws.vb.data());
      kern.attention_forward_blocked(
          ws.q.data(), ws.kbt.data(), ws.vb.data(), ws.ctx.data(),
          layout.offsets.data(), layout.lengths.data(), num_seqs,
          mv.num_heads, rows, d, scale, ws.probs.data());
    } else {
      kern.attention_forward_packed(ws.q.data(), ws.k.data(), ws.v.data(),
                                    ws.ctx.data(), layout.offsets.data(),
                                    layout.lengths.data(), num_seqs,
                                    mv.num_heads, d, scale);
    }
    linear(base + 3, ws.ctx.data(), rows, d, d, normed, false);
    kern.add_rows(h, normed, rd);
    // Pre-norm feed-forward block (ReLU) with residual.
    kern.layer_norm_rows(h, lp.norm2_gamma, lp.norm2_beta, normed, rows, d,
                         invd);
    linear(base + 4, normed, rows, d, f, ff, /*relu=*/true);
    linear(base + 5, ff, rows, f, d, normed, false);
    kern.add_rows(h, normed, rd);
  }

  // CLS pooling, then the optional output projection on the [B, d] matrix.
  float* cls = ws.cls.data();
  for (int s = 0; s < num_seqs; ++s) {
    const float* src = h + static_cast<size_t>(layout.offsets[s]) * d;
    std::memcpy(cls + static_cast<size_t>(s) * d, src, sizeof(float) * d);
  }
  if (!mv.has_projection) return cls;
  ws.EnsureF(&ws.proj, static_cast<size_t>(num_seqs) * mv.output_dim);
  linear(mv.num_layers * 6, cls, num_seqs, d, mv.output_dim, ws.proj.data(),
         false);
  return ws.proj.data();
}

}  // namespace qpe::nn

#endif  // QPE_NN_PACKED_FORWARD_H_
