#include "nn/packed_batch.h"

#include <atomic>
#include <climits>
#include <cstdio>
#include <cstdlib>

namespace qpe::nn {

namespace {

std::atomic<uint64_t> g_growth_events{0};

}  // namespace

void PackedBatch::BeginBatch() {
  pack_capacity_snapshot_ = PackCapacitySum();
  ids1.clear();
  ids2.clear();
  ids3.clear();
  lengths.clear();
  layout.offsets.clear();
  layout.lengths.clear();
  layout.positions.clear();
  layout.total_rows = 0;
}

void PackedBatch::BuildLayout() {
  // Same validation as BatchLayout::FromLengthsChecked, but filling the
  // existing vectors so their capacity carries across micro-batches.
  long long total = 0;
  bool valid = true;
  for (const int len : lengths) {
    if (len <= 0) valid = false;
    total += len;
    if (total > INT_MAX) valid = false;
  }
  if (!valid) {
    const util::StatusOr<BatchLayout> checked =
        BatchLayout::FromLengthsChecked(lengths);
    std::fprintf(stderr, "%s\n", checked.status().message().c_str());
    std::abort();
  }
  layout.offsets.clear();
  layout.lengths.assign(lengths.begin(), lengths.end());
  layout.positions.clear();
  layout.total_rows = 0;
  layout.offsets.reserve(lengths.size());
  for (const int len : lengths) {
    layout.offsets.push_back(layout.total_rows);
    layout.total_rows += len;
  }
  layout.positions.reserve(layout.total_rows);
  for (const int len : lengths) {
    for (int t = 0; t < len; ++t) layout.positions.push_back(t);
  }
}

void PackedBatch::FinishPack() {
  if (PackCapacitySum() != pack_capacity_snapshot_) {
    g_growth_events.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t PackedBatch::PackCapacitySum() const {
  return ids1.capacity() + ids2.capacity() + ids3.capacity() +
         lengths.capacity() + layout.offsets.capacity() +
         layout.lengths.capacity() + layout.positions.capacity();
}

void PackedBatch::EnsureF(std::vector<float>* buf, size_t n) {
  if (buf->capacity() < n) {
    g_growth_events.fetch_add(1, std::memory_order_relaxed);
  }
  if (buf->size() < n) buf->resize(n);
}

void PackedBatch::EnsureI(std::vector<int>* buf, size_t n) {
  if (buf->capacity() < n) {
    g_growth_events.fetch_add(1, std::memory_order_relaxed);
  }
  if (buf->size() < n) buf->resize(n);
}

void PackedBatch::EnsureI8(std::vector<int8_t>* buf, size_t n) {
  if (buf->capacity() < n) {
    g_growth_events.fetch_add(1, std::memory_order_relaxed);
  }
  if (buf->size() < n) buf->resize(n);
}

PackedBatch& PackedBatch::ThreadLocal() {
  thread_local PackedBatch ws;
  return ws;
}

uint64_t PackedBatch::TotalGrowthEvents() {
  return g_growth_events.load(std::memory_order_relaxed);
}

}  // namespace qpe::nn
