#include "nn/packed_train.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "nn/simd.h"

namespace qpe::nn {

namespace {

void Ensure(std::vector<float>* buf, size_t n) {
  if (buf->size() < n) buf->resize(n);
}

// Gradient pointer for one parameter, resolved at backward time so a
// GradientCapture alive on this thread redirects the write into its shard
// buffer — exactly like the op-chain closures.
float* Gp(const PackedTrainParam& p) {
  return p.impl != nullptr && p.impl->requires_grad ? GradPtr(p.impl) : nullptr;
}

}  // namespace

bool PackedTrainEnvEnabled() {
  const char* v = std::getenv("QPE_PACKED_TRAIN");
  return v == nullptr || std::strcmp(v, "0") != 0;
}

PackedTrainBatch& PackedTrainBatch::ThreadLocal() {
  thread_local PackedTrainBatch ws;
  return ws;
}

const float* PackedTrainForward(PackedTrainBatch& ws, util::Rng* rng) {
  const PackedTrainView& view = ws.view;
  const simd::Kernels& kern = simd::K();
  const int rows = ws.rows;
  const int S = ws.num_seqs;
  const int d = view.model_dim;
  const int f = view.ff_dim;
  const float invd = 1.0f / static_cast<float>(d);
  const int head_dim = d / view.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const size_t rd = static_cast<size_t>(rows) * d;
  const size_t rf = static_cast<size_t>(rows) * f;

  ++ws.generation;
  ws.used_dropout = rng != nullptr && view.dropout > 0.0f;

  if (static_cast<int>(ws.layers.size()) < view.num_layers) {
    ws.layers.resize(view.num_layers);
  }
  for (int li = 0; li < view.num_layers; ++li) {
    PackedTrainLayerActs& acts = ws.layers[li];
    Ensure(&acts.x, rd);
    Ensure(&acts.n1, rd);
    Ensure(&acts.q, rd);
    Ensure(&acts.k, rd);
    Ensure(&acts.v, rd);
    Ensure(&acts.att, rd);
    Ensure(&acts.hm, rd);
    Ensure(&acts.n2, rd);
    Ensure(&acts.ffa, rf);
    if (ws.used_dropout) {
      Ensure(&acts.mask_att, rd);
      Ensure(&acts.mask_ff, rd);
    }
  }
  Ensure(&ws.hout, rd);
  Ensure(&ws.cls, static_cast<size_t>(S) * d);
  Ensure(&ws.scratch, rd);

  // Dropout masks are drawn up front, consuming the RNG stream in the
  // exact order the per-plan op chain does: plans in caller order (caller
  // plan ci is packed sequence S-1-ci under the reversed packing), and
  // within a plan layer by layer, attention mask before feed-forward
  // mask, row-major over the plan's rows.
  if (ws.used_dropout) {
    const float p = view.dropout;
    const float keep = 1.0f / (1.0f - p);
    for (int ci = 0; ci < S; ++ci) {
      const int s = S - 1 - ci;
      const size_t base = static_cast<size_t>(ws.offsets[s]) * d;
      const size_t count = static_cast<size_t>(ws.lengths[s]) * d;
      for (int li = 0; li < view.num_layers; ++li) {
        PackedTrainLayerActs& acts = ws.layers[li];
        float* ma = acts.mask_att.data() + base;
        for (size_t i = 0; i < count; ++i) {
          ma[i] = rng->Bernoulli(p) ? 0.0f : keep;
        }
        float* mf = acts.mask_ff.data() + base;
        for (size_t i = 0; i < count; ++i) {
          mf[i] = rng->Bernoulli(p) ? 0.0f : keep;
        }
      }
    }
  }

  auto linear = [&](int site, const float* x, int m, int in, int out, float* y,
                    int relu) {
    const PackedTrainSite& s = view.sites[site];
    kern.linear_bias_act(x, s.weight.v, s.bias.v, y, m, in, out, relu);
  };

  kern.embed_gather_add(view.embed1.v, view.embed2.v, view.embed3.v,
                        view.positional.v, ws.ids1.data(), ws.ids2.data(),
                        ws.ids3.data(), ws.positions.data(),
                        ws.layers[0].x.data(), rows, view.level1_dim,
                        view.level2_dim, view.level3_dim);

  float* scratch = ws.scratch.data();
  for (int li = 0; li < view.num_layers; ++li) {
    PackedTrainLayerActs& acts = ws.layers[li];
    const PackedTrainLayerParams& lp = view.layers[li];
    const int base = li * 6;
    kern.layer_norm_rows(acts.x.data(), lp.norm1_gamma.v, lp.norm1_beta.v,
                         acts.n1.data(), rows, d, invd);
    linear(base + 0, acts.n1.data(), rows, d, d, acts.q.data(), 0);
    linear(base + 1, acts.n1.data(), rows, d, d, acts.k.data(), 0);
    linear(base + 2, acts.n1.data(), rows, d, d, acts.v.data(), 0);
    kern.attention_forward_packed(acts.q.data(), acts.k.data(), acts.v.data(),
                                  acts.att.data(), ws.offsets.data(),
                                  ws.lengths.data(), S, view.num_heads, d,
                                  scale);
    linear(base + 3, acts.att.data(), rows, d, d, scratch, 0);
    if (ws.used_dropout) {
      const float* m = acts.mask_att.data();
      for (size_t i = 0; i < rd; ++i) scratch[i] *= m[i];
    }
    std::memcpy(acts.hm.data(), acts.x.data(), sizeof(float) * rd);
    kern.add_rows(acts.hm.data(), scratch, rd);
    kern.layer_norm_rows(acts.hm.data(), lp.norm2_gamma.v, lp.norm2_beta.v,
                         acts.n2.data(), rows, d, invd);
    linear(base + 4, acts.n2.data(), rows, d, f, acts.ffa.data(), 1);
    linear(base + 5, acts.ffa.data(), rows, f, d, scratch, 0);
    if (ws.used_dropout) {
      const float* m = acts.mask_ff.data();
      for (size_t i = 0; i < rd; ++i) scratch[i] *= m[i];
    }
    float* xout = li + 1 < view.num_layers ? ws.layers[li + 1].x.data()
                                           : ws.hout.data();
    std::memcpy(xout, acts.hm.data(), sizeof(float) * rd);
    kern.add_rows(xout, scratch, rd);
  }

  float* cls = ws.cls.data();
  for (int s = 0; s < S; ++s) {
    std::memcpy(cls + static_cast<size_t>(s) * d,
                ws.hout.data() + static_cast<size_t>(ws.offsets[s]) * d,
                sizeof(float) * d);
  }
  if (!view.has_projection) return cls;
  Ensure(&ws.proj, static_cast<size_t>(S) * view.output_dim);
  linear(view.num_layers * 6, cls, S, d, view.output_dim, ws.proj.data(), 0);
  return ws.proj.data();
}

void PackedTrainBackward(PackedTrainBatch& ws, const float* out_grad,
                         uint64_t generation) {
  if (ws.generation != generation) {
    std::fprintf(stderr,
                 "PackedTrainBackward: retained activations were overwritten "
                 "by a newer forward before Backward() ran\n");
    std::abort();
  }
  const PackedTrainView& view = ws.view;
  const simd::Kernels& kern = simd::K();
  const int rows = ws.rows;
  const int S = ws.num_seqs;
  const int d = view.model_dim;
  const int f = view.ff_dim;
  const int od = view.output_dim;
  const float invd = 1.0f / static_cast<float>(d);
  const int head_dim = d / view.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const size_t rd = static_cast<size_t>(rows) * d;
  const size_t rf = static_cast<size_t>(rows) * f;

  Ensure(&ws.d_h, rd);
  Ensure(&ws.d_tmp, rd);
  Ensure(&ws.d_att, rd);
  Ensure(&ws.d_q, rd);
  Ensure(&ws.d_k, rd);
  Ensure(&ws.d_v, rd);
  Ensure(&ws.d_n1, rd);
  Ensure(&ws.d_n2, rd);
  Ensure(&ws.d_act, rf);
  Ensure(&ws.d_pre, rf);
  float* d_h = ws.d_h.data();
  float* d_tmp = ws.d_tmp.data();
  float* d_att = ws.d_att.data();
  float* d_q = ws.d_q.data();
  float* d_k = ws.d_k.data();
  float* d_v = ws.d_v.data();
  float* d_n1 = ws.d_n1.data();
  float* d_n2 = ws.d_n2.data();
  float* d_act = ws.d_act.data();
  float* d_pre = ws.d_pre.data();

  // Projection backward (when present), then scatter each sequence's
  // pooled-CLS gradient back onto its first packed row.
  const float* d_cls_rows = out_grad;
  if (view.has_projection) {
    const PackedTrainSite& ps = view.sites[view.num_layers * 6];
    Ensure(&ws.d_cls, static_cast<size_t>(S) * d);
    float* d_cls = ws.d_cls.data();
    std::fill_n(d_cls, static_cast<size_t>(S) * d, 0.0f);
    kern.matmul_backward_a(out_grad, ps.weight.v, d_cls, 0, S, d, od);
    if (float* wg = Gp(ps.weight)) {
      kern.matmul_backward_b(ws.cls.data(), out_grad, wg, 0, d, S, d, od);
    }
    if (float* bg = Gp(ps.bias)) {
      for (int s = 0; s < S; ++s) {
        kern.add_rows(bg, out_grad + static_cast<size_t>(s) * od, od);
      }
    }
    d_cls_rows = d_cls;
  }
  std::fill_n(d_h, rd, 0.0f);
  for (int s = 0; s < S; ++s) {
    kern.add_rows(d_h + static_cast<size_t>(ws.offsets[s]) * d,
                  d_cls_rows + static_cast<size_t>(s) * d, d);
  }

  // Layer backward, top down. d_h carries the gradient of the block the
  // current step consumes: the layer output on entry, the post-attention
  // residual after the norm2 step, the layer input after the norm1 step.
  for (int li = view.num_layers - 1; li >= 0; --li) {
    PackedTrainLayerActs& acts = ws.layers[li];
    const PackedTrainLayerParams& lp = view.layers[li];
    const int base = li * 6;

    // Feed-forward branch of the output residual (through the ff dropout
    // mask when one was drawn).
    if (ws.used_dropout) {
      std::fill_n(d_tmp, rd, 0.0f);
      const float* m = acts.mask_ff.data();
      for (size_t i = 0; i < rd; ++i) d_tmp[i] += d_h[i] * m[i];
    } else {
      std::memcpy(d_tmp, d_h, sizeof(float) * rd);
    }
    const PackedTrainSite& ff2 = view.sites[base + 5];
    std::fill_n(d_act, rf, 0.0f);
    kern.matmul_backward_a(d_tmp, ff2.weight.v, d_act, 0, rows, f, d);
    if (float* wg = Gp(ff2.weight)) {
      kern.matmul_backward_b(acts.ffa.data(), d_tmp, wg, 0, f, rows, f, d);
    }
    if (float* bg = Gp(ff2.bias)) {
      for (int i = 0; i < rows; ++i) {
        kern.add_rows(bg, d_tmp + static_cast<size_t>(i) * d, d);
      }
    }
    const PackedTrainSite& ff1 = view.sites[base + 4];
    std::fill_n(d_pre, rf, 0.0f);
    kern.bias_act_backward(acts.ffa.data(), d_act, d_pre, Gp(ff1.bias), rows,
                           f);
    std::fill_n(d_n2, rd, 0.0f);
    kern.matmul_backward_a(d_pre, ff1.weight.v, d_n2, 0, rows, d, f);
    if (float* wg = Gp(ff1.weight)) {
      kern.matmul_backward_b(acts.n2.data(), d_pre, wg, 0, d, rows, d, f);
    }
    kern.layer_norm_rows_backward(acts.hm.data(), lp.norm2_gamma.v, d_n2, d_h,
                                  Gp(lp.norm2_gamma), Gp(lp.norm2_beta), rows,
                                  d, invd);

    // Attention branch of the post-attention residual.
    if (ws.used_dropout) {
      std::fill_n(d_tmp, rd, 0.0f);
      const float* m = acts.mask_att.data();
      for (size_t i = 0; i < rd; ++i) d_tmp[i] += d_h[i] * m[i];
    } else {
      std::memcpy(d_tmp, d_h, sizeof(float) * rd);
    }
    const PackedTrainSite& wo = view.sites[base + 3];
    std::fill_n(d_att, rd, 0.0f);
    kern.matmul_backward_a(d_tmp, wo.weight.v, d_att, 0, rows, d, d);
    if (float* wg = Gp(wo.weight)) {
      kern.matmul_backward_b(acts.att.data(), d_tmp, wg, 0, d, rows, d, d);
    }
    if (float* bg = Gp(wo.bias)) {
      for (int i = 0; i < rows; ++i) {
        kern.add_rows(bg, d_tmp + static_cast<size_t>(i) * d, d);
      }
    }
    std::fill_n(d_q, rd, 0.0f);
    std::fill_n(d_k, rd, 0.0f);
    std::fill_n(d_v, rd, 0.0f);
    kern.attention_backward_packed(acts.q.data(), acts.k.data(), acts.v.data(),
                                   d_att, d_q, d_k, d_v, ws.offsets.data(),
                                   ws.lengths.data(), S, view.num_heads, d,
                                   scale);
    std::fill_n(d_n1, rd, 0.0f);
    // The op chain backpropagates the projections in reverse build order:
    // values, keys, queries.
    const float* d_proj[3] = {d_v, d_k, d_q};
    const int proj_site[3] = {base + 2, base + 1, base + 0};
    for (int p = 0; p < 3; ++p) {
      const PackedTrainSite& site = view.sites[proj_site[p]];
      kern.matmul_backward_a(d_proj[p], site.weight.v, d_n1, 0, rows, d, d);
      if (float* wg = Gp(site.weight)) {
        kern.matmul_backward_b(acts.n1.data(), d_proj[p], wg, 0, d, rows, d,
                               d);
      }
      if (float* bg = Gp(site.bias)) {
        for (int i = 0; i < rows; ++i) {
          kern.add_rows(bg, d_proj[p] + static_cast<size_t>(i) * d, d);
        }
      }
    }
    kern.layer_norm_rows_backward(acts.x.data(), lp.norm1_gamma.v, d_n1, d_h,
                                  Gp(lp.norm1_gamma), Gp(lp.norm1_beta), rows,
                                  d, invd);
  }

  // Embedding + positional scatter of the bottom gradient.
  float* pg = Gp(view.positional);
  float* e1g = Gp(view.embed1);
  float* e2g = Gp(view.embed2);
  float* e3g = Gp(view.embed3);
  const int d1 = view.level1_dim;
  const int d2 = view.level2_dim;
  const int d3 = view.level3_dim;
  for (int r = 0; r < rows; ++r) {
    const float* g = d_h + static_cast<size_t>(r) * d;
    if (pg != nullptr) {
      kern.add_rows(pg + static_cast<size_t>(ws.positions[r]) * d, g, d);
    }
    if (e1g != nullptr) {
      kern.add_rows(e1g + static_cast<size_t>(ws.ids1[r]) * d1, g, d1);
    }
    if (e2g != nullptr) {
      kern.add_rows(e2g + static_cast<size_t>(ws.ids2[r]) * d2, g + d1, d2);
    }
    if (e3g != nullptr) {
      kern.add_rows(e3g + static_cast<size_t>(ws.ids3[r]) * d3, g + d1 + d2,
                    d3);
    }
  }
}

}  // namespace qpe::nn
