#include "nn/module.h"

#include <cassert>
#include <cmath>

namespace qpe::nn {

std::vector<Tensor> Module::Parameters() const { return CachedParameters(); }

const std::vector<Tensor>& Module::CachedParameters() const {
  if (!param_cache_valid_) {
    param_cache_.clear();
    CollectParams(&param_cache_);
    param_cache_valid_ = true;
  }
  return param_cache_;
}

void Module::CollectParams(std::vector<Tensor>* out) const {
  // Same traversal order as CollectNamed, minus the name building.
  for (const auto& [name, tensor] : params_) out->push_back(tensor);
  for (const auto& [name, submodule] : submodules_) {
    submodule->CollectParams(out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : params_) {
    out->emplace_back(prefix + name, tensor);
  }
  for (const auto& [name, submodule] : submodules_) {
    submodule->CollectNamed(prefix + name + ".", out);
  }
}

int Module::ParameterCount() const {
  int count = 0;
  for (const Tensor& p : CachedParameters()) count += p.numel();
  return count;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, submodule] : submodules_) submodule->SetTraining(training);
}

void Module::ZeroGrad() {
  for (const Tensor& p : CachedParameters()) p.ZeroGrad();
}

Tensor& Module::RegisterParameter(const std::string& name, Tensor tensor) {
  params_.emplace_back(name, std::move(tensor));
  param_cache_valid_ = false;
  return params_.back().second;
}

// --- Linear ---

Linear::Linear(int in_features, int out_features, util::Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(RegisterParameter("weight",
                                Tensor::Xavier(in_features, out_features, rng))),
      bias_(RegisterParameter("bias",
                              Tensor::Zeros(1, out_features,
                                            /*requires_grad=*/true))) {}

Tensor Linear::Forward(const Tensor& x) const {
  assert(x.cols() == in_features_);
  // One fused graph node; bit-identical to Add(MatMul(x, weight_), bias_).
  return LinearRowBias(x, weight_, bias_);
}

Tensor Linear::ForwardRelu(const Tensor& x) const {
  assert(x.cols() == in_features_);
  // One fused graph node; bit-identical to Relu(Forward(x)) forward and
  // backward (see LinearRowBiasRelu in nn/tensor.h).
  return LinearRowBiasRelu(x, weight_, bias_);
}

// --- Embedding ---

Embedding::Embedding(int vocab_size, int dim, util::Rng* rng)
    : dim_(dim),
      table_(RegisterParameter(
          "table", Tensor::Gaussian(vocab_size, dim, 0.1f, rng))) {}

Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return GatherRows(table_, indices);
}

// --- LayerNorm ---

LayerNorm::LayerNorm(int dim)
    : dim_(dim),
      gamma_(RegisterParameter("gamma",
                               Tensor::Full(1, dim, 1.0f,
                                            /*requires_grad=*/true))),
      beta_(RegisterParameter(
          "beta", Tensor::Zeros(1, dim, /*requires_grad=*/true))) {}

Tensor LayerNorm::Forward(const Tensor& x) const {
  assert(x.cols() == dim_);
  // Fused single-node kernel; bit-identical forward to the 8-op chain
  // (RowMean/Sub/Square/Sqrt/Log/Exp/Mul/Add) this used to build.
  return LayerNormRows(x, gamma_, beta_);
}

// --- BatchNorm1d ---

BatchNorm1d::BatchNorm1d(int dim, float momentum)
    : dim_(dim),
      momentum_(momentum),
      gamma_(RegisterParameter("gamma",
                               Tensor::Full(1, dim, 1.0f,
                                            /*requires_grad=*/true))),
      beta_(RegisterParameter(
          "beta", Tensor::Zeros(1, dim, /*requires_grad=*/true))),
      running_mean_(dim, 0.0f),
      running_var_(dim, 1.0f) {}

Tensor BatchNorm1d::Forward(const Tensor& x) {
  assert(x.cols() == dim_);
  if (training() && x.rows() > 1) {
    const int m = x.rows();
    const float* xv = x.value().data();
    // Batch statistics as constants for the running update.
    std::vector<float> mean(dim_, 0.0f), var(dim_, 0.0f);
    for (int r = 0; r < m; ++r) {
      const float* xrow = xv + static_cast<size_t>(r) * dim_;
      for (int c = 0; c < dim_; ++c) mean[c] += xrow[c];
    }
    for (int c = 0; c < dim_; ++c) mean[c] /= static_cast<float>(m);
    for (int r = 0; r < m; ++r) {
      const float* xrow = xv + static_cast<size_t>(r) * dim_;
      for (int c = 0; c < dim_; ++c) {
        const float d = xrow[c] - mean[c];
        var[c] += d * d;
      }
    }
    for (int c = 0; c < dim_; ++c) var[c] /= static_cast<float>(m);
    for (int c = 0; c < dim_; ++c) {
      running_mean_[c] =
          (1 - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] = (1 - momentum_) * running_var_[c] + momentum_ * var[c];
    }
    // Differentiable normalization path (mean/var recomputed with autograd
    // so gradients flow through the statistics as in standard batch norm).
    Tensor col_mean = Tensor::Zeros(1, dim_);
    Tensor col_inv_std = Tensor::Zeros(1, dim_);
    float* mv = col_mean.value().data();
    float* sv = col_inv_std.value().data();
    for (int c = 0; c < dim_; ++c) {
      mv[c] = mean[c];
      sv[c] = 1.0f / std::sqrt(var[c] + 1e-5f);
    }
    const Tensor normalized = Mul(Sub(x, col_mean), col_inv_std);
    return Add(Mul(normalized, gamma_), beta_);
  }
  Tensor col_mean = Tensor::Zeros(1, dim_);
  Tensor col_inv_std = Tensor::Zeros(1, dim_);
  float* mv = col_mean.value().data();
  float* sv = col_inv_std.value().data();
  for (int c = 0; c < dim_; ++c) {
    mv[c] = running_mean_[c];
    sv[c] = 1.0f / std::sqrt(running_var_[c] + 1e-5f);
  }
  const Tensor normalized = Mul(Sub(x, col_mean), col_inv_std);
  return Add(Mul(normalized, gamma_), beta_);
}

// --- MLP ---

Tensor Activate(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

Mlp::Mlp(const std::vector<int>& dims, Activation hidden_activation,
         Activation output_activation, util::Rng* rng)
    : hidden_activation_(hidden_activation),
      output_activation_(output_activation) {
  assert(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(RegisterModule(
        "layer" + std::to_string(i),
        std::make_unique<Linear>(dims[i], dims[i + 1], rng)));
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Activation act = i + 1 < layers_.size() ? hidden_activation_
                                                  : output_activation_;
    // ReLU-activated layers run as one fused Linear+ReLU node — same bits
    // forward and backward, one graph node and two memory passes cheaper
    // per layer (the MLP training hot path).
    if (act == Activation::kRelu) {
      h = layers_[i]->ForwardRelu(h);
    } else {
      h = Activate(layers_[i]->Forward(h), act);
    }
  }
  return h;
}

int Mlp::out_features() const { return layers_.back()->out_features(); }

}  // namespace qpe::nn
