#include "nn/optimizer.h"

#include <cmath>

namespace qpe::nn {

void Optimizer::ZeroGrad() {
  for (Tensor p : params_) p.ZeroGrad();
}

util::Status Optimizer::ValidateState(const OptimizerState& state,
                                      const std::string& expected_kind,
                                      size_t expected_slots) const {
  if (state.kind != expected_kind) {
    return util::FailedPreconditionError(
        "optimizer state kind '" + state.kind + "' does not match '" +
        expected_kind + "'");
  }
  if (state.slots.size() != expected_slots) {
    return util::FailedPreconditionError(
        "optimizer state has " + std::to_string(state.slots.size()) +
        " slot(s), expected " + std::to_string(expected_slots));
  }
  for (size_t slot = 0; slot < state.slots.size(); ++slot) {
    if (state.slots[slot].size() != params_.size()) {
      return util::FailedPreconditionError(
          "optimizer slot " + std::to_string(slot) + " covers " +
          std::to_string(state.slots[slot].size()) + " parameter(s), expected " +
          std::to_string(params_.size()));
    }
    for (size_t i = 0; i < params_.size(); ++i) {
      const size_t expected = static_cast<size_t>(params_[i].numel());
      if (state.slots[slot][i].size() != expected) {
        return util::FailedPreconditionError(
            "optimizer slot " + std::to_string(slot) + " parameter " +
            std::to_string(i) + " has " +
            std::to_string(state.slots[slot][i].size()) +
            " element(s), expected " + std::to_string(expected));
      }
    }
  }
  return util::OkStatus();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0) {
    velocity_.reserve(params_.size());
    for (const Tensor& p : params_) {
      velocity_.emplace_back(p.numel(), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    std::vector<float>& value = p.value();
    const std::vector<float>& grad = p.grad();
    if (momentum_ > 0) {
      std::vector<float>& vel = velocity_[i];
      for (size_t j = 0; j < value.size(); ++j) {
        vel[j] = momentum_ * vel[j] + grad[j];
        value[j] -= lr_ * vel[j];
      }
    } else {
      for (size_t j = 0; j < value.size(); ++j) {
        value[j] -= lr_ * grad[j];
      }
    }
  }
}

OptimizerState Sgd::ExportState() const {
  OptimizerState state;
  state.kind = "sgd";
  if (momentum_ > 0) state.slots = {velocity_};
  return state;
}

util::Status Sgd::ImportState(const OptimizerState& state) {
  const size_t expected_slots = momentum_ > 0 ? 1 : 0;
  if (util::Status s = ValidateState(state, "sgd", expected_slots); !s.ok()) {
    return s;
  }
  if (momentum_ > 0) velocity_ = state.slots[0];
  return util::OkStatus();
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    std::vector<float>& value = p.value();
    const std::vector<float>& grad = p.grad();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

OptimizerState Adam::ExportState() const {
  OptimizerState state;
  state.kind = "adam";
  state.step_count = step_count_;
  state.slots = {m_, v_};
  return state;
}

util::Status Adam::ImportState(const OptimizerState& state) {
  if (util::Status s = ValidateState(state, "adam", 2); !s.ok()) return s;
  step_count_ = static_cast<int>(state.step_count);
  m_ = state.slots[0];
  v_ = state.slots[1];
  return util::OkStatus();
}

}  // namespace qpe::nn
