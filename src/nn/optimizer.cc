#include "nn/optimizer.h"

#include <cmath>

namespace qpe::nn {

void Optimizer::ZeroGrad() {
  for (Tensor p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0) {
    velocity_.reserve(params_.size());
    for (const Tensor& p : params_) {
      velocity_.emplace_back(p.numel(), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    std::vector<float>& value = p.value();
    const std::vector<float>& grad = p.grad();
    if (momentum_ > 0) {
      std::vector<float>& vel = velocity_[i];
      for (size_t j = 0; j < value.size(); ++j) {
        vel[j] = momentum_ * vel[j] + grad[j];
        value[j] -= lr_ * vel[j];
      }
    } else {
      for (size_t j = 0; j < value.size(); ++j) {
        value[j] -= lr_ * grad[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    std::vector<float>& value = p.value();
    const std::vector<float>& grad = p.grad();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace qpe::nn
