#include "nn/optimizer.h"

#include <cmath>

#include "nn/simd.h"

namespace qpe::nn {

void Optimizer::ZeroGrad() {
  for (Tensor p : params_) p.ZeroGrad();
}

util::Status Optimizer::ValidateState(const OptimizerState& state,
                                      const std::string& expected_kind,
                                      size_t expected_slots) const {
  if (state.kind != expected_kind) {
    return util::FailedPreconditionError(
        "optimizer state kind '" + state.kind + "' does not match '" +
        expected_kind + "'");
  }
  if (state.slots.size() != expected_slots) {
    return util::FailedPreconditionError(
        "optimizer state has " + std::to_string(state.slots.size()) +
        " slot(s), expected " + std::to_string(expected_slots));
  }
  for (size_t slot = 0; slot < state.slots.size(); ++slot) {
    if (state.slots[slot].size() != params_.size()) {
      return util::FailedPreconditionError(
          "optimizer slot " + std::to_string(slot) + " covers " +
          std::to_string(state.slots[slot].size()) + " parameter(s), expected " +
          std::to_string(params_.size()));
    }
    for (size_t i = 0; i < params_.size(); ++i) {
      const size_t expected = static_cast<size_t>(params_[i].numel());
      if (state.slots[slot][i].size() != expected) {
        return util::FailedPreconditionError(
            "optimizer slot " + std::to_string(slot) + " parameter " +
            std::to_string(i) + " has " +
            std::to_string(state.slots[slot][i].size()) +
            " element(s), expected " + std::to_string(expected));
      }
    }
  }
  return util::OkStatus();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0) {
    velocity_.reserve(params_.size());
    for (const Tensor& p : params_) {
      velocity_.emplace_back(p.numel(), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    std::vector<float>& value = p.value();
    const std::vector<float>& grad = p.grad();
    if (momentum_ > 0) {
      std::vector<float>& vel = velocity_[i];
      for (size_t j = 0; j < value.size(); ++j) {
        vel[j] = momentum_ * vel[j] + grad[j];
        value[j] -= lr_ * vel[j];
      }
    } else {
      for (size_t j = 0; j < value.size(); ++j) {
        value[j] -= lr_ * grad[j];
      }
    }
  }
}

OptimizerState Sgd::ExportState() const {
  OptimizerState state;
  state.kind = "sgd";
  if (momentum_ > 0) state.slots = {velocity_};
  return state;
}

util::Status Sgd::ImportState(const OptimizerState& state) {
  const size_t expected_slots = momentum_ > 0 ? 1 : 0;
  if (util::Status s = ValidateState(state, "sgd", expected_slots); !s.ok()) {
    return s;
  }
  if (momentum_ > 0) velocity_ = state.slots[0];
  return util::OkStatus();
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  // The fused moments + bias-correction + update pass lives in the kernel
  // dispatch table (AdamStepT): elementwise with correctly rounded ops
  // only, so the vector levels update parameters bit-identically to the
  // scalar loop — training trajectories are unchanged by dispatch level.
  // weight_decay == 0 selects the plain-Adam expression inside the kernel,
  // keeping zero-decay AdamW bitwise identical to Adam.
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor p = params_[i];
    simd::K().adam_step(p.value().data(), p.grad().data(), m_[i].data(),
                        v_[i].data(), p.value().size(), lr_, beta1_, beta2_,
                        eps_, bias1, bias2, weight_decay_);
  }
}

OptimizerState Adam::ExportState() const {
  OptimizerState state;
  state.kind = kind();
  state.step_count = step_count_;
  state.slots = {m_, v_};
  return state;
}

util::Status Adam::ImportState(const OptimizerState& state) {
  if (util::Status s = ValidateState(state, kind(), 2); !s.ok()) return s;
  step_count_ = static_cast<int>(state.step_count);
  m_ = state.slots[0];
  v_ = state.slots[1];
  return util::OkStatus();
}

AdamW::AdamW(std::vector<Tensor> params, float lr, float weight_decay,
             float beta1, float beta2, float eps)
    : Adam(std::move(params), lr, beta1, beta2, eps) {
  weight_decay_ = weight_decay;
}

}  // namespace qpe::nn
