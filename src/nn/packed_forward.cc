#include "nn/packed_forward.h"

#include <cstdlib>
#include <cstring>

namespace qpe::nn {

bool PackedEnvEnabled() {
  const char* s = std::getenv("QPE_PACKED");
  return s == nullptr || std::strcmp(s, "0") != 0;
}

bool HeadBlockEnabled() {
  const char* s = std::getenv("QPE_HEAD_BLOCK");
  return s == nullptr || std::strcmp(s, "0") != 0;
}

void RepackHeadsKT(const float* k, int rows, int dim, int num_heads,
                   float* kbt) {
  const int dh = dim / num_heads;
  // Row-blocked transpose: a column pass over all rows touches one cache
  // line per row, and every head column repeats it, so an unblocked loop
  // streams the whole K block from L2 once per column. Blocking the rows
  // keeps each block's lines in L1 across the dh column passes. Pure data
  // movement — the order never affects the stored bits.
  constexpr int kRowBlock = 256;
  for (int h = 0; h < num_heads; ++h) {
    const float* src = k + h * dh;
    float* dst = kbt + static_cast<size_t>(h) * dh * rows;
    for (int r0 = 0; r0 < rows; r0 += kRowBlock) {
      const int r1 = r0 + kRowBlock < rows ? r0 + kRowBlock : rows;
      for (int c = 0; c < dh; ++c) {
        float* dcol = dst + static_cast<size_t>(c) * rows;
        for (int r = r0; r < r1; ++r) {
          dcol[r] = src[static_cast<size_t>(r) * dim + c];
        }
      }
    }
  }
}

void RepackHeadsVB(const float* v, int rows, int dim, int num_heads,
                   float* vb) {
  const int dh = dim / num_heads;
  for (int h = 0; h < num_heads; ++h) {
    float* dst = vb + static_cast<size_t>(h) * rows * dh;
    const float* src = v + h * dh;
    for (int r = 0; r < rows; ++r) {
      std::memcpy(dst + static_cast<size_t>(r) * dh,
                  src + static_cast<size_t>(r) * dim, sizeof(float) * dh);
    }
  }
}

}  // namespace qpe::nn
