#ifndef QPE_NN_ARENA_H_
#define QPE_NN_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace qpe::nn {

// Allocation telemetry snapshot. Counters aggregate value-buffer traffic
// through TensorArena; GlobalMemoryStats() sums them over every arena the
// process has created (including arenas of exited threads).
struct MemoryStats {
  uint64_t bytes_requested = 0;   // value-buffer bytes requested via arenas
  uint64_t arena_hits = 0;        // buffers served from a recycled pool
  uint64_t arena_misses = 0;      // buffers that needed a fresh allocation
  uint64_t recycled_buffers = 0;  // graph nodes returned to a pool by EndEpoch
  uint64_t released_buffers = 0;  // nodes that escaped their epoch (heap-owned)
  uint64_t epochs = 0;            // EndEpoch calls
  uint64_t peak_arena_bytes = 0;  // high-water bytes held by pools + live nodes
};

// Sum of every arena's counters, process-wide.
MemoryStats GlobalMemoryStats();

// Peak resident set size of the process in bytes (VmHWM from
// /proc/self/status); 0 where unsupported.
uint64_t PeakRssBytes();

// Per-thread, size-bucketed recycler for autograd node storage
// (Tensor::Impl plus its value/grad vectors), with a graph-epoch lifecycle:
//
//   1. While an ArenaScope is active on a thread, every op result and every
//      requires_grad=false factory tensor built on that thread draws its
//      Impl from the thread's arena instead of the heap. Parameters and any
//      tensor created with requires_grad=true never live in an arena.
//   2. When the scope ends (one training shard, one eval item, one serving
//      micro-batch — one "graph epoch"), EndEpoch() walks the epoch's nodes
//      newest-first. Dead nodes are reset and parked in a power-of-two size
//      bucket; the next epoch's Acquire() calls pop them back out, so
//      steady-state training performs zero allocations for graph storage.
//   3. A node still referenced outside the arena (an embedding handed to a
//      caller, a detached value stored somewhere) is *released*: the arena
//      drops its ownership and the node becomes a plain heap object that
//      frees whenever its last reference dies. Escape is therefore always
//      safe — recycling only ever touches nodes nobody else can see.
//
// Determinism: a recycled buffer is handed back either zero-filled or
// sized-but-stale for ops that overwrite every element (Tensor::Fill
// selects which), so arithmetic is bit-identical with the arena on or off.
//
// The newest-first sweep exploits the invariant that an op acquires its
// result after its operands, so a dead graph unravels in one pass: clearing
// a child's parent edges drops the last references to its parents before
// the sweep reaches them. An ordering violation only costs recycling (the
// parent is released to the heap instead), never correctness.
//
// Sanitizer builds (QPE_SANITIZE_BUILD, set by -DQPE_SANITIZE=...) disable
// recycling: every Acquire allocates fresh and EndEpoch really frees, so
// ASan/LSan track each buffer's true lifetime and a would-be
// use-after-recycle surfaces as a hard use-after-free.
//
// An arena is single-threaded (thread_local); only the counters are safe
// to read from other threads (GlobalMemoryStats).
class TensorArena {
 public:
  TensorArena();
  ~TensorArena();
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  // An Impl with `value` sized rows*cols, registered with this epoch.
  // zero_fill=true zeroes the buffer; zero_fill=false only sizes it (stale
  // contents — the caller must overwrite every element).
  std::shared_ptr<Tensor::Impl> Acquire(int rows, int cols, bool zero_fill);

  // Recycles or releases every node acquired since the previous epoch.
  void EndEpoch();

  MemoryStats stats() const;

  // The arena installed on the calling thread (nullptr outside any
  // ArenaScope). Ops consult this through Tensor's factories.
  static TensorArena* Current();

  // The calling thread's lazily-created arena (one per thread, lives until
  // thread exit).
  static TensorArena* ThreadLocal();

  // Process-wide kill switch (also honoured from the QPE_ARENA environment
  // variable: QPE_ARENA=0 disables). When disabled, ArenaScope installs
  // nothing and every tensor takes the plain heap path — the A/B lever for
  // the arena-on ≡ arena-off bit-exactness tests.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  // False in sanitizer builds, where EndEpoch frees instead of recycling.
  static bool RecyclingEnabled();

 private:
  friend class ArenaScope;

  static constexpr int kNumBuckets = 31;  // buffers up to 2^30 floats

  std::vector<std::shared_ptr<Tensor::Impl>> pools_[kNumBuckets];
  std::vector<std::shared_ptr<Tensor::Impl>> live_;  // this epoch, in order

  // Relaxed atomics: mutated only by the owning thread, read by anyone via
  // GlobalMemoryStats().
  std::atomic<uint64_t> bytes_requested_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> recycled_{0};
  std::atomic<uint64_t> released_{0};
  std::atomic<uint64_t> epochs_{0};
  std::atomic<uint64_t> cur_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
};

// RAII graph-epoch boundary. The default constructor installs the calling
// thread's arena as Current() for the scope and runs EndEpoch() on exit;
// nested scopes are no-ops (the outermost scope owns the epoch), so library
// code can declare one defensively without fragmenting a caller's epoch.
// The explicit-arena form always installs (for tests).
class ArenaScope {
 public:
  ArenaScope();
  explicit ArenaScope(TensorArena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  TensorArena* arena_;      // nullptr when this scope installed nothing
  TensorArena* previous_;
};

}  // namespace qpe::nn

#endif  // QPE_NN_ARENA_H_
