#include "nn/transformer.h"

#include <cassert>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace qpe::nn {

// --- BatchLayout ---

util::StatusOr<BatchLayout> BatchLayout::FromLengthsChecked(
    const std::vector<int>& lengths) {
  // Validate everything (including the total) before building the
  // positions column, so a hostile total can't trigger a huge allocation.
  long long total = 0;
  for (size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len <= 0) {
      return util::InvalidArgumentError(
          "BatchLayout::FromLengths: sequence " + std::to_string(s) +
          " has non-positive length " + std::to_string(len));
    }
    total += len;
    if (total > INT_MAX) {
      return util::InvalidArgumentError(
          "BatchLayout::FromLengths: total_rows overflows int at sequence " +
          std::to_string(s) + " (running total " + std::to_string(total) +
          ")");
    }
  }
  BatchLayout layout;
  layout.lengths = lengths;
  layout.offsets.reserve(lengths.size());
  for (const int len : lengths) {
    layout.offsets.push_back(layout.total_rows);
    layout.total_rows += len;
  }
  layout.positions.reserve(layout.total_rows);
  for (const int len : lengths) {
    for (int t = 0; t < len; ++t) layout.positions.push_back(t);
  }
  return layout;
}

BatchLayout BatchLayout::FromLengths(const std::vector<int>& lengths) {
  util::StatusOr<BatchLayout> layout = FromLengthsChecked(lengths);
  if (!layout.ok()) {
    std::fprintf(stderr, "%s\n", layout.status().message().c_str());
    std::abort();
  }
  return std::move(layout.value());
}

// --- MultiHeadSelfAttention ---

MultiHeadSelfAttention::MultiHeadSelfAttention(int dim, int num_heads,
                                               util::Rng* rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  assert(dim % num_heads == 0);
  wq_ = RegisterModule("wq", std::make_unique<Linear>(dim, dim, rng));
  wk_ = RegisterModule("wk", std::make_unique<Linear>(dim, dim, rng));
  wv_ = RegisterModule("wv", std::make_unique<Linear>(dim, dim, rng));
  wo_ = RegisterModule("wo", std::make_unique<Linear>(dim, dim, rng));
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  assert(x.cols() == dim_);
  const Tensor q = wq_->Forward(x);
  const Tensor k = wk_->Forward(x);
  const Tensor v = wv_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // Single sequence = a packed batch of one. Routing through the same
  // fused kernel as ForwardBatch (instead of the per-head
  // MatMul/SoftmaxRows/MatMul chain it replaced) keeps Forward and
  // ForwardBatch bit-identical at EVERY dispatch level: under a vector
  // level the kernel's exp is a polynomial (epsilon contract, see
  // simd_kernels_inl.h), so an op-chain softmax here would diverge from
  // the batched path's. At the scalar level the kernel reproduces the old
  // chain bit for bit, and the op carries a full backward, so training
  // gradients flow exactly as before.
  const Tensor context = MultiHeadAttentionPacked(q, k, v, {0}, {x.rows()},
                                                  num_heads_, scale);
  return wo_->Forward(context);
}

Tensor MultiHeadSelfAttention::ForwardBatch(const Tensor& x,
                                            const BatchLayout& layout) const {
  assert(x.cols() == dim_);
  assert(x.rows() == layout.total_rows);
  // One GEMM per projection for the whole batch — this is where batching
  // amortizes the matmul cost vs. B per-sequence projections.
  const Tensor q = wq_->Forward(x);
  const Tensor k = wk_->Forward(x);
  const Tensor v = wv_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // Keys never cross sequence boundaries inside the fused kernel, so the
  // attention mask is exact by construction; per (sequence, head) block the
  // kernel computes exactly what the single-sequence Forward computes (both
  // go through the same dispatched kernel), but replaces ~8 tensor ops per
  // sequence per head with one op — on short plan sequences the chain's
  // dispatch/allocation overhead would dominate.
  const Tensor context = MultiHeadAttentionPacked(
      q, k, v, layout.offsets, layout.lengths, num_heads_, scale);
  // Output projection, again batched over the packed matrix.
  return wo_->Forward(context);
}

// --- TransformerEncoderLayer ---

TransformerEncoderLayer::TransformerEncoderLayer(int dim, int num_heads,
                                                 int ff_dim, float dropout,
                                                 util::Rng* rng,
                                                 FfActivation activation)
    : dropout_(dropout), activation_(activation) {
  attention_ = RegisterModule(
      "attention", std::make_unique<MultiHeadSelfAttention>(dim, num_heads, rng));
  norm1_ = RegisterModule("norm1", std::make_unique<LayerNorm>(dim));
  norm2_ = RegisterModule("norm2", std::make_unique<LayerNorm>(dim));
  ff1_ = RegisterModule("ff1", std::make_unique<Linear>(dim, ff_dim, rng));
  ff2_ = RegisterModule("ff2", std::make_unique<Linear>(ff_dim, dim, rng));
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x,
                                        util::Rng* dropout_rng) const {
  const bool use_dropout = training() && dropout_rng != nullptr && dropout_ > 0;
  Tensor attended = attention_->Forward(norm1_->Forward(x));
  if (use_dropout) attended = Dropout(attended, dropout_, dropout_rng);
  const Tensor h = Add(x, attended);
  const Tensor pre = ff1_->Forward(norm2_->Forward(h));
  Tensor ff = ff2_->Forward(activation_ == FfActivation::kGelu ? Gelu(pre)
                                                               : Relu(pre));
  if (use_dropout) ff = Dropout(ff, dropout_, dropout_rng);
  return Add(h, ff);
}

Tensor TransformerEncoderLayer::ForwardBatch(const Tensor& x,
                                             const BatchLayout& layout) const {
  const Tensor attended = attention_->ForwardBatch(norm1_->Forward(x), layout);
  const Tensor h = Add(x, attended);
  // Fused bias+activation on the packed matrix: bit-identical to
  // Relu/Gelu(Add(MatMul(h2, W1), b1)) but one kernel pass instead of
  // three ops.
  const Tensor pre = MatMul(norm2_->Forward(h), ff1_->weight());
  const Tensor activated = activation_ == FfActivation::kGelu
                               ? BiasGelu(pre, ff1_->bias())
                               : BiasRelu(pre, ff1_->bias());
  return Add(h, ff2_->Forward(activated));
}

// --- TransformerEncoder ---

TransformerEncoder::TransformerEncoder(int dim, int num_heads, int ff_dim,
                                       int num_layers, int max_len,
                                       float dropout, util::Rng* rng,
                                       FfActivation activation)
    : dim_(dim), max_len_(max_len) {
  positional_ = RegisterParameter(
      "positional", Tensor::Gaussian(max_len, dim, 0.02f, rng));
  for (int i = 0; i < num_layers; ++i) {
    layers_.push_back(
        RegisterModule("layer" + std::to_string(i),
                       std::make_unique<TransformerEncoderLayer>(
                           dim, num_heads, ff_dim, dropout, rng, activation)));
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x,
                                   util::Rng* dropout_rng) const {
  assert(x.cols() == dim_);
  const int t = std::min(x.rows(), max_len_);
  Tensor h = x.rows() <= max_len_ ? x : SliceRows(x, 0, max_len_);
  h = Add(h, SliceRows(positional_, 0, t));
  for (const TransformerEncoderLayer* layer : layers_) {
    h = layer->Forward(h, dropout_rng);
  }
  return h;
}

Tensor TransformerEncoder::ForwardBatch(const Tensor& x,
                                        const BatchLayout& layout) const {
  assert(x.cols() == dim_);
  assert(x.rows() == layout.total_rows);
  // Positional embeddings gathered per packed row: row t of sequence s gets
  // positional_[t], exactly as the single-sequence path adds
  // SliceRows(positional_, 0, T_s). The index column is precomputed once in
  // BatchLayout::FromLengths and shared by every layer-free consumer.
#ifndef NDEBUG
  for (const int len : layout.lengths) assert(len <= max_len_);
#endif
  assert(static_cast<int>(layout.positions.size()) == layout.total_rows);
  Tensor h = Add(x, GatherRows(positional_, layout.positions));
  for (const TransformerEncoderLayer* layer : layers_) {
    h = layer->ForwardBatch(h, layout);
  }
  return h;
}

// --- LSTM ---

Lstm::Lstm(int input_dim, int hidden_dim, util::Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  input_gates_ = RegisterModule(
      "input_gates", std::make_unique<Linear>(input_dim, 4 * hidden_dim, rng));
  hidden_gates_ = RegisterModule(
      "hidden_gates",
      std::make_unique<Linear>(hidden_dim, 4 * hidden_dim, rng));
}

Tensor Lstm::ForwardAll(const Tensor& x) const {
  assert(x.cols() == input_dim_);
  const int t_len = x.rows();
  Tensor h = Tensor::Zeros(1, hidden_dim_);
  Tensor c = Tensor::Zeros(1, hidden_dim_);
  std::vector<Tensor> outputs;
  outputs.reserve(t_len);
  // Precompute the input projections for the whole sequence at once.
  const Tensor gates_x = input_gates_->Forward(x);  // [T, 4H]
  for (int t = 0; t < t_len; ++t) {
    const Tensor gx = SliceRows(gates_x, t, 1);
    const Tensor gates = Add(gx, hidden_gates_->Forward(h));
    const Tensor i = Sigmoid(SliceCols(gates, 0, hidden_dim_));
    const Tensor f = Sigmoid(SliceCols(gates, hidden_dim_, hidden_dim_));
    const Tensor g = Tanh(SliceCols(gates, 2 * hidden_dim_, hidden_dim_));
    const Tensor o = Sigmoid(SliceCols(gates, 3 * hidden_dim_, hidden_dim_));
    c = Add(Mul(f, c), Mul(i, g));
    h = Mul(o, Tanh(c));
    outputs.push_back(h);
  }
  return ConcatRows(outputs);
}

Tensor Lstm::Forward(const Tensor& x) const {
  const Tensor all = ForwardAll(x);
  return SliceRows(all, all.rows() - 1, 1);
}

}  // namespace qpe::nn
