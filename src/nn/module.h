#ifndef QPE_NN_MODULE_H_
#define QPE_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace qpe::nn {

// Base class for neural network building blocks. A module owns parameters
// and submodules; Parameters() flattens the tree (with stable, dotted names
// for serialization).
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its submodules. Served from
  // a cache (tensors are shared handles, so the cached copies alias the
  // live parameters): training loops call this every step via
  // ZeroGrad/optimizers, and rebuilding the dotted-name tree each time
  // dominated small-model step cost.
  std::vector<Tensor> Parameters() const;
  // Parameters with stable dotted path names, e.g. "encoder.layer0.wq".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  int ParameterCount() const;

  // Training mode (affects Dropout and BatchNorm behaviour).
  void SetTraining(bool training);
  bool training() const { return training_; }

  void ZeroGrad();

 protected:
  Module() = default;

  Tensor& RegisterParameter(const std::string& name, Tensor tensor);
  // Registers and returns a submodule; the module keeps ownership.
  template <typename M>
  M* RegisterModule(const std::string& name, std::unique_ptr<M> module) {
    M* raw = module.get();
    submodules_.emplace_back(name, std::move(module));
    param_cache_valid_ = false;
    return raw;
  }

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;
  void CollectParams(std::vector<Tensor>* out) const;
  // The flattened parameter list, built once after construction (both
  // Register* calls invalidate it) and reused by ZeroGrad()/Parameters().
  const std::vector<Tensor>& CachedParameters() const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::unique_ptr<Module>>> submodules_;
  mutable std::vector<Tensor> param_cache_;
  mutable bool param_cache_valid_ = false;
  bool training_ = true;
};

// Fully connected layer: y = x W + b, with Xavier-initialized W.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng* rng);

  Tensor Forward(const Tensor& x) const;
  // Linear + ReLU as one fused graph node (LinearRowBiasRelu): bit-identical
  // to Relu(Forward(x)) forward and backward, one node and two memory
  // passes cheaper. Mlp routes its ReLU-activated layers through this.
  Tensor ForwardRelu(const Tensor& x) const;
  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  // Parameter access for callers fusing the bias add into a follow-on
  // activation kernel (BiasRelu/BiasGelu): y = act(MatMul(x, weight()) + bias).
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [1, out]
};

// Embedding table: rows indexed by token id.
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, util::Rng* rng);

  // indices -> [len(indices), dim]
  Tensor Forward(const std::vector<int>& indices) const;
  int dim() const { return dim_; }

 private:
  int dim_;
  Tensor table_;  // [vocab, dim]
};

// Layer normalization over the feature (column) dimension of each row.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  Tensor Forward(const Tensor& x) const;

 private:
  int dim_;
  Tensor gamma_;  // [1, dim]
  Tensor beta_;   // [1, dim]
};

// 1-D batch normalization over the batch (row) dimension, with running
// statistics for inference. The paper's classifier uses this when fusing
// structure and performance embeddings (§5.3).
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(int dim, float momentum = 0.1f);

  Tensor Forward(const Tensor& x);

 private:
  int dim_;
  float momentum_;
  Tensor gamma_;
  Tensor beta_;
  std::vector<float> running_mean_;
  std::vector<float> running_var_;
};

// Activation selection for configurable MLPs.
enum class Activation { kRelu, kSigmoid, kTanh, kNone };

Tensor Activate(const Tensor& x, Activation activation);

// Multi-layer perceptron: Linear(+activation) stack. `dims` is
// {in, hidden..., out}; the final layer gets `output_activation`.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, Activation hidden_activation,
      Activation output_activation, util::Rng* rng);

  Tensor Forward(const Tensor& x) const;
  int out_features() const;

 private:
  std::vector<Linear*> layers_;
  Activation hidden_activation_;
  Activation output_activation_;
};

}  // namespace qpe::nn

#endif  // QPE_NN_MODULE_H_
