#ifndef QPE_NN_TRANSFORMER_H_
#define QPE_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"

namespace qpe::nn {

// Multi-head self-attention (Vaswani et al. 2017, as used by the paper's
// structure encoder §3.1.2). Operates on one sequence: x is [T, d].
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int dim, int num_heads, util::Rng* rng);

  Tensor Forward(const Tensor& x) const;  // [T, d] -> [T, d]

  int dim() const { return dim_; }
  int num_heads() const { return num_heads_; }

 private:
  int dim_;
  int num_heads_;
  int head_dim_;
  Linear* wq_;
  Linear* wk_;
  Linear* wv_;
  Linear* wo_;
};

// One pre-norm transformer encoder layer: self-attention and a
// position-wise feed-forward block, each with a residual connection.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int dim, int num_heads, int ff_dim, float dropout,
                          util::Rng* rng);

  // [T, d] -> [T, d]. `dropout_rng` may be null to disable dropout (eval).
  Tensor Forward(const Tensor& x, util::Rng* dropout_rng) const;

 private:
  MultiHeadSelfAttention* attention_;
  LayerNorm* norm1_;
  LayerNorm* norm2_;
  Linear* ff1_;
  Linear* ff2_;
  float dropout_;
};

// Stack of encoder layers with learned positional embeddings.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int dim, int num_heads, int ff_dim, int num_layers,
                     int max_len, float dropout, util::Rng* rng);

  // [T, d] token embeddings -> [T, d] contextualized embeddings.
  Tensor Forward(const Tensor& x, util::Rng* dropout_rng) const;

  int dim() const { return dim_; }

 private:
  int dim_;
  int max_len_;
  Tensor positional_;  // [max_len, d]
  std::vector<TransformerEncoderLayer*> layers_;
};

// Single-layer LSTM over a sequence; returns the final hidden state (and
// optionally all hidden states). Used by the LSTM-PPSR baseline (§6.1).
class Lstm : public Module {
 public:
  Lstm(int input_dim, int hidden_dim, util::Rng* rng);

  // [T, input_dim] -> final hidden state [1, hidden_dim].
  Tensor Forward(const Tensor& x) const;
  // [T, input_dim] -> all hidden states [T, hidden_dim].
  Tensor ForwardAll(const Tensor& x) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Linear* input_gates_;   // x_t -> 4*hidden (i, f, g, o)
  Linear* hidden_gates_;  // h_{t-1} -> 4*hidden
};

}  // namespace qpe::nn

#endif  // QPE_NN_TRANSFORMER_H_
