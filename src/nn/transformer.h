#ifndef QPE_NN_TRANSFORMER_H_
#define QPE_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace qpe::nn {

// Row layout of a packed (ragged) batch: B variable-length sequences
// concatenated along the row axis into one [sum(lengths), d] matrix.
// Sequence s occupies rows [offsets[s], offsets[s] + lengths[s]).
//
// This is the batch representation of the serving path: all position-wise
// work (projections, layer norms, feed-forward) runs as a single GEMM over
// the packed matrix — one big matmul instead of B tiny ones — while
// attention operates on each sequence's row range, so no sequence ever
// attends across a batch boundary. Packing is the exact-arithmetic
// equivalent of a padded [B, L] batch with a padding mask: there are no
// padding rows to mask (and no FLOPs wasted on them).
// The layout is struct-of-arrays: each member is a contiguous column the
// kernels index directly (offsets/lengths feed the packed attention kernel,
// positions feeds the positional-embedding gather), with nothing
// interleaved per sequence.
struct BatchLayout {
  std::vector<int> offsets;    // first packed row of each sequence
  std::vector<int> lengths;    // rows (tokens) of each sequence
  std::vector<int> positions;  // within-sequence index of each packed row
  int total_rows = 0;          // sum of lengths

  // Builds the layout, aborting with a message on invalid input (the
  // in-process callers all construct lengths from plans they just
  // linearized, so a bad length here is a programming error).
  static BatchLayout FromLengths(const std::vector<int>& lengths);
  // Validating variant for lengths that cross a trust boundary (network
  // daemon, file replay): rejects non-positive lengths and total_rows
  // overflow with a descriptive error instead of building a bogus layout.
  // Validation happens before any allocation proportional to total_rows.
  static util::StatusOr<BatchLayout> FromLengthsChecked(
      const std::vector<int>& lengths);
  int size() const { return static_cast<int>(lengths.size()); }
};

// Feed-forward activation of a transformer encoder layer. kRelu is the
// repo default (bit-compatible with all existing checkpoints); kGelu is
// the BERT-style variant, served by the fused BiasGelu kernel.
enum class FfActivation { kRelu, kGelu };

// Multi-head self-attention (Vaswani et al. 2017, as used by the paper's
// structure encoder §3.1.2). Operates on one sequence: x is [T, d].
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int dim, int num_heads, util::Rng* rng);

  Tensor Forward(const Tensor& x) const;  // [T, d] -> [T, d]

  // Packed-batch forward: x is [layout.total_rows, d]. The q/k/v/output
  // projections are batched across all sequences in single GEMMs; scores
  // and the masked softmax stay within each sequence's row range.
  // Bit-identical to running Forward on each sequence separately.
  Tensor ForwardBatch(const Tensor& x, const BatchLayout& layout) const;

  int dim() const { return dim_; }
  int num_heads() const { return num_heads_; }

 private:
  int dim_;
  int num_heads_;
  int head_dim_;
  Linear* wq_;
  Linear* wk_;
  Linear* wv_;
  Linear* wo_;
};

// One pre-norm transformer encoder layer: self-attention and a
// position-wise feed-forward block, each with a residual connection.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int dim, int num_heads, int ff_dim, float dropout,
                          util::Rng* rng,
                          FfActivation activation = FfActivation::kRelu);

  // [T, d] -> [T, d]. `dropout_rng` may be null to disable dropout (eval).
  Tensor Forward(const Tensor& x, util::Rng* dropout_rng) const;

  // Packed-batch forward (inference: no dropout). The feed-forward block
  // runs through the fused BiasRelu/BiasGelu kernel on the packed matrix.
  // Bit-identical to Forward(x_s, nullptr) per sequence.
  Tensor ForwardBatch(const Tensor& x, const BatchLayout& layout) const;

 private:
  MultiHeadSelfAttention* attention_;
  LayerNorm* norm1_;
  LayerNorm* norm2_;
  Linear* ff1_;
  Linear* ff2_;
  float dropout_;
  FfActivation activation_;
};

// Stack of encoder layers with learned positional embeddings.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int dim, int num_heads, int ff_dim, int num_layers,
                     int max_len, float dropout, util::Rng* rng,
                     FfActivation activation = FfActivation::kRelu);

  // [T, d] token embeddings -> [T, d] contextualized embeddings.
  Tensor Forward(const Tensor& x, util::Rng* dropout_rng) const;

  // Packed-batch forward (inference). Every sequence length must already
  // be <= max_len (the caller truncates before packing). Bit-identical to
  // Forward(x_s, nullptr) per sequence.
  Tensor ForwardBatch(const Tensor& x, const BatchLayout& layout) const;

  int dim() const { return dim_; }

 private:
  int dim_;
  int max_len_;
  Tensor positional_;  // [max_len, d]
  std::vector<TransformerEncoderLayer*> layers_;
};

// Single-layer LSTM over a sequence; returns the final hidden state (and
// optionally all hidden states). Used by the LSTM-PPSR baseline (§6.1).
class Lstm : public Module {
 public:
  Lstm(int input_dim, int hidden_dim, util::Rng* rng);

  // [T, input_dim] -> final hidden state [1, hidden_dim].
  Tensor Forward(const Tensor& x) const;
  // [T, input_dim] -> all hidden states [T, hidden_dim].
  Tensor ForwardAll(const Tensor& x) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Linear* input_gates_;   // x_t -> 4*hidden (i, f, g, o)
  Linear* hidden_gates_;  // h_{t-1} -> 4*hidden
};

}  // namespace qpe::nn

#endif  // QPE_NN_TRANSFORMER_H_
