// AVX2 kernel table. Compiled only on x86-64, with -mavx2 (and
// -ffp-contract=off so the compiler cannot contract the explicit
// mul+add pairs into FMA — contraction would break the bit-exactness of
// the vector lanes against the scalar reference). The functions are only
// ever called through the dispatch table after __builtin_cpu_supports
// confirmed AVX2 at runtime, so this TU's codegen never executes on a
// pre-AVX2 machine.

#if defined(QPE_HAVE_AVX2)

#include <immintrin.h>

#include "nn/simd.h"
#include "nn/simd_kernels_inl.h"

namespace qpe::nn::simd {

namespace {

struct Avx2Ops {
  static constexpr int kLanes = 8;
  using Vec = __m256;
  static Vec Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, Vec v) { _mm256_storeu_ps(p, v); }
  static Vec Broadcast(float x) { return _mm256_set1_ps(x); }
  static Vec Add(Vec a, Vec b) { return _mm256_add_ps(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm256_sub_ps(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_ps(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm256_div_ps(a, b); }
  // max(a, b) with b preferred on unordered — matches std::max's
  // (a < b ? b : a) selection exactly on the finite inputs the kernels see.
  static Vec Max(Vec a, Vec b) { return _mm256_max_ps(b, a); }
  static float HMax(Vec v) {
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 m = _mm_max_ps(lo, hi);
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    return _mm_cvtss_f32(m);
  }
  // 8-lane expf: Cephes-style range reduction (x = n*ln2 + r, ln2 split
  // into a high part and a correction so r stays accurate) and a degree-5
  // polynomial on r, then scale by 2^n via exponent-field arithmetic.
  // Max error ~2 ulp against libm expf — this is the one kernel op allowed
  // to diverge from the scalar reference (epsilon contract, see
  // simd_kernels_inl.h); vectorizing exp is where the attention-softmax
  // speedup comes from. Inputs are clamped to the finite float range of
  // expf, so softmax's x - max <= 0 arguments never overflow and deeply
  // negative scores saturate to a denormal instead of 0 (harmless: they
  // vanish in the normalizing division).
  static Vec Exp(Vec x) {
    x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-87.3365478515625f)),
                      _mm256_set1_ps(88.3762626647949f));
    const Vec n = _mm256_round_ps(
        _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    Vec r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(0.693359375f)));
    r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(-2.12194440e-4f)));
    Vec p = _mm256_set1_ps(1.9875691500e-4f);
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.3981999507e-3f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(8.3334519073e-3f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(4.1665795894e-2f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.6666665459e-1f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(5.0000001201e-1f));
    p = _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, r), r),
                      _mm256_add_ps(r, _mm256_set1_ps(1.0f)));
    const __m256i pow2 = _mm256_slli_epi32(
        _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127)), 23);
    return _mm256_mul_ps(p, _mm256_castsi256_ps(pow2));
  }
};

void Avx2MatMulForwardRange(const float* a, const float* b, float* out, int i0,
                            int i1, int k, int n) {
  MatMulForwardRangeT<Avx2Ops>(a, b, out, i0, i1, k, n);
}

void Avx2BiasRelu(const float* a, const float* bias, float* out, int m,
                  int n) {
  BiasReluT<Avx2Ops>(a, bias, out, m, n);
}

void Avx2LayerNormRows(const float* x, const float* gamma, const float* beta,
                       float* out, int m, int n, float invn) {
  LayerNormRowsT<Avx2Ops>(x, gamma, beta, out, m, n, invn);
}

void Avx2SoftmaxRowsMasked(const float* a, float* out, const int* valid,
                           int m, int n) {
  SoftmaxRowsMaskedT<Avx2Ops>(a, out, valid, m, n);
}

void Avx2AttentionForwardPacked(const float* q, const float* k, const float* v,
                                float* out, const int* offsets,
                                const int* lengths, int num_seqs,
                                int num_heads, int dim, float scale) {
  AttentionForwardPackedT<Avx2Ops>(q, k, v, out, offsets, lengths, num_seqs,
                                   num_heads, dim, scale);
}

// int8 dot products, 16 elements per step: sign-extend both operands to
// int16 and _mm256_madd_epi16 into int32 pairs. Every intermediate fits
// comfortably (|a*b| <= 127*127, summed pairwise into int32), so the
// accumulation is exact and bit-identical to the scalar reference.
void Avx2Int8Gemm(const int8_t* a, const int8_t* b, float* c, int m, int k,
                  int n, const float* a_scale, const float* b_scale,
                  const float* bias) {
  const int kv = (k / 16) * 16;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = b + static_cast<size_t>(j) * k;
      __m256i acc = _mm256_setzero_si256();
      int p = 0;
      for (; p < kv; p += 16) {
        const __m128i av =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + p));
        const __m128i bv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + p));
        const __m256i a16 = _mm256_cvtepi8_epi16(av);
        const __m256i b16 = _mm256_cvtepi8_epi16(bv);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
      }
      // Horizontal sum of the 8 int32 partials.
      __m128i lo = _mm256_castsi256_si128(acc);
      __m128i hi = _mm256_extracti128_si256(acc, 1);
      __m128i s = _mm_add_epi32(lo, hi);
      s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
      s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
      int32_t total = _mm_cvtsi128_si32(s);
      for (; p < k; ++p) {
        total += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      float y = static_cast<float>(total) * as * b_scale[j];
      if (bias != nullptr) y += bias[j];
      crow[j] = y;
    }
  }
}

const Kernels kAvx2Table = {
    Level::kAvx2,
    "avx2",
    &Avx2MatMulForwardRange,
    &Avx2BiasRelu,
    &Avx2LayerNormRows,
    &Avx2SoftmaxRowsMasked,
    &Avx2AttentionForwardPacked,
    &Avx2Int8Gemm,
};

}  // namespace

const Kernels* GetAvx2Kernels() { return &kAvx2Table; }

}  // namespace qpe::nn::simd

#endif  // QPE_HAVE_AVX2
