// AVX2 kernel table. Compiled only on x86-64, with -mavx2 (and
// -ffp-contract=off so the compiler cannot contract the explicit
// mul+add pairs into FMA — contraction would break the bit-exactness of
// the vector lanes against the scalar reference). The functions are only
// ever called through the dispatch table after __builtin_cpu_supports
// confirmed AVX2 at runtime, so this TU's codegen never executes on a
// pre-AVX2 machine.

#if defined(QPE_HAVE_AVX2)

#include <immintrin.h>

#include "nn/simd.h"
#include "nn/simd_kernels_inl.h"

namespace qpe::nn::simd {

namespace {

struct Avx2Ops {
  static constexpr int kLanes = 8;
  using Vec = __m256;
  static Vec Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, Vec v) { _mm256_storeu_ps(p, v); }
  static Vec Broadcast(float x) { return _mm256_set1_ps(x); }
  static Vec Add(Vec a, Vec b) { return _mm256_add_ps(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm256_sub_ps(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_ps(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm256_div_ps(a, b); }
  // max(a, b) with b preferred on unordered — matches std::max's
  // (a < b ? b : a) selection exactly on the finite inputs the kernels see.
  static Vec Max(Vec a, Vec b) { return _mm256_max_ps(b, a); }
  // Correctly rounded per IEEE 754, same bits as scalar sqrtf per lane.
  static Vec Sqrt(Vec v) { return _mm256_sqrt_ps(v); }
  // All-ones mask where v > 0 (quiet compare: NaN lanes gate off), and a
  // bitwise AND — the pair turns BiasActBackwardT's branch into a mask.
  static Vec GtZero(Vec v) {
    return _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_GT_OQ);
  }
  static Vec And(Vec a, Vec b) { return _mm256_and_ps(a, b); }
  static float HMax(Vec v) {
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 m = _mm_max_ps(lo, hi);
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    return _mm_cvtss_f32(m);
  }
  // 8-lane expf: Cephes-style range reduction (x = n*ln2 + r, ln2 split
  // into a high part and a correction so r stays accurate) and a degree-5
  // polynomial on r, then scale by 2^n via exponent-field arithmetic.
  // Max error ~2 ulp against libm expf — this is the one kernel op allowed
  // to diverge from the scalar reference (epsilon contract, see
  // simd_kernels_inl.h); vectorizing exp is where the attention-softmax
  // speedup comes from. Inputs are clamped to the finite float range of
  // expf, so softmax's x - max <= 0 arguments never overflow and deeply
  // negative scores saturate to a denormal instead of 0 (harmless: they
  // vanish in the normalizing division).
  static Vec Exp(Vec x) {
    x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-87.3365478515625f)),
                      _mm256_set1_ps(88.3762626647949f));
    const Vec n = _mm256_round_ps(
        _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    Vec r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(0.693359375f)));
    r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(-2.12194440e-4f)));
    Vec p = _mm256_set1_ps(1.9875691500e-4f);
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.3981999507e-3f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(8.3334519073e-3f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(4.1665795894e-2f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.6666665459e-1f));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(5.0000001201e-1f));
    p = _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, r), r),
                      _mm256_add_ps(r, _mm256_set1_ps(1.0f)));
    const __m256i pow2 = _mm256_slli_epi32(
        _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127)), 23);
    return _mm256_mul_ps(p, _mm256_castsi256_ps(pow2));
  }
};

void Avx2MatMulForwardRange(const float* a, const float* b, float* out, int i0,
                            int i1, int k, int n) {
  MatMulForwardRangeT<Avx2Ops>(a, b, out, i0, i1, k, n);
}

void Avx2BiasRelu(const float* a, const float* bias, float* out, int m,
                  int n) {
  BiasReluT<Avx2Ops>(a, bias, out, m, n);
}

void Avx2LayerNormRows(const float* x, const float* gamma, const float* beta,
                       float* out, int m, int n, float invn) {
  LayerNormRowsT<Avx2Ops>(x, gamma, beta, out, m, n, invn);
}

void Avx2SoftmaxRowsMasked(const float* a, float* out, const int* valid,
                           int m, int n) {
  SoftmaxRowsMaskedT<Avx2Ops>(a, out, valid, m, n);
}

void Avx2AttentionForwardPacked(const float* q, const float* k, const float* v,
                                float* out, const int* offsets,
                                const int* lengths, int num_seqs,
                                int num_heads, int dim, float scale) {
  AttentionForwardPackedT<Avx2Ops>(q, k, v, out, offsets, lengths, num_seqs,
                                   num_heads, dim, scale);
}

// int8 dot products, 16 elements per step: sign-extend both operands to
// int16 and _mm256_madd_epi16 into int32 pairs. Every intermediate fits
// comfortably (|a*b| <= 127*127, summed pairwise into int32), so the
// accumulation is exact and bit-identical to the scalar reference.
void Avx2Int8Gemm(const int8_t* a, const int8_t* b, float* c, int m, int k,
                  int n, const float* a_scale, const float* b_scale,
                  const float* bias) {
  const int kv = (k / 16) * 16;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = b + static_cast<size_t>(j) * k;
      __m256i acc = _mm256_setzero_si256();
      int p = 0;
      for (; p < kv; p += 16) {
        const __m128i av =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + p));
        const __m128i bv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + p));
        const __m256i a16 = _mm256_cvtepi8_epi16(av);
        const __m256i b16 = _mm256_cvtepi8_epi16(bv);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
      }
      // Horizontal sum of the 8 int32 partials.
      __m128i lo = _mm256_castsi256_si128(acc);
      __m128i hi = _mm256_extracti128_si256(acc, 1);
      __m128i s = _mm_add_epi32(lo, hi);
      s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
      s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
      int32_t total = _mm_cvtsi128_si32(s);
      for (; p < k; ++p) {
        total += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      float y = static_cast<float>(total) * as * b_scale[j];
      if (bias != nullptr) y += bias[j];
      crow[j] = y;
    }
  }
}

void Avx2EmbedGatherAdd(const float* e1, const float* e2, const float* e3,
                        const float* pos, const int* ids1, const int* ids2,
                        const int* ids3, const int* positions, float* out,
                        int rows, int d1, int d2, int d3) {
  EmbedGatherAddT<Avx2Ops>(e1, e2, e3, pos, ids1, ids2, ids3, positions, out,
                           rows, d1, d2, d3);
}

void Avx2AttentionForwardBlocked(const float* q, const float* kbt,
                                 const float* vb, float* out,
                                 const int* offsets, const int* lengths,
                                 int num_seqs, int num_heads, int total_rows,
                                 int dim, float scale, float* probs) {
  AttentionForwardBlockedT<Avx2Ops>(q, kbt, vb, out, offsets, lengths,
                                    num_seqs, num_heads, total_rows, dim,
                                    scale, probs);
}

// Packed-tile int8 GEMM. The tile layout (kInt8TileN = 4 channels x
// kInt8TileK = 16 k-steps, pre-sign-extended to int16 — see
// PackInt8WeightTiles) lets one sign-extended activation vector feed four
// madd_epi16 against four direct 256-bit weight loads — versus
// Avx2Int8Gemm's one madd plus a full horizontal sum per (i, j), and with
// no cvtepi8_epi16 on the weight side at all (the widening happened once
// at pack time; inline it was 4 of the 5 shuffles per k-block and capped
// the kernel at roughly fp32 speed). The four int32 accumulators are
// folded with two hadds at tile end, amortizing the horizontal reduction
// across four output channels, and every weight byte is a sequential
// read. Integer accumulation is exact in any order, so the result is
// bit-identical to Int8GemmPackedRef and to int8_gemm on the unpacked
// operands.
void Avx2Int8GemmPacked(const int8_t* a, const int16_t* bp, float* c, int m,
                        int k, int n, const float* a_scale,
                        const float* b_scale, const float* bias) {
  const int kp = Int8PackedKPad(k);
  const int kb = kp / kInt8TileK;
  const int tiles = (n + kInt8TileN - 1) / kInt8TileN;
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * kp;
    float* crow = c + static_cast<size_t>(i) * n;
    const float as = a_scale[i];
    for (int t = 0; t < tiles; ++t) {
      const int16_t* btile =
          bp + static_cast<size_t>(t) * kb * (kInt8TileN * kInt8TileK);
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (int b = 0; b < kb; ++b) {
        const __m256i a16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(arow + b * kInt8TileK)));
        const int16_t* bb =
            btile + static_cast<size_t>(b) * (kInt8TileN * kInt8TileK);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(a16, _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(
                                                 bb))));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(a16, _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(
                                                 bb + kInt8TileK))));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(a16, _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(
                                                 bb + 2 * kInt8TileK))));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(a16, _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(
                                                 bb + 3 * kInt8TileK))));
      }
      // hadd twice folds the four 8-lane accumulators into one vector of
      // [sum0, sum1, sum2, sum3] per 128-bit half; adding the halves gives
      // the four channel totals.
      const __m256i t0 = _mm256_hadd_epi32(acc0, acc1);
      const __m256i t1 = _mm256_hadd_epi32(acc2, acc3);
      const __m256i t2 = _mm256_hadd_epi32(t0, t1);
      const __m128i sums = _mm_add_epi32(_mm256_castsi256_si128(t2),
                                         _mm256_extracti128_si256(t2, 1));
      const int j0 = t * kInt8TileN;
      if (n - j0 >= kInt8TileN) {
        // Full tile: dequantize all four channels at once. Identical IEEE
        // ops per lane — int32->float convert, then (total * as) *
        // b_scale[j] + bias[j] in the scalar epilogue's order — so the
        // bits match the scalar tail exactly.
        __m128 y = _mm_mul_ps(_mm_mul_ps(_mm_cvtepi32_ps(sums),
                                         _mm_set1_ps(as)),
                              _mm_loadu_ps(b_scale + j0));
        if (bias != nullptr) y = _mm_add_ps(y, _mm_loadu_ps(bias + j0));
        _mm_storeu_ps(crow + j0, y);
      } else {
        alignas(16) int32_t acc[kInt8TileN];
        _mm_store_si128(reinterpret_cast<__m128i*>(acc), sums);
        const int jmax = n - j0;
        for (int ch = 0; ch < jmax; ++ch) {
          const int j = j0 + ch;
          float y = static_cast<float>(acc[ch]) * as * b_scale[j];
          if (bias != nullptr) y += bias[j];
          crow[j] = y;
        }
      }
    }
  }
}

// 8-lane quantize: the exact trunc(t + copysign(0.5, t)) sequence of
// QuantizeOneRef, every step an exact IEEE op, so each lane produces the
// same int8 the scalar reference does.
void Avx2QuantizeBuffer(const float* x, int n, float inv_scale, int8_t* out) {
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256 sign = _mm256_set1_ps(-0.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 hi = _mm256_set1_ps(127.0f);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(_mm256_loadu_ps(x + i), vs);
    const __m256 h = _mm256_or_ps(_mm256_and_ps(t, sign), half);
    __m256 r = _mm256_round_ps(_mm256_add_ps(t, h),
                               _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    r = _mm256_max_ps(_mm256_min_ps(r, hi), lo);
    const __m256i q32 = _mm256_cvtps_epi32(r);
    const __m128i q16 = _mm_packs_epi32(_mm256_castsi256_si128(q32),
                                        _mm256_extracti128_si256(q32, 1));
    const __m128i q8 = _mm_packs_epi16(q16, q16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), q8);
  }
  for (; i < n; ++i) out[i] = QuantizeOneRef(x[i], inv_scale);
}

void Avx2LinearBiasAct(const float* a, const float* b, const float* bias,
                       float* out, int m, int k, int n, int relu) {
  LinearBiasActT<Avx2Ops>(a, b, bias, out, m, k, n, relu);
}

void Avx2AddRows(float* dst, const float* src, size_t n) {
  AddRowsT<Avx2Ops>(dst, src, n);
}

void Avx2MatMulBackwardA(const float* og, const float* bv, float* ag, int i0,
                         int i1, int k, int n) {
  MatMulBackwardAT<Avx2Ops>(og, bv, ag, i0, i1, k, n);
}

void Avx2MatMulBackwardB(const float* av, const float* og, float* bg, int p0,
                         int p1, int m, int k, int n) {
  MatMulBackwardBT<Avx2Ops>(av, og, bg, p0, p1, m, k, n);
}

void Avx2BiasActBackward(const float* ov, const float* og, float* ag,
                         float* bg, int m, int n) {
  BiasActBackwardT<Avx2Ops>(ov, og, ag, bg, m, n);
}

void Avx2LayerNormRowsBackward(const float* xv, const float* gv,
                               const float* og, float* xg, float* gg,
                               float* bg, int m, int n, float invn) {
  LayerNormRowsBackwardT<Avx2Ops>(xv, gv, og, xg, gg, bg, m, n, invn);
}

void Avx2SoftmaxRowsMaskedBackward(const float* yv, const float* gy,
                                   float* gx, const int* valid, int m, int n) {
  SoftmaxRowsMaskedBackwardT<Avx2Ops>(yv, gy, gx, valid, m, n);
}

void Avx2AttentionBackwardPacked(const float* qv, const float* kv,
                                 const float* vv, const float* og, float* qg,
                                 float* kg, float* vg, const int* offsets,
                                 const int* lengths, int num_seqs,
                                 int num_heads, int dim, float scale) {
  AttentionBackwardPackedT<Avx2Ops>(qv, kv, vv, og, qg, kg, vg, offsets,
                                    lengths, num_seqs, num_heads, dim, scale);
}

void Avx2AdamStep(float* value, const float* grad, float* m, float* v,
                  size_t n, float lr, float beta1, float beta2, float eps,
                  float bias1, float bias2, float weight_decay) {
  AdamStepT<Avx2Ops>(value, grad, m, v, n, lr, beta1, beta2, eps, bias1,
                     bias2, weight_decay);
}

const Kernels kAvx2Table = {
    Level::kAvx2,
    "avx2",
    &Avx2MatMulForwardRange,
    &Avx2BiasRelu,
    &Avx2LayerNormRows,
    &Avx2SoftmaxRowsMasked,
    &Avx2AttentionForwardPacked,
    &Avx2Int8Gemm,
    &Avx2EmbedGatherAdd,
    &Avx2AttentionForwardBlocked,
    &Avx2Int8GemmPacked,
    &Avx2QuantizeBuffer,
    &Avx2LinearBiasAct,
    &Avx2AddRows,
    &Avx2MatMulBackwardA,
    &Avx2MatMulBackwardB,
    &Avx2BiasActBackward,
    &Avx2LayerNormRowsBackward,
    &Avx2SoftmaxRowsMaskedBackward,
    &Avx2AttentionBackwardPacked,
    &Avx2AdamStep,
};

}  // namespace

const Kernels* GetAvx2Kernels() { return &kAvx2Table; }

}  // namespace qpe::nn::simd

#endif  // QPE_HAVE_AVX2
