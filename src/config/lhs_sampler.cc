#include "config/lhs_sampler.h"

namespace qpe::config {

std::vector<DbConfig> LhsSampler::Sample(int n) {
  std::vector<DbConfig> configs(n);
  const auto& table = KnobTable();
  for (int k = 0; k < kNumKnobs; ++k) {
    const KnobInfo& info = table[k];
    const double stratum_width = (info.max_value - info.min_value) / n;
    const std::vector<int> perm = rng_.Permutation(n);
    for (int i = 0; i < n; ++i) {
      const double lo = info.min_value + perm[i] * stratum_width;
      configs[i].Set(static_cast<Knob>(k), lo + rng_.Uniform() * stratum_width);
    }
  }
  return configs;
}

std::vector<DbConfig> LhsSampler::SampleUniform(int n) {
  std::vector<DbConfig> configs(n);
  const auto& table = KnobTable();
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < kNumKnobs; ++k) {
      const KnobInfo& info = table[k];
      configs[i].Set(static_cast<Knob>(k),
                     rng_.Uniform(info.min_value, info.max_value));
    }
  }
  return configs;
}

}  // namespace qpe::config
