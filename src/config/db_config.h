#ifndef QPE_CONFIG_DB_CONFIG_H_
#define QPE_CONFIG_DB_CONFIG_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace qpe::config {

// The 13 PostgreSQL configuration knobs the paper samples with Latin
// Hypercube Sampling (paper Table 5). Order here is the canonical feature
// order everywhere in the library.
enum class Knob : int {
  kBgwriterDelay = 0,
  kBgwriterLruMaxpages,
  kCheckpointTimeout,
  kDeadlockTimeout,
  kDefaultStatisticsTarget,
  kEffectiveCacheSize,
  kEffectiveIoConcurrency,
  kMaintenanceWorkMem,
  kMaxStackDepth,
  kRandomPageCost,
  kSharedBuffers,
  kWalBuffers,
  kWorkMem,
};

inline constexpr int kNumKnobs = 13;

// Static metadata for one knob: name, unit, and the sampling range. The
// ranges are reverse-engineered from the paper's Table 5 (5th/95th
// percentiles of the generated settings), widened slightly so that the
// published percentiles fall inside.
struct KnobInfo {
  const char* name;
  const char* unit;
  double min_value;
  double max_value;
  bool log_scale_feature;  // whether downstream models add log(value) too
};

// Metadata table indexed by static_cast<int>(Knob).
const std::array<KnobInfo, kNumKnobs>& KnobTable();

const KnobInfo& GetKnobInfo(Knob knob);

// A concrete database configuration: one value per knob.
class DbConfig {
 public:
  // Default-constructs with every knob at the midpoint of its range.
  DbConfig();

  double Get(Knob knob) const { return values_[static_cast<int>(knob)]; }
  void Set(Knob knob, double value) { values_[static_cast<int>(knob)] = value; }

  // Raw values in canonical knob order.
  const std::array<double, kNumKnobs>& values() const { return values_; }

  // Feature vector for learned models: raw values followed by log1p-scaled
  // values for knobs flagged log_scale_feature (paper §4: "scaling each
  // database settings with logarithmic function and use them as added
  // features along with the real numbers").
  std::vector<double> ToFeatures() const;

  static int FeatureDim();

  std::string DebugString() const;

 private:
  std::array<double, kNumKnobs> values_;
};

}  // namespace qpe::config

#endif  // QPE_CONFIG_DB_CONFIG_H_
