#ifndef QPE_CONFIG_LHS_SAMPLER_H_
#define QPE_CONFIG_LHS_SAMPLER_H_

#include <vector>

#include "config/db_config.h"
#include "util/rng.h"

namespace qpe::config {

// Latin Hypercube Sampling over the knob ranges (paper §4.1, following
// McKay et al. and Audze & Eglajs as in [2, 19]). For n samples, each knob's
// range is divided into n equal strata; each stratum is used exactly once
// per knob, with strata assignments independently permuted across knobs.
class LhsSampler {
 public:
  explicit LhsSampler(util::Rng rng) : rng_(rng) {}

  // Generates `n` configurations covering each knob range uniformly.
  std::vector<DbConfig> Sample(int n);

  // Generates `n` fully independent uniform configurations (no
  // stratification); used as a baseline in tests.
  std::vector<DbConfig> SampleUniform(int n);

 private:
  util::Rng rng_;
};

}  // namespace qpe::config

#endif  // QPE_CONFIG_LHS_SAMPLER_H_
