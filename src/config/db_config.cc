#include "config/db_config.h"

#include <cmath>
#include <sstream>

namespace qpe::config {

const std::array<KnobInfo, kNumKnobs>& KnobTable() {
  // Ranges chosen so that the paper's Table 5 5th/95th percentiles sit just
  // inside [min, max]; LHS over these ranges regenerates Table 5's shape.
  static const std::array<KnobInfo, kNumKnobs> kTable = {{
      {"bgwriter_delay", "ms", 100.0, 10000.0, false},
      {"bgwriter_lru_maxpages", "integer", 10.0, 1000.0, false},
      {"checkpoint_timeout", "ms", 30.0, 570.0, false},
      {"deadlock_timeout", "ms", 1000.0, 570000.0, false},
      {"default_statistics_target", "integer", 10.0, 10000.0, false},
      {"effective_cache_size", "bytes", 65536.0, 2097152.0, true},
      {"effective_io_concurrency", "integer", 1.0, 100.0, false},
      {"maintenance_work_mem", "bytes", 131072.0, 16777216.0, true},
      {"max_stack_depth", "integer", 100.0, 5400.0, false},
      {"random_page_cost", "number", 100.0, 10000.0, false},
      {"shared_buffers", "bytes", 16384.0, 4194304.0, true},
      {"wal_buffers", "bytes", 2048.0, 131072.0, true},
      {"work_mem", "bytes", 65536.0, 33554432.0, true},
  }};
  return kTable;
}

const KnobInfo& GetKnobInfo(Knob knob) {
  return KnobTable()[static_cast<size_t>(knob)];
}

DbConfig::DbConfig() {
  const auto& table = KnobTable();
  for (int i = 0; i < kNumKnobs; ++i) {
    values_[i] = 0.5 * (table[i].min_value + table[i].max_value);
  }
}

std::vector<double> DbConfig::ToFeatures() const {
  std::vector<double> features;
  features.reserve(FeatureDim());
  const auto& table = KnobTable();
  for (int i = 0; i < kNumKnobs; ++i) {
    // Normalize raw values into [0, 1] over the sampling range so they are
    // learnable, and append log1p for the wide-range byte-valued knobs.
    const KnobInfo& info = table[i];
    features.push_back((values_[i] - info.min_value) /
                       (info.max_value - info.min_value));
  }
  for (int i = 0; i < kNumKnobs; ++i) {
    if (table[i].log_scale_feature) {
      features.push_back(std::log1p(values_[i]) / 25.0);
    }
  }
  return features;
}

int DbConfig::FeatureDim() {
  int dim = kNumKnobs;
  for (const auto& info : KnobTable()) {
    if (info.log_scale_feature) ++dim;
  }
  return dim;
}

std::string DbConfig::DebugString() const {
  std::ostringstream oss;
  const auto& table = KnobTable();
  for (int i = 0; i < kNumKnobs; ++i) {
    oss << table[i].name << "=" << values_[i];
    if (i + 1 < kNumKnobs) oss << " ";
  }
  return oss.str();
}

}  // namespace qpe::config
