#include "plan/explain_parser.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "plan/taxonomy.h"

namespace qpe::plan {

namespace {

constexpr size_t npos = std::string::npos;

// --- Small line-scanner helpers -------------------------------------------

bool ConsumeLit(const std::string& line, size_t* pos, const char* lit) {
  const size_t len = std::char_traits<char>::length(lit);
  if (line.compare(*pos, len, lit) != 0) return false;
  *pos += len;
  return true;
}

bool ConsumeDouble(const std::string& line, size_t* pos, double* out) {
  if (*pos >= line.size()) return false;
  const char* start = line.c_str() + *pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *pos += static_cast<size_t>(end - start);
  *out = v;
  return true;
}

// Splits an operator display name into words, remembering each word's byte
// offset inside the name for column-accurate diagnostics.
struct NameWord {
  std::string text;
  size_t offset;
};

std::vector<NameWord> SplitName(const std::string& name) {
  std::vector<NameWord> words;
  size_t i = 0;
  while (i < name.size()) {
    while (i < name.size() && name[i] == ' ') ++i;
    const size_t begin = i;
    while (i < name.size() && name[i] != ' ') ++i;
    if (i > begin) words.push_back({name.substr(begin, i - begin), begin});
  }
  // PostgreSQL writes the IndexOnly sub-type as two words.
  for (size_t w = 0; w + 1 < words.size(); ++w) {
    if (words[w].text == "Index" && words[w + 1].text == "Only") {
      words[w].text = "IndexOnly";
      words.erase(words.begin() + static_cast<long>(w) + 1);
    }
  }
  return words;
}

SortMethod SortMethodFromName(const std::string& name) {
  if (name == "quicksort") return SortMethod::kQuicksort;
  if (name == "top-N heapsort") return SortMethod::kTopN;
  if (name == "external merge") return SortMethod::kExternalMerge;
  if (name == "external sort") return SortMethod::kExternalSort;
  return SortMethod::kUnknown;
}

// --- The parser -----------------------------------------------------------

class ExplainParser {
 public:
  ExplainParser(const std::string& text, const ParseExplainOptions& options)
      : text_(text),
        strict_(options.policy == IngestionPolicy::kStrict),
        result_{nullptr, {}, util::WarningLog(options.max_warnings)} {}

  util::StatusOr<ParsedExplain> Run() {
    size_t start = 0;
    int line_no = 0;
    while (start <= text_.size() && error_.ok()) {
      size_t end = text_.find('\n', start);
      if (end == npos) end = text_.size();
      ++line_no;
      std::string line = text_.substr(start, end - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      ParseLine(line, line_no);
      if (end == text_.size()) break;
      start = end + 1;
    }
    if (!error_.ok()) return error_;
    if (result_.root == nullptr) {
      return util::InvalidArgumentError(
          "no plan node found in EXPLAIN text (" + std::to_string(line_no) +
          " line(s) scanned)");
    }
    if (strict_ && nodes_with_actuals_ > 0 && nodes_without_actuals_ > 0) {
      return util::InvalidArgumentError(
          "line " + std::to_string(first_missing_actuals_line_) +
          ": node without an actual clause in ANALYZE output");
    }
    // A uniformly estimate-only text is plain EXPLAIN, not a defect.
    if (nodes_with_actuals_ == 0) result_.stats.missing_actuals = 0;
    return std::move(result_);
  }

 private:
  // Records a defect: strict mode arms the error (first one wins and parsing
  // stops); lenient mode counts it and logs a line/column warning.
  void Defect(int line_no, size_t col, const std::string& message,
              int IngestionStats::* counter) {
    if (strict_) {
      if (error_.ok()) {
        error_ = util::InvalidArgumentError(
            "line " + std::to_string(line_no) + ", col " +
            std::to_string(col + 1) + ": " + message);
      }
      return;
    }
    if (counter != nullptr) ++(result_.stats.*counter);
    result_.warnings.Add("line " + std::to_string(line_no) + ", col " +
                         std::to_string(col + 1) + ": " + message);
  }

  void ParseLine(const std::string& line, int line_no) {
    size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    if (indent == line.size()) return;  // blank line

    const bool has_arrow = line.compare(indent, 2, "->") == 0;
    const bool has_cost = line.find("  (cost=", indent) != npos;
    if (has_arrow) {
      size_t name_col = indent + 2;
      while (name_col < line.size() && line[name_col] == ' ') ++name_col;
      ParseNodeLine(line, line_no, name_col);
    } else if (has_cost) {
      ParseNodeLine(line, line_no, indent);
    } else if (result_.root == nullptr) {
      // psql banners ("QUERY PLAN", dashes) and other preamble.
      Defect(line_no, indent, "unrecognized line before the first plan node",
             &IngestionStats::unparsed_lines);
    } else {
      ParseDetailLine(line, line_no, indent);
    }
  }

  void ParseNodeLine(const std::string& line, int line_no, size_t name_col) {
    size_t name_end = line.find("  (cost=", name_col);
    const bool has_cost = name_end != npos;
    if (!has_cost) {
      name_end = line.size();
      Defect(line_no, name_col, "node line without cost estimates",
             &IngestionStats::unparsed_lines);
      if (strict_) return;
    }
    std::string name = line.substr(name_col, name_end - name_col);
    while (!name.empty() && name.back() == ' ') name.pop_back();

    // Strip "using <index>" and "on <relation>" suffixes off the name.
    std::string relation;
    const size_t on_pos = name.find(" on ");
    if (on_pos != npos) {
      relation = name.substr(on_pos + 4);
      const size_t space = relation.find(' ');
      if (space != npos) relation.resize(space);  // drop any alias
    }
    const size_t using_pos = name.find(" using ");
    const size_t cut = std::min(on_pos, using_pos);
    if (cut != npos) name.resize(cut);

    auto node = std::make_unique<PlanNode>(MapOperator(name, line_no, name_col));
    if (strict_ && !error_.ok()) return;
    if (!relation.empty()) node->AddRelation(std::move(relation));
    PlanProperties& p = node->props();

    size_t pos = name_end;
    if (has_cost) {
      if (!(ConsumeLit(line, &pos, "  (cost=") &&
            ConsumeDouble(line, &pos, &p.startup_cost) &&
            ConsumeLit(line, &pos, "..") &&
            ConsumeDouble(line, &pos, &p.total_cost) &&
            ConsumeLit(line, &pos, " rows=") &&
            ConsumeDouble(line, &pos, &p.plan_rows) &&
            ConsumeLit(line, &pos, " width=") &&
            ConsumeDouble(line, &pos, &p.plan_width) &&
            ConsumeLit(line, &pos, ")"))) {
        Defect(line_no, pos, "malformed cost clause",
               &IngestionStats::unparsed_lines);
        if (strict_) return;
        pos = SkipClause(line, pos);
      }
    }

    // Optional actual clause: "(actual time=a..b rows=r loops=l)" or the
    // TIMING OFF variant "(actual rows=r loops=l)".
    bool has_actuals = false;
    const size_t actual_pos = line.find("(actual", pos);
    if (actual_pos != npos) {
      size_t a = actual_pos + 7;  // past "(actual"
      bool ok = true;
      if (ConsumeLit(line, &a, " time=")) {
        ok = ConsumeDouble(line, &a, &p.actual_startup_time_ms) &&
             ConsumeLit(line, &a, "..") &&
             ConsumeDouble(line, &a, &p.actual_total_time_ms);
      }
      ok = ok && ConsumeLit(line, &a, " rows=") &&
           ConsumeDouble(line, &a, &p.actual_rows) &&
           ConsumeLit(line, &a, " loops=") &&
           ConsumeDouble(line, &a, &p.actual_loops) &&
           ConsumeLit(line, &a, ")");
      if (ok) {
        has_actuals = true;
      } else {
        Defect(line_no, a, "malformed actual clause",
               &IngestionStats::unparsed_lines);
        if (strict_) return;
      }
    }
    if (!has_actuals) {
      // Estimate-only degradation: the encoders see the optimizer estimate
      // instead of a spurious zero. Whether this is a defect depends on the
      // rest of the text (plain EXPLAIN vs mixed output); see Run().
      p.actual_loops = 1;
      p.actual_rows = p.plan_rows;
      ++result_.stats.missing_actuals;
      ++nodes_without_actuals_;
      if (first_missing_actuals_line_ == 0) {
        first_missing_actuals_line_ = line_no;
      }
    } else {
      ++nodes_with_actuals_;
    }

    AttachNode(std::move(node), name_col, line_no);
  }

  OperatorType MapOperator(const std::string& name, int line_no,
                           size_t name_col) {
    const Taxonomy& tax = Taxonomy::Get();
    const std::vector<NameWord> words = SplitName(name);
    if (words.empty()) {
      Defect(line_no, name_col, "empty operator name",
             &IngestionStats::unknown_operators);
      return OperatorType::Unknown();
    }
    // Display order is "<L3> <L2> <L1>" with NIL levels omitted, so assign
    // from the back; a word that only fits the other level slides over.
    OperatorType type;
    auto unknown_word = [&](const NameWord& word, const char* level) {
      Defect(line_no, name_col + word.offset,
             std::string("unknown ") + level + " operator word '" + word.text +
                 "'",
             &IngestionStats::unknown_operators);
    };
    const int l1 = tax.FindLevel1(words.back().text);
    if (l1 < 0) unknown_word(words.back(), "level-1");
    type.level1 = static_cast<uint8_t>(l1 < 0 ? tax.unknown1() : l1);
    bool have2 = false;
    bool have3 = false;
    for (size_t w = words.size() - 1; w-- > 0;) {
      const NameWord& word = words[w];
      const int id2 = tax.FindLevel2(word.text);
      const int id3 = tax.FindLevel3(word.text);
      if (!have2 && id2 >= 0) {
        type.level2 = static_cast<uint8_t>(id2);
        have2 = true;
      } else if (!have3 && id3 >= 0) {
        type.level3 = static_cast<uint8_t>(id3);
        have3 = true;
      } else if (!have2) {
        unknown_word(word, "level-2");
        type.level2 = static_cast<uint8_t>(tax.unknown2());
        have2 = true;
      } else if (!have3) {
        unknown_word(word, "level-3");
        type.level3 = static_cast<uint8_t>(tax.unknown3());
        have3 = true;
      } else {
        unknown_word(word, "extra");
      }
    }
    return type;
  }

  void AttachNode(std::unique_ptr<PlanNode> node, size_t name_col,
                  int line_no) {
    ++result_.stats.nodes;
    if (result_.root == nullptr) {
      result_.root = std::move(node);
      stack_.assign(1, {name_col, result_.root.get()});
      return;
    }
    while (stack_.size() > 1 && stack_.back().first >= name_col) {
      stack_.pop_back();
    }
    PlanNode* parent = stack_.back().second;
    if (stack_.size() == 1 && name_col <= stack_.front().first) {
      // A second root-level tree; lenient ingestion grafts it under the
      // first root so no parsed structure is silently dropped.
      Defect(line_no, name_col, "second root-level node",
             &IngestionStats::orphan_nodes);
      if (strict_) return;
    }
    PlanNode* added = parent->AddChild(std::move(node));
    stack_.emplace_back(name_col, added);
  }

  void ParseDetailLine(const std::string& line, int line_no, size_t indent) {
    if (stack_.empty()) {
      Defect(line_no, indent, "detail line before any plan node",
             &IngestionStats::unparsed_lines);
      return;
    }
    PlanProperties& p = stack_.back().second->props();
    size_t pos = indent;

    if (ConsumeLit(line, &pos, "Sort Method: ")) {
      const size_t method_end = line.find("  Memory: ", pos);
      if (method_end == npos) {
        Defect(line_no, pos, "malformed sort-method line",
               &IngestionStats::unparsed_lines);
        return;
      }
      const std::string method = line.substr(pos, method_end - pos);
      p.sort_method = SortMethodFromName(method);
      if (p.sort_method == SortMethod::kUnknown) {
        Defect(line_no, pos, "unknown sort method '" + method + "'",
               &IngestionStats::invalid_enums);
        if (strict_) return;
      }
      pos = method_end;
      if (!(ConsumeLit(line, &pos, "  Memory: ") &&
            ConsumeDouble(line, &pos, &p.peak_memory_kb) &&
            ConsumeLit(line, &pos, "kB"))) {
        Defect(line_no, pos, "malformed sort-memory field",
               &IngestionStats::unparsed_lines);
        return;
      }
      if (ConsumeLit(line, &pos, "  Disk: ")) {
        p.sort_space_on_disk = true;
        if (!(ConsumeDouble(line, &pos, &p.sort_space_used_kb) &&
              ConsumeLit(line, &pos, "kB"))) {
          Defect(line_no, pos, "malformed sort-disk field",
                 &IngestionStats::unparsed_lines);
        }
      }
      return;
    }

    if (ConsumeLit(line, &pos, "Hash Buckets: ")) {
      if (!(ConsumeDouble(line, &pos, &p.hash_buckets) &&
            ConsumeLit(line, &pos, "  Batches: ") &&
            ConsumeDouble(line, &pos, &p.hash_batches) &&
            ConsumeLit(line, &pos, "  Peak Memory: ") &&
            ConsumeDouble(line, &pos, &p.peak_memory_kb) &&
            ConsumeLit(line, &pos, "kB"))) {
        Defect(line_no, pos, "malformed hash detail line",
               &IngestionStats::unparsed_lines);
      }
      return;
    }

    if (ConsumeLit(line, &pos, "Buffers: shared hit=")) {
      bool ok = ConsumeDouble(line, &pos, &p.shared_hit_blocks) &&
                ConsumeLit(line, &pos, " read=") &&
                ConsumeDouble(line, &pos, &p.shared_read_blocks);
      if (ok && ConsumeLit(line, &pos, " dirtied=")) {
        ok = ConsumeDouble(line, &pos, &p.shared_dirtied_blocks);
      }
      if (ok && ConsumeLit(line, &pos, " written=")) {
        ok = ConsumeDouble(line, &pos, &p.shared_written_blocks);
      }
      if (ok && ConsumeLit(line, &pos, ", temp read=")) {
        ok = ConsumeDouble(line, &pos, &p.temp_read_blocks) &&
             ConsumeLit(line, &pos, " written=") &&
             ConsumeDouble(line, &pos, &p.temp_written_blocks);
      }
      if (!ok) {
        Defect(line_no, pos, "malformed buffers line",
               &IngestionStats::unparsed_lines);
      }
      return;
    }

    if (ConsumeLit(line, &pos, "Rows Removed by Filter: ")) {
      p.has_filter = true;
      if (!ConsumeDouble(line, &pos, &p.rows_removed_by_filter)) {
        Defect(line_no, pos, "malformed rows-removed count",
               &IngestionStats::unparsed_lines);
      }
      return;
    }

    if (ConsumeLit(line, &pos, "Rows Removed by Join Filter: ")) {
      if (!ConsumeDouble(line, &pos, &p.rows_removed_by_join_filter)) {
        Defect(line_no, pos, "malformed rows-removed count",
               &IngestionStats::unparsed_lines);
      }
      return;
    }

    if (ConsumeLit(line, &pos, "Index Cond: ")) {
      p.has_index_condition = true;
      return;
    }
    if (ConsumeLit(line, &pos, "Recheck Cond: ")) {
      p.has_recheck_condition = true;
      return;
    }
    if (ConsumeLit(line, &pos, "Filter: ")) {
      p.has_filter = true;
      return;
    }
    if (ConsumeLit(line, &pos, "Sort Key: ")) {
      // One key per comma-separated expression.
      double keys = 1;
      for (size_t i = pos; i < line.size(); ++i) keys += line[i] == ',';
      p.num_sort_keys = keys;
      return;
    }
    if (ConsumeLit(line, &pos, "Heap Blocks: exact=")) {
      if (!ConsumeDouble(line, &pos, &p.heap_blocks)) {
        Defect(line_no, pos, "malformed heap-blocks count",
               &IngestionStats::unparsed_lines);
      }
      return;
    }

    Defect(line_no, indent,
           "unrecognized detail line '" +
               line.substr(indent, std::min<size_t>(40, line.size() - indent)) +
               "'",
           &IngestionStats::unparsed_lines);
  }

  // Lenient recovery for a malformed parenthesized clause: skip past its
  // closing paren (or to end of line).
  static size_t SkipClause(const std::string& line, size_t pos) {
    const size_t close = line.find(')', pos);
    return close == npos ? line.size() : close + 1;
  }

  const std::string& text_;
  const bool strict_;
  ParsedExplain result_;
  util::Status error_;
  std::vector<std::pair<size_t, PlanNode*>> stack_;  // (name col, node)
  int nodes_with_actuals_ = 0;
  int nodes_without_actuals_ = 0;
  int first_missing_actuals_line_ = 0;
};

}  // namespace

util::StatusOr<ParsedExplain> ParseExplain(const std::string& text,
                                           const ParseExplainOptions& options) {
  return ExplainParser(text, options).Run();
}

}  // namespace qpe::plan
