#include "plan/linearize.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace qpe::plan {

namespace {

// Children sorted by canonical typename for deterministic linearization.
std::vector<const PlanNode*> SortedChildren(const PlanNode& node) {
  std::vector<const PlanNode*> kids;
  kids.reserve(node.children().size());
  for (const auto& child : node.children()) kids.push_back(child.get());
  std::stable_sort(kids.begin(), kids.end(),
                   [](const PlanNode* a, const PlanNode* b) {
                     return a->type() < b->type();
                   });
  return kids;
}

void DfsBracket(const PlanNode& node, std::vector<OperatorType>* out) {
  const Taxonomy& tax = Taxonomy::Get();
  if (node.children().empty()) {
    out->push_back(node.type());
    return;
  }
  out->push_back(OperatorType(static_cast<uint8_t>(tax.br_open()), 0, 0));
  out->push_back(node.type());
  for (const PlanNode* child : SortedChildren(node)) {
    DfsBracket(*child, out);
  }
  out->push_back(OperatorType(static_cast<uint8_t>(tax.br_close()), 0, 0));
}

void Dfs(const PlanNode& node, std::vector<OperatorType>* out) {
  out->push_back(node.type());
  for (const PlanNode* child : SortedChildren(node)) Dfs(*child, out);
}

}  // namespace

std::vector<OperatorType> LinearizeDfsBracket(const PlanNode& root,
                                              bool add_cls_sep) {
  const Taxonomy& tax = Taxonomy::Get();
  std::vector<OperatorType> tokens;
  if (add_cls_sep) {
    tokens.push_back(OperatorType(static_cast<uint8_t>(tax.cls()), 0, 0));
  }
  DfsBracket(root, &tokens);
  if (add_cls_sep) {
    tokens.push_back(OperatorType(static_cast<uint8_t>(tax.sep()), 0, 0));
  }
  return tokens;
}

std::vector<OperatorType> LinearizeDfs(const PlanNode& root) {
  std::vector<OperatorType> tokens;
  Dfs(root, &tokens);
  return tokens;
}

std::vector<OperatorType> LinearizeBfs(const PlanNode& root) {
  std::vector<OperatorType> tokens;
  std::deque<const PlanNode*> queue = {&root};
  while (!queue.empty()) {
    const PlanNode* node = queue.front();
    queue.pop_front();
    tokens.push_back(node->type());
    for (const PlanNode* child : SortedChildren(*node)) {
      queue.push_back(child);
    }
  }
  return tokens;
}

std::string ToBracketString(const std::vector<OperatorType>& tokens) {
  const Taxonomy& tax = Taxonomy::Get();
  std::ostringstream oss;
  bool first = true;
  for (const OperatorType& t : tokens) {
    const int l1 = t.level1;
    if (l1 == tax.br_open()) {
      if (!first) oss << " ";
      oss << "(";
      first = true;  // no space after an open bracket
      continue;
    }
    if (l1 == tax.br_close()) {
      oss << ")";
      first = false;
      continue;
    }
    if (!first) oss << " ";
    oss << t.ToString();
    first = false;
  }
  return oss.str();
}

}  // namespace qpe::plan
