#include "plan/linearize.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace qpe::plan {

namespace {

// Children sorted by canonical typename for deterministic linearization.
std::vector<const PlanNode*> SortedChildren(const PlanNode& node) {
  std::vector<const PlanNode*> kids;
  kids.reserve(node.children().size());
  for (const auto& child : node.children()) kids.push_back(child.get());
  std::stable_sort(kids.begin(), kids.end(),
                   [](const PlanNode* a, const PlanNode* b) {
                     return a->type() < b->type();
                   });
  return kids;
}

// Visits node's children in canonical-typename order without allocating:
// real plans have tiny fan-outs (binary joins dominate), so a stable
// insertion sort over an inline pointer array replaces SortedChildren's
// per-node vector + stable_sort on the hot linearization path — the
// per-node heap traffic was visible in encode profiles. Equal keys are
// never moved past each other, so the visit order matches SortedChildren
// exactly; improbable fan-outs fall back to the allocating path.
template <typename Fn>
void ForEachChildSorted(const PlanNode& node, Fn&& fn) {
  const auto& ch = node.children();
  const size_t n = ch.size();
  constexpr size_t kInline = 16;
  if (n > kInline) {
    for (const PlanNode* child : SortedChildren(node)) fn(*child);
    return;
  }
  const PlanNode* kids[kInline];
  for (size_t i = 0; i < n; ++i) {
    const PlanNode* key = ch[i].get();
    size_t j = i;
    while (j > 0 && key->type() < kids[j - 1]->type()) {
      kids[j] = kids[j - 1];
      --j;
    }
    kids[j] = key;
  }
  for (size_t i = 0; i < n; ++i) fn(*kids[i]);
}

void DfsBracket(const PlanNode& node, std::vector<OperatorType>* out) {
  const Taxonomy& tax = Taxonomy::Get();
  if (node.children().empty()) {
    out->push_back(node.type());
    return;
  }
  out->push_back(OperatorType(static_cast<uint8_t>(tax.br_open()), 0, 0));
  out->push_back(node.type());
  ForEachChildSorted(node,
                     [out](const PlanNode& child) { DfsBracket(child, out); });
  out->push_back(OperatorType(static_cast<uint8_t>(tax.br_close()), 0, 0));
}

void Dfs(const PlanNode& node, std::vector<OperatorType>* out) {
  out->push_back(node.type());
  ForEachChildSorted(node, [out](const PlanNode& child) { Dfs(child, out); });
}

}  // namespace

std::vector<OperatorType> LinearizeDfsBracket(const PlanNode& root,
                                              bool add_cls_sep) {
  std::vector<OperatorType> tokens;
  LinearizeDfsBracketInto(root, &tokens, add_cls_sep);
  return tokens;
}

void LinearizeDfsBracketInto(const PlanNode& root,
                             std::vector<OperatorType>* out,
                             bool add_cls_sep) {
  const Taxonomy& tax = Taxonomy::Get();
  out->clear();
  if (add_cls_sep) {
    out->push_back(OperatorType(static_cast<uint8_t>(tax.cls()), 0, 0));
  }
  DfsBracket(root, out);
  if (add_cls_sep) {
    out->push_back(OperatorType(static_cast<uint8_t>(tax.sep()), 0, 0));
  }
}

std::vector<OperatorType> LinearizeDfs(const PlanNode& root) {
  std::vector<OperatorType> tokens;
  Dfs(root, &tokens);
  return tokens;
}

std::vector<OperatorType> LinearizeBfs(const PlanNode& root) {
  std::vector<OperatorType> tokens;
  std::deque<const PlanNode*> queue = {&root};
  while (!queue.empty()) {
    const PlanNode* node = queue.front();
    queue.pop_front();
    tokens.push_back(node->type());
    for (const PlanNode* child : SortedChildren(*node)) {
      queue.push_back(child);
    }
  }
  return tokens;
}

std::string ToBracketString(const std::vector<OperatorType>& tokens) {
  const Taxonomy& tax = Taxonomy::Get();
  std::ostringstream oss;
  bool first = true;
  for (const OperatorType& t : tokens) {
    const int l1 = t.level1;
    if (l1 == tax.br_open()) {
      if (!first) oss << " ";
      oss << "(";
      first = true;  // no space after an open bracket
      continue;
    }
    if (l1 == tax.br_close()) {
      oss << ")";
      first = false;
      continue;
    }
    if (!first) oss << " ";
    oss << t.ToString();
    first = false;
  }
  return oss.str();
}

}  // namespace qpe::plan
