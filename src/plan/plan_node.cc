#include "plan/plan_node.h"

#include <algorithm>

namespace qpe::plan {

PlanNode* PlanNode::AddChild(std::unique_ptr<PlanNode> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

PlanNode* PlanNode::AddChild(OperatorType type) {
  return AddChild(std::make_unique<PlanNode>(type));
}

int PlanNode::NumNodes() const {
  int count = 1;
  for (const auto& child : children_) count += child->NumNodes();
  return count;
}

int PlanNode::Depth() const {
  int max_child = 0;
  for (const auto& child : children_) {
    max_child = std::max(max_child, child->Depth());
  }
  return 1 + max_child;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>(type_);
  copy->props_ = props_;
  copy->relations_ = relations_;
  for (const auto& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  return copy;
}

Plan Plan::CloneDeep() const {
  Plan copy;
  copy.root = root ? root->Clone() : nullptr;
  copy.benchmark = benchmark;
  copy.template_id = template_id;
  copy.cluster_id = cluster_id;
  return copy;
}

}  // namespace qpe::plan
