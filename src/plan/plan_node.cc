#include "plan/plan_node.h"

#include <algorithm>
#include <utility>

namespace qpe::plan {

PlanNode* PlanNode::AddChild(std::unique_ptr<PlanNode> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

PlanNode* PlanNode::AddChild(OperatorType type) {
  return AddChild(std::make_unique<PlanNode>(type));
}

void PlanNode::TruncateChildren(size_t keep) {
  if (children_.size() > keep) {
    children_.resize(keep);
  }
}

int PlanNode::NumNodes() const {
  int count = 0;
  std::vector<const PlanNode*> stack = {this};
  while (!stack.empty()) {
    const PlanNode* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& child : node->children_) stack.push_back(child.get());
  }
  return count;
}

int PlanNode::Depth() const {
  int max_depth = 0;
  std::vector<std::pair<const PlanNode*, int>> stack = {{this, 1}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    for (const auto& child : node->children_) {
      stack.emplace_back(child.get(), depth + 1);
    }
  }
  return max_depth;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>(type_);
  copy->props_ = props_;
  copy->relations_ = relations_;
  for (const auto& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  return copy;
}

Plan Plan::CloneDeep() const {
  Plan copy;
  copy.root = root ? root->Clone() : nullptr;
  copy.benchmark = benchmark;
  copy.template_id = template_id;
  copy.cluster_id = cluster_id;
  return copy;
}

}  // namespace qpe::plan
