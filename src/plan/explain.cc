#include "plan/explain.h"

#include <iomanip>
#include <sstream>

namespace qpe::plan {

namespace {

// "Scan-Heap-Bitmap" -> "Bitmap Heap Scan", "Join-Hash" -> "Hash Join",
// "Loop-Nested" -> "Nested Loop": reverse the taxonomy order for display.
std::string DisplayName(const OperatorType& type) {
  const Taxonomy& tax = Taxonomy::Get();
  std::string out;
  if (type.level3 != 0) out += tax.Level3Name(type.level3) + " ";
  if (type.level2 != 0) out += tax.Level2Name(type.level2) + " ";
  out += tax.Level1Name(type.level1);
  return out;
}

std::string Num(double v, int precision = 2) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

const char* SortMethodName(SortMethod method) {
  switch (method) {
    case SortMethod::kQuicksort: return "quicksort";
    case SortMethod::kTopN: return "top-N heapsort";
    case SortMethod::kExternalMerge: return "external merge";
    case SortMethod::kExternalSort: return "external sort";
    case SortMethod::kUnknown: return "unknown";
  }
  return "unknown";
}

void ExplainNode(const PlanNode& node, const ExplainOptions& options,
                 int depth, bool is_root, std::ostringstream& out) {
  const std::string pad(is_root ? 0 : 6 * depth - 4, ' ');
  const PlanProperties& p = node.props();
  out << pad;
  if (!is_root) out << "->  ";
  out << DisplayName(node.type());
  if (!node.relations().empty()) {
    out << " on " << node.relations()[0];
  }
  out << "  (cost=" << Num(p.startup_cost) << ".." << Num(p.total_cost)
      << " rows=" << Num(p.plan_rows, 0) << " width=" << Num(p.plan_width, 0)
      << ")";
  if (options.analyze) {
    out << " (actual time=" << Num(p.actual_startup_time_ms, 3) << ".."
        << Num(p.actual_total_time_ms, 3) << " rows=" << Num(p.actual_rows, 0)
        << " loops=" << Num(p.actual_loops, 0) << ")";
  }
  out << "\n";

  const std::string detail_pad(6 * depth + 2, ' ');
  if (p.sort_method != SortMethod::kUnknown) {
    out << detail_pad << "Sort Method: " << SortMethodName(p.sort_method)
        << "  Memory: " << Num(p.peak_memory_kb, 0) << "kB";
    if (p.sort_space_on_disk) {
      out << "  Disk: " << Num(p.sort_space_used_kb, 0) << "kB";
    }
    out << "\n";
  }
  if (p.hash_batches > 0) {
    out << detail_pad << "Hash Buckets: " << Num(p.hash_buckets, 0)
        << "  Batches: " << Num(p.hash_batches, 0)
        << "  Peak Memory: " << Num(p.peak_memory_kb, 0) << "kB\n";
  }
  if (p.has_index_condition) {
    out << detail_pad << "Index Cond: (set)\n";
  }
  if (p.has_filter && options.analyze) {
    out << detail_pad
        << "Rows Removed by Filter: " << Num(p.rows_removed_by_filter, 0)
        << "\n";
  }
  if (options.buffers && options.analyze &&
      (p.shared_hit_blocks + p.shared_read_blocks + p.temp_read_blocks +
       p.temp_written_blocks) > 0) {
    out << detail_pad << "Buffers: shared hit=" << Num(p.shared_hit_blocks, 0)
        << " read=" << Num(p.shared_read_blocks, 0);
    if (p.temp_read_blocks + p.temp_written_blocks > 0) {
      out << ", temp read=" << Num(p.temp_read_blocks, 0)
          << " written=" << Num(p.temp_written_blocks, 0);
    }
    out << "\n";
  }
  for (const auto& child : node.children()) {
    ExplainNode(*child, options, depth + 1, false, out);
  }
}

}  // namespace

std::string Explain(const PlanNode& root, const ExplainOptions& options) {
  std::ostringstream out;
  ExplainNode(root, options, 0, true, out);
  return out.str();
}

}  // namespace qpe::plan
