#ifndef QPE_PLAN_PLAN_NODE_H_
#define QPE_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/taxonomy.h"

namespace qpe::plan {

// Enumerations for categorical node properties; stored as small ints so the
// property bag is a flat numeric record.
enum class ParentRelationship : int {
  kNone = 0,
  kOuter,
  kInner,
  kSubquery,
  kMember,
  kInitPlan,
};

enum class SortMethod : int {
  kUnknown = 0,
  kQuicksort,
  kTopN,
  kExternalMerge,
  kExternalSort,
};

enum class JoinKind : int {
  kNone = 0,
  kInner,
  kLeft,
  kRight,
  kFull,
  kSemi,
  kAnti,
};

enum class AggregateStrategy : int {
  kNone = 0,
  kPlain,
  kSorted,
  kHashed,
  kMixed,
};

// Execution/plan properties of a node (paper Table 1). Properties common to
// all operators first, then the operator-group-specific ones; fields that do
// not apply to a node's group stay zero. `Total Cost`, `Startup Cost`,
// `Actual Total/Startup Time` are kept separate as labels — the paper
// explicitly excludes them from input features (§2.1).
struct PlanProperties {
  // --- Common to all operators ---
  double actual_loops = 1;
  double actual_rows = 0;
  double plan_rows = 0;   // optimizer cardinality estimate
  double plan_width = 0;  // bytes per row
  double shared_hit_blocks = 0;
  double shared_read_blocks = 0;
  double shared_dirtied_blocks = 0;
  double shared_written_blocks = 0;
  double local_hit_blocks = 0;
  double local_read_blocks = 0;
  double local_dirtied_blocks = 0;
  double local_written_blocks = 0;
  double temp_read_blocks = 0;
  double temp_written_blocks = 0;
  ParentRelationship parent_relationship = ParentRelationship::kNone;
  double plan_buffers = 0;

  // --- Scan ---
  int scan_direction = 0;  // +1 forward, -1 backward
  bool has_index_condition = false;
  bool has_recheck_condition = false;
  bool has_filter = false;
  double rows_removed_by_filter = 0;
  double heap_blocks = 0;
  bool parallel = false;

  // --- Join ---
  JoinKind join_kind = JoinKind::kNone;
  bool inner_unique = false;
  bool has_merge_condition = false;
  bool has_hash_condition = false;
  double rows_removed_by_join_filter = 0;
  double hash_buckets = 0;
  double hash_batches = 0;

  // --- Sort ---
  SortMethod sort_method = SortMethod::kUnknown;
  double sort_space_used_kb = 0;
  bool sort_space_on_disk = false;
  double num_sort_keys = 0;

  // --- Aggregate ---
  AggregateStrategy aggregate_strategy = AggregateStrategy::kNone;
  bool parallel_aware = false;
  bool partial_mode = false;

  // --- Shared by Join/Sort/Aggregate ---
  double peak_memory_kb = 0;

  // --- Labels (never used as input features) ---
  double startup_cost = 0;
  double total_cost = 0;
  double actual_startup_time_ms = 0;
  double actual_total_time_ms = 0;
};

// One node of a query execution plan tree.
class PlanNode {
 public:
  PlanNode() = default;
  explicit PlanNode(OperatorType type) : type_(type) {}

  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  const OperatorType& type() const { return type_; }
  void set_type(OperatorType type) { type_ = type; }

  PlanProperties& props() { return props_; }
  const PlanProperties& props() const { return props_; }

  // Names of relations this node reads (Scan nodes; empty elsewhere).
  const std::vector<std::string>& relations() const { return relations_; }
  void AddRelation(std::string name) { relations_.push_back(std::move(name)); }

  const std::vector<std::unique_ptr<PlanNode>>& children() const {
    return children_;
  }
  PlanNode* AddChild(std::unique_ptr<PlanNode> child);
  PlanNode* AddChild(OperatorType type);

  // Deterministically drops all children past the first `keep` (ingestion
  // fan-out cap); DropChildren removes the whole child list (depth cap).
  void TruncateChildren(size_t keep);
  void DropChildren() { TruncateChildren(0); }

  // Iterative — safe on pathologically deep (foreign / fuzzed) trees.
  int NumNodes() const;
  int Depth() const;

  // Deep copy of this subtree.
  std::unique_ptr<PlanNode> Clone() const;

  // Pre-order visit of the subtree.
  template <typename Fn>
  void Visit(Fn&& fn) const {
    fn(*this);
    for (const auto& child : children_) child->Visit(fn);
  }
  template <typename Fn>
  void VisitMutable(Fn&& fn) {
    fn(this);
    for (auto& child : children_) child->VisitMutable(fn);
  }

 private:
  OperatorType type_;
  PlanProperties props_;
  std::vector<std::string> relations_;
  std::vector<std::unique_ptr<PlanNode>> children_;
};

// A full plan: the root node plus plan-level metadata.
struct Plan {
  std::unique_ptr<PlanNode> root;
  std::string benchmark;    // e.g. "tpch", "tpcds", "job", "spatial"
  std::string template_id;  // e.g. "Q5", "11a", "OSM3"
  int cluster_id = -1;      // JOB cluster (classification label), -1 if n/a

  Plan() = default;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;

  Plan CloneDeep() const;
  int NumNodes() const { return root ? root->NumNodes() : 0; }
};

}  // namespace qpe::plan

#endif  // QPE_PLAN_PLAN_NODE_H_
