#include "plan/serialize.h"

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

namespace qpe::plan {

namespace {

// Property table: name -> accessor pair, covering every numeric/categorical
// field of PlanProperties. Bools and enums are serialized as integers.
struct PropField {
  const char* name;
  double (*get)(const PlanProperties&);
  void (*set)(PlanProperties&, double);
};

#define QPE_NUM_FIELD(field)                                      \
  {#field,                                                        \
   [](const PlanProperties& p) {                                  \
     return static_cast<double>(p.field);                         \
   },                                                             \
   [](PlanProperties& p, double v) {                              \
     p.field = static_cast<decltype(p.field)>(v);                 \
   }}
#define QPE_BOOL_FIELD(field)                                     \
  {#field,                                                        \
   [](const PlanProperties& p) { return p.field ? 1.0 : 0.0; },   \
   [](PlanProperties& p, double v) { p.field = v != 0.0; }}
#define QPE_ENUM_FIELD(field, Enum)                               \
  {#field,                                                        \
   [](const PlanProperties& p) {                                  \
     return static_cast<double>(static_cast<int>(p.field));       \
   },                                                             \
   [](PlanProperties& p, double v) {                              \
     p.field = static_cast<Enum>(static_cast<int>(v));            \
   }}

const std::vector<PropField>& PropFields() {
  static const std::vector<PropField>* const kFields =
      new std::vector<PropField>{
          QPE_NUM_FIELD(actual_loops),
          QPE_NUM_FIELD(actual_rows),
          QPE_NUM_FIELD(plan_rows),
          QPE_NUM_FIELD(plan_width),
          QPE_NUM_FIELD(shared_hit_blocks),
          QPE_NUM_FIELD(shared_read_blocks),
          QPE_NUM_FIELD(shared_dirtied_blocks),
          QPE_NUM_FIELD(shared_written_blocks),
          QPE_NUM_FIELD(local_hit_blocks),
          QPE_NUM_FIELD(local_read_blocks),
          QPE_NUM_FIELD(local_dirtied_blocks),
          QPE_NUM_FIELD(local_written_blocks),
          QPE_NUM_FIELD(temp_read_blocks),
          QPE_NUM_FIELD(temp_written_blocks),
          QPE_ENUM_FIELD(parent_relationship, ParentRelationship),
          QPE_NUM_FIELD(plan_buffers),
          QPE_NUM_FIELD(scan_direction),
          QPE_BOOL_FIELD(has_index_condition),
          QPE_BOOL_FIELD(has_recheck_condition),
          QPE_BOOL_FIELD(has_filter),
          QPE_NUM_FIELD(rows_removed_by_filter),
          QPE_NUM_FIELD(heap_blocks),
          QPE_BOOL_FIELD(parallel),
          QPE_ENUM_FIELD(join_kind, JoinKind),
          QPE_BOOL_FIELD(inner_unique),
          QPE_BOOL_FIELD(has_merge_condition),
          QPE_BOOL_FIELD(has_hash_condition),
          QPE_NUM_FIELD(rows_removed_by_join_filter),
          QPE_NUM_FIELD(hash_buckets),
          QPE_NUM_FIELD(hash_batches),
          QPE_ENUM_FIELD(sort_method, SortMethod),
          QPE_NUM_FIELD(sort_space_used_kb),
          QPE_BOOL_FIELD(sort_space_on_disk),
          QPE_NUM_FIELD(num_sort_keys),
          QPE_ENUM_FIELD(aggregate_strategy, AggregateStrategy),
          QPE_BOOL_FIELD(parallel_aware),
          QPE_BOOL_FIELD(partial_mode),
          QPE_NUM_FIELD(peak_memory_kb),
          QPE_NUM_FIELD(startup_cost),
          QPE_NUM_FIELD(total_cost),
          QPE_NUM_FIELD(actual_startup_time_ms),
          QPE_NUM_FIELD(actual_total_time_ms),
      };
  return *kFields;
}

#undef QPE_NUM_FIELD
#undef QPE_BOOL_FIELD
#undef QPE_ENUM_FIELD

void SerializeNode(const PlanNode& node, std::ostringstream& oss) {
  oss << std::setprecision(std::numeric_limits<double>::max_digits10);
  oss << "(op \"" << node.type().ToString(/*full=*/true) << "\"";
  for (const std::string& rel : node.relations()) {
    oss << " :rel " << rel;
  }
  static const PlanProperties kDefaults;
  for (const PropField& field : PropFields()) {
    const double v = field.get(node.props());
    if (v != field.get(kDefaults)) {
      oss << " :" << field.name << " " << v;
    }
  }
  for (const auto& child : node.children()) {
    oss << " ";
    SerializeNode(*child, oss);
  }
  oss << ")";
}

// Tiny recursive-descent parser over the s-expression format. The first
// failure is recorded with its reason and byte offset (see error()), so
// callers can report *where* a corrupt plan text broke instead of just
// returning nullptr.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::unique_ptr<PlanNode> ParseNode() {
    SkipWs();
    if (!Consume('(')) return Fail("expected '(' opening a plan node");
    SkipWs();
    if (!ConsumeWord("op")) return Fail("expected 'op' keyword");
    SkipWs();
    const std::string type_token = ParseQuoted();
    auto node = std::make_unique<PlanNode>(OperatorType::Parse(type_token));
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated plan node (missing ')')");
      }
      if (text_[pos_] == ')') {
        ++pos_;
        return node;
      }
      if (text_[pos_] == '(') {
        auto child = ParseNode();
        if (!child) return nullptr;  // error already recorded
        node->AddChild(std::move(child));
        continue;
      }
      if (text_[pos_] == ':') {
        const size_t key_pos = pos_;
        ++pos_;
        const std::string key = ParseWord();
        SkipWs();
        if (key == "rel") {
          node->AddRelation(ParseWord());
          continue;
        }
        const std::string value = ParseWord();
        bool found = false;
        for (const PropField& field : PropFields()) {
          if (key == field.name) {
            field.set(node->props(), std::strtod(value.c_str(), nullptr));
            found = true;
            break;
          }
        }
        if (!found) {
          return FailAt("unknown property '" + key + "'", key_pos);
        }
        continue;
      }
      return Fail(std::string("unexpected character '") + text_[pos_] + "'");
    }
  }

  // Records the first error (later ones are symptoms of the first).
  std::nullptr_t Fail(const std::string& reason) { return FailAt(reason, pos_); }
  std::nullptr_t FailAt(const std::string& reason, size_t pos) {
    if (error_.empty()) {
      error_ = reason + " at offset " + std::to_string(pos);
    }
    return nullptr;
  }
  const std::string& error() const { return error_; }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string ParseQuoted() {
    std::string out;
    if (!Consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') out.push_back(text_[pos_++]);
    Consume('"');
    return out;
  }

  std::string ParseWord() {
    std::string out;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != ')' && text_[pos_] != '(') {
      out.push_back(text_[pos_++]);
    }
    return out;
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string SerializePlanNode(const PlanNode& node) {
  std::ostringstream oss;
  SerializeNode(node, oss);
  return oss.str();
}

std::string SerializePlan(const Plan& plan) {
  std::ostringstream oss;
  oss << std::setprecision(std::numeric_limits<double>::max_digits10);
  oss << "(plan :benchmark " << (plan.benchmark.empty() ? "-" : plan.benchmark)
      << " :template " << (plan.template_id.empty() ? "-" : plan.template_id)
      << " :cluster " << plan.cluster_id << " ";
  if (plan.root) {
    SerializeNode(*plan.root, oss);
  }
  oss << ")";
  return oss.str();
}

util::StatusOr<std::unique_ptr<PlanNode>> ParsePlanNodeChecked(
    const std::string& text) {
  Parser parser(text);
  auto node = parser.ParseNode();
  if (!node) {
    return util::DataLossError("plan node parse failed: " + parser.error());
  }
  return node;
}

util::StatusOr<Plan> ParsePlanChecked(const std::string& text) {
  Parser parser(text);
  auto fail = [&parser](const std::string& reason) {
    return util::DataLossError("plan parse failed: " + reason + " at offset " +
                               std::to_string(parser.pos()));
  };
  parser.SkipWs();
  if (!parser.Consume('(')) return fail("expected '(' opening the plan");
  parser.SkipWs();
  if (!parser.ConsumeWord("plan")) return fail("expected 'plan' keyword");
  Plan plan;
  while (true) {
    parser.SkipWs();
    if (parser.pos() >= text.size()) {
      return fail("unterminated plan (missing ')')");
    }
    if (parser.Consume(')')) break;
    if (parser.Consume(':')) {
      const std::string key = parser.ParseWord();
      parser.SkipWs();
      const std::string value = parser.ParseWord();
      if (key == "benchmark") {
        plan.benchmark = value == "-" ? "" : value;
      } else if (key == "template") {
        plan.template_id = value == "-" ? "" : value;
      } else if (key == "cluster") {
        plan.cluster_id = std::atoi(value.c_str());
      } else {
        return fail("unknown plan attribute '" + key + "'");
      }
      continue;
    }
    plan.root = parser.ParseNode();
    if (!plan.root) {
      return util::DataLossError("plan parse failed: " + parser.error());
    }
  }
  return plan;
}

std::unique_ptr<PlanNode> ParsePlanNode(const std::string& text) {
  Parser parser(text);
  return parser.ParseNode();
}

std::optional<Plan> ParsePlan(const std::string& text) {
  auto result = ParsePlanChecked(text);
  if (!result.ok()) return std::nullopt;
  return std::move(result.value());
}

}  // namespace qpe::plan
