#ifndef QPE_PLAN_LINEARIZE_H_
#define QPE_PLAN_LINEARIZE_H_

#include <string>
#include <vector>

#include "plan/plan_node.h"
#include "plan/taxonomy.h"

namespace qpe::plan {

// Linearization of a plan tree into a token sequence for the sequence
// encoders (paper §3.1.2). Each token is an OperatorType (three sub-type
// ids); brackets and CLS/SEP delimiters are themselves operator tokens
// ("BR_OPEN-NIL-NIL" etc.).

// DFS-bracket traversal: root-first, with hierarchical brackets around the
// children of every non-leaf node. Children are visited in sorted typename
// order so the linearization of a tree is deterministic (paper Table 3).
// With add_cls_sep, prepends CLS and appends SEP.
std::vector<OperatorType> LinearizeDfsBracket(const PlanNode& root,
                                              bool add_cls_sep = true);

// Appends the same linearization into a caller-owned vector (cleared
// first). The batch packer reuses one scratch vector across plans so
// steady-state packing does no heap allocation.
void LinearizeDfsBracketInto(const PlanNode& root,
                             std::vector<OperatorType>* out,
                             bool add_cls_sep = true);

// Plain BFS and DFS traversals (no brackets); used as contrast baselines in
// tests — they are ambiguous across distinct trees, which DFS-bracket fixes.
std::vector<OperatorType> LinearizeDfs(const PlanNode& root);
std::vector<OperatorType> LinearizeBfs(const PlanNode& root);

// Human-readable rendering "(Sort (Join-Hash Scan-Seq Scan-Index))"-style.
std::string ToBracketString(const std::vector<OperatorType>& tokens);

}  // namespace qpe::plan

#endif  // QPE_PLAN_LINEARIZE_H_
