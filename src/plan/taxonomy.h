#ifndef QPE_PLAN_TAXONOMY_H_
#define QPE_PLAN_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qpe::plan {

// Three-level operator sub-type taxonomy (paper Table 2). Every plan node's
// operator is written <Level1>-<Level2>-<Level3>, e.g. Bitmap Heap Scan is
// Scan-Heap-Bitmap and Left Merge Join is Join-Merge-Left. Missing levels
// use the NIL sub-type. Four special Level-1 tokens are added for the
// sequence model: BR_OPEN, BR_CLOSE (DFS-bracket linearization) and CLS, SEP
// (BERT-style sequence delimiters). Each level additionally reserves an
// UNKNOWN sub-type (its own embedding row) for operator names outside the
// taxonomy — foreign EXPLAIN plans routinely contain operators we have never
// seen, and they must map to a real token instead of an out-of-range id.
class Taxonomy {
 public:
  static const Taxonomy& Get();

  int Level1Count() const { return static_cast<int>(level1_.size()); }
  int Level2Count() const { return static_cast<int>(level2_.size()); }
  int Level3Count() const { return static_cast<int>(level3_.size()); }

  // Lenient lookups: unknown names map to the reserved UNKNOWN sub-type of
  // the level, never to a sentinel a consumer could index with.
  int Level1Id(const std::string& name) const;
  int Level2Id(const std::string& name) const;
  int Level3Id(const std::string& name) const;

  // Strict lookups: -1 if the name is not in the taxonomy. Use these when
  // the caller needs to *detect* a foreign name (ingestion diagnostics).
  int FindLevel1(const std::string& name) const;
  int FindLevel2(const std::string& name) const;
  int FindLevel3(const std::string& name) const;

  // Bounds-safe: ids outside [0, count) name themselves "UNKNOWN" instead of
  // indexing out of the vocabulary (corrupt trees carry arbitrary bytes).
  const std::string& Level1Name(int id) const {
    return level1_[ValidId(id, level1_, unknown1_)];
  }
  const std::string& Level2Name(int id) const {
    return level2_[ValidId(id, level2_, unknown2_)];
  }
  const std::string& Level3Name(int id) const {
    return level3_[ValidId(id, level3_, unknown3_)];
  }

  // Ids of the special tokens (Level 1) and the per-level UNKNOWN tokens.
  int nil1() const { return 0; }
  int nil2() const { return 0; }
  int nil3() const { return 0; }
  int br_open() const { return br_open_; }
  int br_close() const { return br_close_; }
  int cls() const { return cls_; }
  int sep() const { return sep_; }
  int unknown1() const { return unknown1_; }
  int unknown2() const { return unknown2_; }
  int unknown3() const { return unknown3_; }

 private:
  Taxonomy();
  int LookupId(const std::vector<std::string>& names,
               const std::string& name) const;
  static size_t ValidId(int id, const std::vector<std::string>& names,
                        int unknown) {
    return (id < 0 || id >= static_cast<int>(names.size()))
               ? static_cast<size_t>(unknown)
               : static_cast<size_t>(id);
  }

  std::vector<std::string> level1_;
  std::vector<std::string> level2_;
  std::vector<std::string> level3_;
  int br_open_ = -1;
  int br_close_ = -1;
  int cls_ = -1;
  int sep_ = -1;
  int unknown1_ = -1;
  int unknown2_ = -1;
  int unknown3_ = -1;
};

// A concrete operator type: three sub-type ids into the taxonomy.
struct OperatorType {
  uint8_t level1 = 0;  // NIL
  uint8_t level2 = 0;
  uint8_t level3 = 0;

  OperatorType() = default;
  OperatorType(uint8_t l1, uint8_t l2, uint8_t l3)
      : level1(l1), level2(l2), level3(l3) {}

  // Builds from sub-type names; empty names map to NIL, non-empty names
  // outside the taxonomy map to the level's reserved UNKNOWN sub-type.
  static OperatorType FromNames(const std::string& l1, const std::string& l2,
                                const std::string& l3);

  // The fully-unknown operator token (UNKNOWN-NIL-NIL).
  static OperatorType Unknown();

  // Parses "Scan-Heap-Bitmap" / "Sort" / "Join-Merge-Left" style tokens.
  static OperatorType Parse(const std::string& token);

  // Canonical hyphenated token, trailing NILs omitted for readability only
  // when full == false (serialization always uses the full 3-part form).
  std::string ToString(bool full = false) const;

  friend bool operator==(const OperatorType&, const OperatorType&) = default;
  // Lexicographic order on the canonical token; used to sort children so the
  // tree linearization is deterministic.
  bool operator<(const OperatorType& other) const;
};

// The five exclusive functional groups the paper uses for the performance
// encoder (§2.1): Scan, Join, Sort, Aggregate, Other.
enum class OperatorGroup : int {
  kScan = 0,
  kJoin,
  kSort,
  kAggregate,
  kOther,
};

inline constexpr int kNumOperatorGroups = 5;

// Maps an operator type to its functional group. Join-like operators
// (Join-*, Loop-Nested) map to kJoin; Aggregate/Group/GroupAggregate to
// kAggregate; Scan to kScan; Sort to kSort; everything else to kOther.
OperatorGroup GroupOf(const OperatorType& type);

const char* GroupName(OperatorGroup group);

}  // namespace qpe::plan

#endif  // QPE_PLAN_TAXONOMY_H_
