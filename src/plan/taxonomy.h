#ifndef QPE_PLAN_TAXONOMY_H_
#define QPE_PLAN_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qpe::plan {

// Three-level operator sub-type taxonomy (paper Table 2). Every plan node's
// operator is written <Level1>-<Level2>-<Level3>, e.g. Bitmap Heap Scan is
// Scan-Heap-Bitmap and Left Merge Join is Join-Merge-Left. Missing levels
// use the NIL sub-type. Four special Level-1 tokens are added for the
// sequence model: BR_OPEN, BR_CLOSE (DFS-bracket linearization) and CLS, SEP
// (BERT-style sequence delimiters).
class Taxonomy {
 public:
  static const Taxonomy& Get();

  int Level1Count() const { return static_cast<int>(level1_.size()); }
  int Level2Count() const { return static_cast<int>(level2_.size()); }
  int Level3Count() const { return static_cast<int>(level3_.size()); }

  // Returns -1 if the name is unknown.
  int Level1Id(const std::string& name) const;
  int Level2Id(const std::string& name) const;
  int Level3Id(const std::string& name) const;

  const std::string& Level1Name(int id) const { return level1_[id]; }
  const std::string& Level2Name(int id) const { return level2_[id]; }
  const std::string& Level3Name(int id) const { return level3_[id]; }

  // Ids of the special tokens (Level 1).
  int nil1() const { return 0; }
  int nil2() const { return 0; }
  int nil3() const { return 0; }
  int br_open() const { return br_open_; }
  int br_close() const { return br_close_; }
  int cls() const { return cls_; }
  int sep() const { return sep_; }

 private:
  Taxonomy();
  int LookupId(const std::vector<std::string>& names,
               const std::string& name) const;

  std::vector<std::string> level1_;
  std::vector<std::string> level2_;
  std::vector<std::string> level3_;
  int br_open_ = -1;
  int br_close_ = -1;
  int cls_ = -1;
  int sep_ = -1;
};

// A concrete operator type: three sub-type ids into the taxonomy.
struct OperatorType {
  uint8_t level1 = 0;  // NIL
  uint8_t level2 = 0;
  uint8_t level3 = 0;

  OperatorType() = default;
  OperatorType(uint8_t l1, uint8_t l2, uint8_t l3)
      : level1(l1), level2(l2), level3(l3) {}

  // Builds from sub-type names; unknown/empty names map to NIL.
  static OperatorType FromNames(const std::string& l1, const std::string& l2,
                                const std::string& l3);

  // Parses "Scan-Heap-Bitmap" / "Sort" / "Join-Merge-Left" style tokens.
  static OperatorType Parse(const std::string& token);

  // Canonical hyphenated token, trailing NILs omitted for readability only
  // when full == false (serialization always uses the full 3-part form).
  std::string ToString(bool full = false) const;

  friend bool operator==(const OperatorType&, const OperatorType&) = default;
  // Lexicographic order on the canonical token; used to sort children so the
  // tree linearization is deterministic.
  bool operator<(const OperatorType& other) const;
};

// The five exclusive functional groups the paper uses for the performance
// encoder (§2.1): Scan, Join, Sort, Aggregate, Other.
enum class OperatorGroup : int {
  kScan = 0,
  kJoin,
  kSort,
  kAggregate,
  kOther,
};

inline constexpr int kNumOperatorGroups = 5;

// Maps an operator type to its functional group. Join-like operators
// (Join-*, Loop-Nested) map to kJoin; Aggregate/Group/GroupAggregate to
// kAggregate; Scan to kScan; Sort to kSort; everything else to kOther.
OperatorGroup GroupOf(const OperatorType& type);

const char* GroupName(OperatorGroup group);

}  // namespace qpe::plan

#endif  // QPE_PLAN_TAXONOMY_H_
