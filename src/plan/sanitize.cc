#include "plan/sanitize.h"

#include <cmath>
#include <cstddef>
#include <iterator>
#include <sstream>
#include <utility>
#include <vector>

#include "plan/taxonomy.h"

namespace qpe::plan {

namespace {

// Every double-valued property is a count, size, or duration: finite,
// non-negative, bounded. One table drives both repair and validation.
struct DoubleField {
  const char* name;
  double PlanProperties::* member;
};

constexpr DoubleField kDoubleFields[] = {
    {"actual_rows", &PlanProperties::actual_rows},
    {"plan_rows", &PlanProperties::plan_rows},
    {"plan_width", &PlanProperties::plan_width},
    {"shared_hit_blocks", &PlanProperties::shared_hit_blocks},
    {"shared_read_blocks", &PlanProperties::shared_read_blocks},
    {"shared_dirtied_blocks", &PlanProperties::shared_dirtied_blocks},
    {"shared_written_blocks", &PlanProperties::shared_written_blocks},
    {"local_hit_blocks", &PlanProperties::local_hit_blocks},
    {"local_read_blocks", &PlanProperties::local_read_blocks},
    {"local_dirtied_blocks", &PlanProperties::local_dirtied_blocks},
    {"local_written_blocks", &PlanProperties::local_written_blocks},
    {"temp_read_blocks", &PlanProperties::temp_read_blocks},
    {"temp_written_blocks", &PlanProperties::temp_written_blocks},
    {"plan_buffers", &PlanProperties::plan_buffers},
    {"rows_removed_by_filter", &PlanProperties::rows_removed_by_filter},
    {"heap_blocks", &PlanProperties::heap_blocks},
    {"rows_removed_by_join_filter",
     &PlanProperties::rows_removed_by_join_filter},
    {"hash_buckets", &PlanProperties::hash_buckets},
    {"hash_batches", &PlanProperties::hash_batches},
    {"sort_space_used_kb", &PlanProperties::sort_space_used_kb},
    {"num_sort_keys", &PlanProperties::num_sort_keys},
    {"peak_memory_kb", &PlanProperties::peak_memory_kb},
    {"startup_cost", &PlanProperties::startup_cost},
    {"total_cost", &PlanProperties::total_cost},
    {"actual_startup_time_ms", &PlanProperties::actual_startup_time_ms},
    {"actual_total_time_ms", &PlanProperties::actual_total_time_ms},
};

// Categorical codes and their inclusive upper bound (lower bound 0).
struct EnumField {
  const char* name;
  int max_code;
};

int EnumCode(const PlanProperties& p, int index) {
  switch (index) {
    case 0: return static_cast<int>(p.parent_relationship);
    case 1: return static_cast<int>(p.join_kind);
    case 2: return static_cast<int>(p.sort_method);
    case 3: return static_cast<int>(p.aggregate_strategy);
    default: return p.scan_direction;
  }
}

void SetEnumCode(PlanProperties* p, int index, int code) {
  switch (index) {
    case 0: p->parent_relationship = static_cast<ParentRelationship>(code);
            break;
    case 1: p->join_kind = static_cast<JoinKind>(code); break;
    case 2: p->sort_method = static_cast<SortMethod>(code); break;
    case 3: p->aggregate_strategy = static_cast<AggregateStrategy>(code);
            break;
    default: p->scan_direction = code; break;
  }
}

constexpr EnumField kEnumFields[] = {
    {"parent_relationship", 5}, {"join_kind", 6},      {"sort_method", 4},
    {"aggregate_strategy", 4},  {"scan_direction", 1},  // |dir| <= 1
};

bool EnumInRange(int index, int code) {
  // scan_direction is the only signed categorical (-1 backward, +1 forward).
  const int lo = index == 4 ? -1 : 0;
  return code >= lo && code <= kEnumFields[index].max_code;
}

// Repairs one node's operator ids and properties; returns defect counts.
void SanitizeNode(PlanNode* node, const SanitizeLimits& limits,
                  IngestionStats* stats) {
  const Taxonomy& tax = Taxonomy::Get();
  OperatorType type = node->type();
  bool fixed_type = false;
  if (type.level1 >= tax.Level1Count()) {
    type.level1 = static_cast<uint8_t>(tax.unknown1());
    fixed_type = true;
  }
  if (type.level2 >= tax.Level2Count()) {
    type.level2 = static_cast<uint8_t>(tax.unknown2());
    fixed_type = true;
  }
  if (type.level3 >= tax.Level3Count()) {
    type.level3 = static_cast<uint8_t>(tax.unknown3());
    fixed_type = true;
  }
  if (fixed_type) {
    node->set_type(type);
    ++stats->unknown_operators;
  }

  PlanProperties& p = node->props();
  for (const DoubleField& field : kDoubleFields) {
    double& v = p.*(field.member);
    if (!std::isfinite(v)) {
      v = 0;
      ++stats->nonfinite_values;
    } else if (v < 0) {
      v = 0;
      ++stats->negative_values;
    } else if (v > limits.max_abs) {
      v = limits.max_abs;
      ++stats->out_of_range_values;
    }
  }
  for (size_t e = 0; e < std::size(kEnumFields); ++e) {
    const int code = EnumCode(p, static_cast<int>(e));
    if (!EnumInRange(static_cast<int>(e), code)) {
      SetEnumCode(&p, static_cast<int>(e), 0);
      ++stats->invalid_enums;
    }
  }
  // Never-executed / corrupt actuals degrade to estimate-only: the encoders
  // then see the optimizer's cardinality instead of a bogus zero.
  if (!std::isfinite(p.actual_loops) || p.actual_loops < 1) {
    p.actual_loops = 1;
    if (p.actual_rows == 0 && p.actual_total_time_ms == 0) {
      p.actual_rows = p.plan_rows;
    }
    ++stats->missing_actuals;
  } else if (p.actual_loops > limits.max_abs) {
    p.actual_loops = limits.max_abs;
    ++stats->out_of_range_values;
  }
}

}  // namespace

void IngestionStats::Merge(const IngestionStats& other) {
  nodes += other.nodes;
  unknown_operators += other.unknown_operators;
  nonfinite_values += other.nonfinite_values;
  negative_values += other.negative_values;
  out_of_range_values += other.out_of_range_values;
  invalid_enums += other.invalid_enums;
  missing_actuals += other.missing_actuals;
  truncated_depth += other.truncated_depth;
  truncated_children += other.truncated_children;
  unparsed_lines += other.unparsed_lines;
  orphan_nodes += other.orphan_nodes;
}

std::string IngestionStats::ToString() const {
  std::ostringstream out;
  out << "ingestion report: " << nodes << " node(s), " << TotalDefects()
      << " defect(s)";
  if (Clean()) return out.str();
  const std::pair<const char*, int> classes[] = {
      {"unknown operators", unknown_operators},
      {"non-finite values", nonfinite_values},
      {"negative values", negative_values},
      {"out-of-range values", out_of_range_values},
      {"invalid categorical codes", invalid_enums},
      {"missing actuals (estimate-only)", missing_actuals},
      {"depth-cap truncations", truncated_depth},
      {"fan-out truncations", truncated_children},
      {"unparsed lines", unparsed_lines},
      {"orphan root-level nodes", orphan_nodes},
  };
  for (const auto& [name, count] : classes) {
    if (count > 0) out << "\n  " << name << ": " << count;
  }
  return out.str();
}

IngestionStats SanitizePlan(PlanNode* root, const SanitizeLimits& limits) {
  IngestionStats stats;
  if (root == nullptr) return stats;
  // Pre-order walk with an explicit stack; `budget` reserves slots for
  // admitted children so the sanitized tree never exceeds max_nodes.
  int budget = limits.max_nodes - 1;
  std::vector<std::pair<PlanNode*, int>> stack = {{root, 1}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    ++stats.nodes;
    SanitizeNode(node, limits, &stats);

    if (depth >= limits.max_depth && !node->children().empty()) {
      node->DropChildren();
      ++stats.truncated_depth;
      continue;
    }
    const int want = static_cast<int>(node->children().size());
    int admit = want;
    if (admit > limits.max_children) admit = limits.max_children;
    if (admit > budget) admit = budget < 0 ? 0 : budget;
    if (admit < want) {
      node->TruncateChildren(static_cast<size_t>(admit));
      stats.truncated_children += want - admit;
    }
    budget -= admit;
    // Push in reverse so the leftmost child is sanitized (and budgeted)
    // first — the truncation point is then independent of stack effects.
    for (int i = admit - 1; i >= 0; --i) {
      stack.emplace_back(node->children()[i].get(), depth + 1);
    }
  }
  return stats;
}

util::Status ValidatePlan(const PlanNode& root, const SanitizeLimits& limits) {
  const Taxonomy& tax = Taxonomy::Get();
  int index = 0;
  int total = 0;
  std::vector<std::pair<const PlanNode*, int>> stack = {{&root, 1}};
  auto fail = [&](const std::string& what) {
    return util::FailedPreconditionError("plan node #" + std::to_string(index) +
                                         ": " + what);
  };
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    index = total++;
    if (total > limits.max_nodes) {
      return util::FailedPreconditionError(
          "plan exceeds the node budget of " +
          std::to_string(limits.max_nodes));
    }
    if (depth > limits.max_depth) {
      return fail("exceeds the depth cap of " +
                  std::to_string(limits.max_depth));
    }
    const OperatorType type = node->type();
    if (type.level1 >= tax.Level1Count() || type.level2 >= tax.Level2Count() ||
        type.level3 >= tax.Level3Count()) {
      return fail("operator sub-type id out of taxonomy range");
    }
    const PlanProperties& p = node->props();
    for (const DoubleField& field : kDoubleFields) {
      const double v = p.*(field.member);
      if (!std::isfinite(v)) {
        return fail(std::string(field.name) + " is non-finite");
      }
      if (v < 0) {
        return fail(std::string(field.name) + " is negative (" +
                    std::to_string(v) + ")");
      }
      if (v > limits.max_abs) {
        return fail(std::string(field.name) + " exceeds the magnitude cap (" +
                    std::to_string(v) + ")");
      }
    }
    for (size_t e = 0; e < std::size(kEnumFields); ++e) {
      const int code = EnumCode(p, static_cast<int>(e));
      if (!EnumInRange(static_cast<int>(e), code)) {
        return fail(std::string(kEnumFields[e].name) +
                    " has an invalid categorical code (" +
                    std::to_string(code) + ")");
      }
    }
    if (!std::isfinite(p.actual_loops) || p.actual_loops < 1 ||
        p.actual_loops > limits.max_abs) {
      return fail("actual_loops out of range (" +
                  std::to_string(p.actual_loops) + ")");
    }
    if (static_cast<int>(node->children().size()) > limits.max_children) {
      return fail("fan-out exceeds the cap of " +
                  std::to_string(limits.max_children));
    }
    for (auto it = node->children().rbegin(); it != node->children().rend();
         ++it) {
      stack.emplace_back(it->get(), depth + 1);
    }
  }
  return util::OkStatus();
}

}  // namespace qpe::plan
