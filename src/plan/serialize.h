#ifndef QPE_PLAN_SERIALIZE_H_
#define QPE_PLAN_SERIALIZE_H_

#include <memory>
#include <optional>
#include <string>

#include "plan/plan_node.h"
#include "util/status.h"

namespace qpe::plan {

// Plan <-> text round trip. Format is a compact s-expression; one node is
//   (op "Scan-Seq-NIL" :rel lineitem :plan_rows 6000 ... (op ...) (op ...))
// Only non-default properties are emitted. Used for dataset caching, golden
// files in tests, and the examples.

std::string SerializePlanNode(const PlanNode& node);
std::string SerializePlan(const Plan& plan);

// Checked parsers: on malformed input the Status names the reason and the
// byte offset of the first error (e.g. "unknown property 'bogus' at offset
// 42"), so a corrupt corpus line is diagnosable instead of a bare nullopt.
util::StatusOr<std::unique_ptr<PlanNode>> ParsePlanNodeChecked(
    const std::string& text);
util::StatusOr<Plan> ParsePlanChecked(const std::string& text);

// Legacy wrappers: nullptr / nullopt on malformed input, diagnostics dropped.
std::unique_ptr<PlanNode> ParsePlanNode(const std::string& text);
std::optional<Plan> ParsePlan(const std::string& text);

}  // namespace qpe::plan

#endif  // QPE_PLAN_SERIALIZE_H_
