#ifndef QPE_PLAN_FINGERPRINT_H_
#define QPE_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "plan/plan_node.h"
#include "plan/taxonomy.h"

namespace qpe::plan {

// Canonical 64-bit fingerprint of a plan's structure, used as the cache key
// of the embedding-serving layer (serve::EmbeddingCache).
//
// The fingerprint hashes the DFS-bracket linearization — the exact token
// sequence the structure encoders consume. Two plans with the same
// fingerprint therefore produce the same tokens, and (hash collisions
// aside) the same embedding: TransformerPlanEncoder::Encode is a pure
// function of the token sequence. The linearization itself is
// deterministic (children visited in sorted-typename order), so the
// fingerprint is stable across processes, threads and plan-tree clone
// order. Plans should be sanitized (SanitizePlan) before fingerprinting so
// foreign trees with out-of-vocabulary operators map onto the same
// canonical tokens the encoder will see.
//
// The hash is FNV-1a over the three sub-type bytes of every token,
// finalized with a splitmix64 mix so nearby sequences disperse across the
// full 64-bit space (the raw FNV state of short similar sequences is
// clustered, which would skew cache sharding).
uint64_t FingerprintTokens(const std::vector<OperatorType>& tokens);

// Fingerprint of LinearizeDfsBracket(root).
uint64_t FingerprintPlan(const PlanNode& root);

}  // namespace qpe::plan

#endif  // QPE_PLAN_FINGERPRINT_H_
