#include "plan/taxonomy.h"

#include <sstream>

namespace qpe::plan {

Taxonomy::Taxonomy() {
  // Level 1 (paper Table 2 plus Filter from Figure 1 and the four specials).
  level1_ = {"NIL",        "Aggregate", "Append",    "Count",     "Delete",
             "Enum",       "Filter",    "Gather",    "Group",     "GroupAggregate",
             "Hash",       "Insert",    "Intersect", "Join",      "Limit",
             "LockRows",   "Loop",      "Materialize", "ModifyTable", "Network",
             "Result",     "Scan",      "Sequence",  "SetOp",     "Sort",
             "Union",      "Unique",    "Update",    "Window",    "WindowAgg",
             "BR_OPEN",    "BR_CLOSE",  "CLS",       "SEP",       "UNKNOWN"};
  level2_ = {"NIL",   "And",      "CTE",    "Except", "Exists", "Foreign",
             "Hash",  "Heap",     "Index",  "IndexOnly", "LoopHash", "Merge",
             "Nested", "Or",      "Query",  "Quick",  "Seq",    "SetOp",
             "Subquery", "Table", "WorkTable", "UNKNOWN"};
  level3_ = {"NIL",  "Anti",    "Bitmap",  "Full",     "Inner", "Left",
             "Outer", "Parallel", "Partial", "Partition", "Right", "Semi",
             "XN",    "UNKNOWN"};
  // UNKNOWN tokens are appended last so every pre-existing id is stable.
  br_open_ = LookupId(level1_, "BR_OPEN");
  br_close_ = LookupId(level1_, "BR_CLOSE");
  cls_ = LookupId(level1_, "CLS");
  sep_ = LookupId(level1_, "SEP");
  unknown1_ = LookupId(level1_, "UNKNOWN");
  unknown2_ = LookupId(level2_, "UNKNOWN");
  unknown3_ = LookupId(level3_, "UNKNOWN");
}

const Taxonomy& Taxonomy::Get() {
  static const Taxonomy* const kInstance = new Taxonomy();
  return *kInstance;
}

int Taxonomy::LookupId(const std::vector<std::string>& names,
                       const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int Taxonomy::Level1Id(const std::string& name) const {
  const int id = LookupId(level1_, name);
  return id < 0 ? unknown1_ : id;
}
int Taxonomy::Level2Id(const std::string& name) const {
  const int id = LookupId(level2_, name);
  return id < 0 ? unknown2_ : id;
}
int Taxonomy::Level3Id(const std::string& name) const {
  const int id = LookupId(level3_, name);
  return id < 0 ? unknown3_ : id;
}

int Taxonomy::FindLevel1(const std::string& name) const {
  return LookupId(level1_, name);
}
int Taxonomy::FindLevel2(const std::string& name) const {
  return LookupId(level2_, name);
}
int Taxonomy::FindLevel3(const std::string& name) const {
  return LookupId(level3_, name);
}

OperatorType OperatorType::FromNames(const std::string& l1,
                                     const std::string& l2,
                                     const std::string& l3) {
  const Taxonomy& tax = Taxonomy::Get();
  return OperatorType(
      static_cast<uint8_t>(l1.empty() ? 0 : tax.Level1Id(l1)),
      static_cast<uint8_t>(l2.empty() ? 0 : tax.Level2Id(l2)),
      static_cast<uint8_t>(l3.empty() ? 0 : tax.Level3Id(l3)));
}

OperatorType OperatorType::Unknown() {
  const Taxonomy& tax = Taxonomy::Get();
  return OperatorType(static_cast<uint8_t>(tax.unknown1()), 0, 0);
}

OperatorType OperatorType::Parse(const std::string& token) {
  std::string parts[3];
  int part = 0;
  for (char c : token) {
    if (c == '-') {
      if (++part >= 3) break;
    } else {
      parts[part].push_back(c);
    }
  }
  return FromNames(parts[0], parts[1], parts[2]);
}

std::string OperatorType::ToString(bool full) const {
  const Taxonomy& tax = Taxonomy::Get();
  std::ostringstream oss;
  oss << tax.Level1Name(level1);
  if (full || level2 != 0 || level3 != 0) oss << "-" << tax.Level2Name(level2);
  if (full || level3 != 0) oss << "-" << tax.Level3Name(level3);
  return oss.str();
}

bool OperatorType::operator<(const OperatorType& other) const {
  return ToString(true) < other.ToString(true);
}

OperatorGroup GroupOf(const OperatorType& type) {
  const Taxonomy& tax = Taxonomy::Get();
  const std::string& l1 = tax.Level1Name(type.level1);
  const std::string& l2 = tax.Level2Name(type.level2);
  if (l1 == "Scan") return OperatorGroup::kScan;
  if (l1 == "Join") return OperatorGroup::kJoin;
  if (l1 == "Loop" && l2 == "Nested") return OperatorGroup::kJoin;
  if (l1 == "Sort") return OperatorGroup::kSort;
  if (l1 == "Aggregate" || l1 == "Group" || l1 == "GroupAggregate" ||
      l1 == "WindowAgg") {
    return OperatorGroup::kAggregate;
  }
  return OperatorGroup::kOther;
}

const char* GroupName(OperatorGroup group) {
  switch (group) {
    case OperatorGroup::kScan:
      return "Scan";
    case OperatorGroup::kJoin:
      return "Join";
    case OperatorGroup::kSort:
      return "Sort";
    case OperatorGroup::kAggregate:
      return "Aggregate";
    case OperatorGroup::kOther:
      return "Other";
  }
  return "Unknown";
}

}  // namespace qpe::plan
