#ifndef QPE_PLAN_EXPLAIN_H_
#define QPE_PLAN_EXPLAIN_H_

#include <string>

#include "plan/plan_node.h"

namespace qpe::plan {

// Renders a plan the way `EXPLAIN (ANALYZE, BUFFERS)` prints it — an
// indented operator tree with estimates, actuals, and buffer counts:
//
//   Sort  (cost=98.2..98.2 rows=13 width=64) (actual time=12.4..12.5 rows=11)
//     Sort Method: quicksort  Memory: 25kB
//     ->  Hash Join  (cost=0.4..91.1 rows=13 width=64) (actual ...)
//           Hash Batches: 1  Peak Memory: 12kB
//           ->  Seq Scan on lineitem  (...)
//
// Used by the examples and invaluable when debugging the simulator.
struct ExplainOptions {
  bool analyze = true;  // include actual rows/time (ANALYZE)
  bool buffers = true;  // include shared/temp buffer counts (BUFFERS)
};

std::string Explain(const PlanNode& root, const ExplainOptions& options = {});

}  // namespace qpe::plan

#endif  // QPE_PLAN_EXPLAIN_H_
