#ifndef QPE_PLAN_SANITIZE_H_
#define QPE_PLAN_SANITIZE_H_

#include <string>

#include "plan/plan_node.h"
#include "util/status.h"

namespace qpe::plan {

// Ingestion boundary for foreign plans (the paper's crowdsourced
// explain.depesz corpus, §4): every plan that did not come out of our own
// simulator passes through SanitizePlan before any encoder sees it, so that
// malformed trees degrade gracefully instead of crashing a kernel or
// yielding a silent NaN embedding.

// How the ingestion boundary treats defects: lenient repairs them (clamp,
// substitute, truncate) and counts each repair; strict rejects the plan at
// the first defect with a descriptive Status.
enum class IngestionPolicy { kLenient = 0, kStrict };

// Structural and numeric caps. Trees beyond them are truncated
// *deterministically* (keep the first children in tree order) so the same
// input always yields the same sanitized plan.
struct SanitizeLimits {
  int max_depth = 64;       // nodes deeper than this lose their children
  int max_children = 16;    // per-node fan-out cap
  int max_nodes = 512;      // whole-tree budget (paper prunes >200-node plans)
  double max_abs = 1e12;    // magnitude cap for every numeric property
};

// Per-defect-class counters, accumulated across parsing (ParseExplain),
// sanitization (SanitizePlan), and featurization (data::NodeFeatures).
struct IngestionStats {
  int nodes = 0;               // nodes inspected
  int unknown_operators = 0;   // names mapped to the UNKNOWN sub-type
  int nonfinite_values = 0;    // NaN/Inf properties zeroed
  int negative_values = 0;     // negative-where-count properties clamped to 0
  int out_of_range_values = 0; // |v| > max_abs clamped to the cap
  int invalid_enums = 0;       // categorical codes outside the enum range
  int missing_actuals = 0;     // nodes degraded to estimate-only features
  int truncated_depth = 0;     // subtrees dropped at the depth cap
  int truncated_children = 0;  // children dropped at the fan-out/node caps
  int unparsed_lines = 0;      // EXPLAIN lines skipped by the lenient parser
  int orphan_nodes = 0;        // extra root-level nodes grafted under the root

  int TotalDefects() const {
    return unknown_operators + nonfinite_values + negative_values +
           out_of_range_values + invalid_enums + missing_actuals +
           truncated_depth + truncated_children + unparsed_lines +
           orphan_nodes;
  }
  bool Clean() const { return TotalDefects() == 0; }

  void Merge(const IngestionStats& other);

  // Human-readable defect report ("ingestion report: 3 defect(s) ...").
  std::string ToString() const;
};

// Repairs a plan tree in place and reports what was repaired:
//   - non-finite numeric properties -> 0            (nonfinite_values)
//   - negative count/size properties -> 0           (negative_values)
//   - |value| above limits.max_abs -> the cap       (out_of_range_values)
//   - categorical codes outside their enum -> 0     (invalid_enums)
//   - actual_loops < 1 -> estimate-only degradation (missing_actuals)
//   - depth/fan-out/node-budget overflow -> deterministic truncation
// Iterative (never recurses), so adversarially deep trees are safe.
IngestionStats SanitizePlan(PlanNode* root, const SanitizeLimits& limits = {});

// Strict-mode validation: OK iff SanitizePlan would be a no-op. The error
// message names the first offending node (pre-order index), property, and
// value. Never mutates the tree.
util::Status ValidatePlan(const PlanNode& root,
                          const SanitizeLimits& limits = {});

}  // namespace qpe::plan

#endif  // QPE_PLAN_SANITIZE_H_
