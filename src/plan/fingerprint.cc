#include "plan/fingerprint.h"

#include "plan/linearize.h"

namespace qpe::plan {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t FnvByte(uint64_t h, uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

// splitmix64 finalizer (Steele et al.): full-avalanche mix of the FNV state.
inline uint64_t Mix(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

uint64_t FingerprintTokens(const std::vector<OperatorType>& tokens) {
  uint64_t h = kFnvOffset;
  for (const OperatorType& t : tokens) {
    h = FnvByte(h, t.level1);
    h = FnvByte(h, t.level2);
    h = FnvByte(h, t.level3);
  }
  return Mix(h);
}

uint64_t FingerprintPlan(const PlanNode& root) {
  return FingerprintTokens(LinearizeDfsBracket(root));
}

}  // namespace qpe::plan
