#ifndef QPE_PLAN_EXPLAIN_PARSER_H_
#define QPE_PLAN_EXPLAIN_PARSER_H_

#include <memory>
#include <string>

#include "plan/plan_node.h"
#include "plan/sanitize.h"
#include "util/status.h"

namespace qpe::plan {

// Inverse of Explain(): parses PostgreSQL-style indented
// `EXPLAIN (ANALYZE, BUFFERS)` text back into a PlanNode tree.
//
//   Sort  (cost=98.20..98.20 rows=13 width=64) (actual time=12.400..12.500 rows=11 loops=1)
//     Sort Method: quicksort  Memory: 25kB
//     ->  Hash Join  (cost=0.40..91.10 rows=13 width=64) (actual ...)
//           ->  Seq Scan on lineitem  (...)
//
// Guarantees:
//   - For text produced by our own Explain(), the round trip
//     Explain -> ParseExplain -> Explain is byte-identical.
//   - Foreign plans (crowdsourced EXPLAIN ANALYZE output, QPE §4) are
//     ingested gracefully: operator names outside the taxonomy map to the
//     UNKNOWN sub-type, missing actual clauses degrade to estimate-only,
//     and unparseable detail lines are skipped — each defect is counted in
//     IngestionStats and described in the warning log with its line/column.
//   - Strict policy rejects the input at the first defect with a Status
//     carrying "line L, col C: reason"; no partial tree is ever returned.
struct ParseExplainOptions {
  IngestionPolicy policy = IngestionPolicy::kLenient;
  size_t max_warnings = 64;  // warning-log capacity (overflow is counted)
};

struct ParsedExplain {
  std::unique_ptr<PlanNode> root;
  IngestionStats stats;       // parse-side defect counts
  util::WarningLog warnings;  // one entry per repaired defect
};

util::StatusOr<ParsedExplain> ParseExplain(
    const std::string& text, const ParseExplainOptions& options = {});

}  // namespace qpe::plan

#endif  // QPE_PLAN_EXPLAIN_PARSER_H_
