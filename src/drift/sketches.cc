#include "drift/sketches.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace qpe::drift {

uint64_t MixU64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

BloomFilter::BloomFilter(size_t bits, int hashes)
    : bits_(((std::max<size_t>(bits, 64) + 63) / 64) * 64),
      hashes_(std::max(hashes, 1)),
      words_(bits_ / 64, 0) {}

void BloomFilter::Insert(uint64_t key) {
  const uint64_t h1 = MixU64(key);
  const uint64_t h2 = MixU64(key ^ 0xA24BAED4963EE407ULL) | 1;  // odd stride
  for (int i = 0; i < hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits_;
    words_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++inserted_;
}

bool BloomFilter::MightContain(uint64_t key) const {
  const uint64_t h1 = MixU64(key);
  const uint64_t h2 = MixU64(key ^ 0xA24BAED4963EE407ULL) | 1;
  for (int i = 0; i < hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

double BloomFilter::FillRatio() const {
  uint64_t set = 0;
  for (uint64_t w : words_) set += static_cast<uint64_t>(std::popcount(w));
  return static_cast<double>(set) / static_cast<double>(bits_);
}

CountMinSketch::CountMinSketch(size_t width, int depth)
    : width_(std::max<size_t>(width, 16)),
      depth_(std::max(depth, 1)),
      counts_(width_ * static_cast<size_t>(depth_), 0) {}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  for (int row = 0; row < depth_; ++row) {
    const uint64_t h =
        MixU64(key ^ (0x6C62272E07BB0142ULL * static_cast<uint64_t>(row + 1)));
    counts_[static_cast<size_t>(row) * width_ + h % width_] += count;
  }
  total_ += count;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (int row = 0; row < depth_; ++row) {
    const uint64_t h =
        MixU64(key ^ (0x6C62272E07BB0142ULL * static_cast<uint64_t>(row + 1)));
    best = std::min(best,
                    counts_[static_cast<size_t>(row) * width_ + h % width_]);
  }
  return best == std::numeric_limits<uint64_t>::max() ? 0 : best;
}

void CountMinSketch::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

namespace {

float SquaredDistance(const float* a, const float* b, size_t dim) {
  float sum = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

int NearestCentroid(const CentroidSet& set, const float* point, size_t dim,
                    float* distance) {
  int best = -1;
  float best_sq = std::numeric_limits<float>::max();
  for (int c = 0; c < set.cluster_count(); ++c) {
    if (set.centroids[c].size() != dim) continue;
    const float sq = SquaredDistance(set.centroids[c].data(), point, dim);
    if (sq < best_sq) {
      best_sq = sq;
      best = c;
    }
  }
  if (distance != nullptr) {
    *distance = best < 0 ? 0.0f : std::sqrt(best_sq);
  }
  return best;
}

CentroidSet KMeansCluster(const std::vector<std::vector<float>>& points,
                          int k, int iterations, util::Rng* rng,
                          std::vector<float>* nearest_out) {
  CentroidSet set;
  if (points.empty() || k <= 0) return set;
  const size_t dim = points[0].size();
  const int n = static_cast<int>(points.size());
  k = std::min(k, n);

  // k-means++ seeding: first centroid uniform, the rest proportional to the
  // squared distance from the nearest chosen centroid.
  std::vector<float> d2(n, std::numeric_limits<float>::max());
  set.centroids.push_back(points[rng->UniformInt(0, n - 1)]);
  while (static_cast<int>(set.centroids.size()) < k) {
    double total = 0;
    for (int i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], SquaredDistance(set.centroids.back().data(),
                                              points[i].data(), dim));
      total += d2[i];
    }
    int pick = 0;
    if (total > 0) {
      double target = rng->Uniform() * total;
      for (int i = 0; i < n; ++i) {
        target -= d2[i];
        if (target <= 0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<int>(rng->UniformInt(0, n - 1));
    }
    set.centroids.push_back(points[pick]);
  }

  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < std::max(iterations, 1); ++iter) {
    bool moved = false;
    for (int i = 0; i < n; ++i) {
      const int c = NearestCentroid(set, points[i].data(), dim, nullptr);
      if (c != assignment[i]) {
        assignment[i] = c;
        moved = true;
      }
    }
    std::vector<std::vector<double>> sums(
        k, std::vector<double>(dim, 0.0));
    std::vector<int> counts(k, 0);
    for (int i = 0; i < n; ++i) {
      for (size_t d = 0; d < dim; ++d) sums[assignment[i]][d] += points[i][d];
      ++counts[assignment[i]];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its centroid.
        int farthest = 0;
        float worst = -1.0f;
        for (int i = 0; i < n; ++i) {
          const float sq = SquaredDistance(
              set.centroids[assignment[i]].data(), points[i].data(), dim);
          if (sq > worst) {
            worst = sq;
            farthest = i;
          }
        }
        set.centroids[c] = points[farthest];
        moved = true;
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        set.centroids[c][d] =
            static_cast<float>(sums[c][d] / static_cast<double>(counts[c]));
      }
    }
    if (!moved && iter > 0) break;
  }

  // Final assignment for occupancy and the per-point nearest distances.
  std::vector<int> counts(k, 0);
  if (nearest_out != nullptr) nearest_out->assign(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    float dist = 0.0f;
    const int c = NearestCentroid(set, points[i].data(), dim, &dist);
    ++counts[c];
    if (nearest_out != nullptr) (*nearest_out)[i] = dist;
  }
  set.occupancy.resize(k);
  for (int c = 0; c < k; ++c) {
    set.occupancy[c] = static_cast<double>(counts[c]) / static_cast<double>(n);
  }
  return set;
}

}  // namespace qpe::drift
