#ifndef QPE_DRIFT_DETECTOR_H_
#define QPE_DRIFT_DETECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "drift/baseline.h"
#include "drift/sketches.h"
#include "plan/plan_node.h"

namespace qpe::drift {

// Which sketch dominates a window's fused score — the coarse half of
// attribution ("what kind of drift is this").
enum class DriftComponent : uint8_t {
  kNovelPlans = 0,   // never-before-seen plan fingerprints
  kTokenShift = 1,   // operator-mix change (e.g. a knob flipping scan types)
  kClusterShift = 2, // embedding mass moving between known clusters/outliers
};
const char* DriftComponentName(DriftComponent component);

struct TokenAttribution {
  uint32_t code = 0;
  std::string name;          // "Scan-Heap-Bitmap"
  double baseline_freq = 0;  // fraction of training tokens
  double window_freq = 0;    // fraction of window tokens
  double delta = 0;          // window - baseline (signed)
};

struct ClusterAttribution {
  int cluster = -1;  // -1 is the outlier bucket
  double baseline_occupancy = 0;
  double window_occupancy = 0;
  double delta = 0;
};

// One closed window's verdict. All scores live in [0, 1].
struct DriftWindowReport {
  uint64_t window_index = 0;
  size_t plans = 0;

  double novel_rate = 0;    // fraction of plans with unseen fingerprints
  double novel_score = 0;   // novel_rate above the configured tolerance
  double token_score = 0;   // total-variation distance of token frequencies
  double cluster_score = 0; // total-variation distance of cluster occupancy
  double outlier_rate = 0;  // fraction of embeddings past the threshold

  double score = 0;  // fused: max of the component scores
  DriftComponent dominant = DriftComponent::kNovelPlans;

  // Top-|delta| attribution, largest first.
  std::vector<TokenAttribution> top_tokens;
  std::vector<ClusterAttribution> top_clusters;
};

struct DriftDetectorConfig {
  int window_size = 64;  // plans per window
  // Novel-plan slack: literal jitter and bloom saturation make a small
  // trickle of unseen fingerprints normal; only the excess scores.
  double novel_tolerance = 0.05;
  int top_attributions = 3;
  size_t sketch_width = 1024;
  int sketch_depth = 4;
};

// Folds one served plan + its embedding at a time into the current window;
// when the window closes, compares it against the frozen DriftBaseline and
// emits a DriftWindowReport. Single-threaded by design — the thread-safe
// wrapper is drift::DriftSentinel.
class DriftDetector {
 public:
  DriftDetector(DriftBaseline baseline, const DriftDetectorConfig& config = {});

  // `embedding` is the plan's served embedding (baseline().dim floats).
  // Returns a report iff this observation closed a window.
  std::optional<DriftWindowReport> Observe(const plan::PlanNode& plan,
                                           const float* embedding, size_t dim);

  // Hot-path variant for callers that already hold the linearization and
  // its fingerprint (the sentinel computes both once per served plan).
  std::optional<DriftWindowReport> ObserveTokens(
      const std::vector<plan::OperatorType>& tokens, uint64_t fingerprint,
      const float* embedding, size_t dim);

  // Swaps in a fresh baseline (post-adaptation) and resets the window.
  void Rebaseline(DriftBaseline baseline);

  const DriftBaseline& baseline() const { return baseline_; }
  uint64_t windows_closed() const { return windows_closed_; }

 private:
  DriftWindowReport CloseWindow();
  void ResetWindow();

  DriftBaseline baseline_;
  DriftDetectorConfig config_;
  uint64_t windows_closed_ = 0;

  // Current-window accumulators.
  size_t window_plans_ = 0;
  size_t window_novel_ = 0;
  CountMinSketch window_tokens_;
  uint64_t window_token_total_ = 0;
  std::unordered_set<uint32_t> window_codes_;  // distinct codes this window
  std::vector<uint64_t> window_cluster_counts_;  // k clusters + outlier slot
};

}  // namespace qpe::drift

#endif  // QPE_DRIFT_DETECTOR_H_
