#include "drift/monitor.h"

#include <algorithm>

namespace qpe::drift {

const char* DriftStateName(DriftState state) {
  switch (state) {
    case DriftState::kHealthy:
      return "HEALTHY";
    case DriftState::kSuspect:
      return "SUSPECT";
    case DriftState::kDrifted:
      return "DRIFTED";
    case DriftState::kAdapting:
      return "ADAPTING";
  }
  return "UNKNOWN";
}

DriftMonitor::DriftMonitor(const DriftMonitorConfig& config) : config_(config) {
  // The no-flap contract: a single high window can never reach DRIFTED.
  config_.windows_to_drift = std::max(config_.windows_to_drift, 2);
  config_.windows_to_recover = std::max(config_.windows_to_recover, 1);
}

DriftState DriftMonitor::OnWindow(const DriftWindowReport& report) {
  last_score_ = report.score;
  if (state_ == DriftState::kAdapting) return state_;

  // Streaks are tracked independently of the current state so the window
  // that pushes HEALTHY into SUSPECT already counts toward the drift streak.
  if (report.score >= config_.drift_threshold) {
    ++high_streak_;
  } else {
    high_streak_ = 0;
  }
  if (report.score < config_.suspect_threshold) {
    ++low_streak_;
  } else {
    low_streak_ = 0;
  }

  switch (state_) {
    case DriftState::kHealthy:
      if (report.score >= config_.suspect_threshold) {
        state_ = DriftState::kSuspect;
      }
      break;
    case DriftState::kSuspect:
      if (high_streak_ >= config_.windows_to_drift) {
        state_ = DriftState::kDrifted;
        ++alarms_;
      } else if (low_streak_ >= config_.windows_to_recover) {
        state_ = DriftState::kHealthy;
      }
      break;
    case DriftState::kDrifted:
      if (low_streak_ >= config_.windows_to_recover) {
        // The workload reverted before adaptation kicked in.
        state_ = DriftState::kHealthy;
      }
      break;
    case DriftState::kAdapting:
      break;  // unreachable (early return above)
  }
  return state_;
}

bool DriftMonitor::BeginAdaptation() {
  if (state_ != DriftState::kDrifted) return false;
  state_ = DriftState::kAdapting;
  return true;
}

void DriftMonitor::CompleteAdaptation() {
  if (state_ != DriftState::kAdapting) return;
  state_ = DriftState::kHealthy;
  high_streak_ = 0;
  low_streak_ = 0;
  last_score_ = 0;
}

void DriftMonitor::AbortAdaptation() {
  if (state_ != DriftState::kAdapting) return;
  state_ = DriftState::kDrifted;
}

void DriftMonitor::ForceAdapting() {
  state_ = DriftState::kAdapting;
  high_streak_ = 0;
  low_streak_ = 0;
}

}  // namespace qpe::drift
