#include "drift/baseline.h"

#include <algorithm>
#include <cmath>

#include "nn/arena.h"
#include "nn/tensor.h"
#include "plan/fingerprint.h"
#include "plan/linearize.h"
#include "util/rng.h"

namespace qpe::drift {

uint32_t TokenCode(const plan::OperatorType& type) {
  return (static_cast<uint32_t>(type.level1) << 16) |
         (static_cast<uint32_t>(type.level2) << 8) |
         static_cast<uint32_t>(type.level3);
}

bool IsStructuralToken(const plan::OperatorType& type) {
  const plan::Taxonomy& tax = plan::Taxonomy::Get();
  const int l1 = type.level1;
  return l1 == tax.br_open() || l1 == tax.br_close() || l1 == tax.cls() ||
         l1 == tax.sep();
}

std::string TokenCodeName(uint32_t code) {
  const plan::OperatorType type(static_cast<uint8_t>((code >> 16) & 0xFF),
                                static_cast<uint8_t>((code >> 8) & 0xFF),
                                static_cast<uint8_t>(code & 0xFF));
  return type.ToString(/*full=*/false);
}

DriftBaseline BuildDriftBaseline(
    const encoder::PlanSequenceEncoder& encoder,
    const std::vector<const plan::PlanNode*>& plans,
    const DriftBaselineConfig& config) {
  DriftBaseline baseline;
  baseline.config = config;
  baseline.dim = encoder.output_dim();
  baseline.plans = plans.size();
  baseline.bloom = BloomFilter(config.bloom_bits, config.bloom_hashes);
  baseline.outlier_occupancy = std::clamp(1.0 - config.outlier_quantile,
                                          0.0, 1.0);
  if (plans.empty()) return baseline;

  // Token frequencies + fingerprint bloom straight off the linearizations.
  std::unordered_map<uint32_t, uint64_t> token_counts;
  uint64_t total_tokens = 0;
  for (const plan::PlanNode* plan : plans) {
    const std::vector<plan::OperatorType> tokens =
        plan::LinearizeDfsBracket(*plan);
    baseline.bloom.Insert(plan::FingerprintTokens(tokens));
    for (const plan::OperatorType& token : tokens) {
      if (IsStructuralToken(token)) continue;
      ++token_counts[TokenCode(token)];
      ++total_tokens;
    }
  }
  if (total_tokens > 0) {
    for (const auto& [code, count] : token_counts) {
      baseline.token_freq[code] =
          static_cast<double>(count) / static_cast<double>(total_tokens);
    }
  }

  // Embedding-space summary: encode everything (eval mode), cluster, and
  // set the outlier threshold at the configured quantile of the training
  // nearest-centroid distances.
  std::vector<std::vector<float>> points;
  points.reserve(plans.size());
  {
    nn::ArenaScope arena;
    nn::NoGradGuard no_grad;
    const std::vector<nn::Tensor> embedded = encoder.EncodeBatch(
        std::span<const plan::PlanNode* const>(plans.data(), plans.size()),
        /*dropout_rng=*/nullptr);
    for (const nn::Tensor& t : embedded) points.push_back(t.value());
  }
  util::Rng rng(config.seed);
  std::vector<float> nearest;
  baseline.centroids = KMeansCluster(points, config.clusters,
                                     config.kmeans_iterations, &rng, &nearest);
  if (!nearest.empty()) {
    std::sort(nearest.begin(), nearest.end());
    const double q = std::clamp(config.outlier_quantile, 0.0, 1.0);
    const size_t idx = std::min(
        nearest.size() - 1,
        static_cast<size_t>(q * static_cast<double>(nearest.size() - 1) + 0.5));
    baseline.centroids.outlier_threshold = nearest[idx];
  }
  return baseline;
}

}  // namespace qpe::drift
