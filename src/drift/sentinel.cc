#include "drift/sentinel.h"

#include <utility>

#include "plan/fingerprint.h"
#include "plan/linearize.h"
#include "plan/serialize.h"

namespace qpe::drift {

DriftSentinel::DriftSentinel(DriftBaseline baseline,
                             const DriftSentinelConfig& config)
    : config_(config),
      detector_(std::move(baseline), config.detector),
      monitor_(config.monitor) {
  if (config_.slice_capacity == 0) config_.slice_capacity = 1;
  state_atomic_.store(static_cast<uint8_t>(monitor_.state()),
                      std::memory_order_relaxed);
}

void DriftSentinel::Observe(const plan::PlanNode& plan, const float* embedding,
                            size_t dim) {
  // Linearize + fingerprint outside the lock: it is the expensive part of
  // an observation and needs no shared state.
  const std::vector<plan::OperatorType> tokens =
      plan::LinearizeDfsBracket(plan);
  const uint64_t fingerprint = plan::FingerprintTokens(tokens);

  std::lock_guard<std::mutex> lock(mu_);
  ++observed_;
  const bool novel = !detector_.baseline().bloom.MightContain(fingerprint);
  std::optional<DriftWindowReport> report =
      detector_.ObserveTokens(tokens, fingerprint, embedding, dim);
  if (report.has_value()) {
    monitor_.OnWindow(*report);
    last_report_ = std::move(*report);
    has_report_ = true;
  }
  // Slice collection: novel plans always (they are what adaptation must
  // learn), everything once the monitor is suspicious (a knob shift keeps
  // fingerprints known but changes the mix — the slice must reflect it).
  if ((novel || monitor_.state() != DriftState::kHealthy) &&
      slice_keys_.insert(fingerprint).second) {
    slice_.emplace_back(fingerprint, plan::SerializePlanNode(plan));
    while (slice_.size() > config_.slice_capacity) {
      slice_keys_.erase(slice_.front().first);
      slice_.pop_front();
    }
  }
  PublishLocked();
}

void DriftSentinel::PublishLocked() {
  state_atomic_.store(static_cast<uint8_t>(monitor_.state()),
                      std::memory_order_relaxed);
  score_atomic_.store(static_cast<float>(monitor_.last_score()),
                      std::memory_order_relaxed);
}

DriftStatusSnapshot DriftSentinel::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftStatusSnapshot snapshot;
  snapshot.state = monitor_.state();
  snapshot.last_score = monitor_.last_score();
  snapshot.windows = detector_.windows_closed();
  snapshot.alarms = monitor_.alarms();
  snapshot.observed_plans = observed_;
  snapshot.slice_size = slice_.size();
  snapshot.has_report = has_report_;
  if (has_report_) snapshot.last_report = last_report_;
  return snapshot;
}

std::vector<std::string> DriftSentinel::SliceSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(slice_.size());
  for (const auto& [key, text] : slice_) out.push_back(text);
  return out;
}

bool DriftSentinel::BeginAdaptation() {
  std::lock_guard<std::mutex> lock(mu_);
  const bool ok = monitor_.BeginAdaptation();
  PublishLocked();
  return ok;
}

void DriftSentinel::CompleteAdaptation(DriftBaseline new_baseline) {
  std::lock_guard<std::mutex> lock(mu_);
  detector_.Rebaseline(std::move(new_baseline));
  monitor_.CompleteAdaptation();
  slice_.clear();
  slice_keys_.clear();
  has_report_ = false;
  last_report_ = DriftWindowReport{};
  PublishLocked();
}

void DriftSentinel::AbortAdaptation() {
  std::lock_guard<std::mutex> lock(mu_);
  monitor_.AbortAdaptation();
  PublishLocked();
}

void DriftSentinel::ForceAdapting() {
  std::lock_guard<std::mutex> lock(mu_);
  monitor_.ForceAdapting();
  PublishLocked();
}

}  // namespace qpe::drift
