#ifndef QPE_DRIFT_MONITOR_H_
#define QPE_DRIFT_MONITOR_H_

#include <cstdint>

#include "drift/detector.h"

namespace qpe::drift {

// The sentinel's serving state. Values are stable wire constants: they ride
// in the v2 ENCODE-response drift trailer, so reordering them is a protocol
// break.
enum class DriftState : uint8_t {
  kHealthy = 0,
  kSuspect = 1,   // score crossed the suspect threshold; watching
  kDrifted = 2,   // sustained drift: serving is stale, adaptation due
  kAdapting = 3,  // incremental fine-tune in flight; still serving stale
};
const char* DriftStateName(DriftState state);

struct DriftMonitorConfig {
  double suspect_threshold = 0.25;
  double drift_threshold = 0.45;
  // Consecutive windows at/above drift_threshold before DRIFTED. >= 2 by
  // contract so a single bursty window can never flap the state machine.
  int windows_to_drift = 2;
  // Consecutive windows below suspect_threshold before recovering to
  // HEALTHY (from SUSPECT, or from DRIFTED if the workload reverts on its
  // own before adaptation starts).
  int windows_to_recover = 3;
};

// Hysteresis state machine over the detector's window scores:
//
//            score >= suspect                high streak >= windows_to_drift
//   HEALTHY ----------------> SUSPECT -----------------------------> DRIFTED
//      ^                        |  ^                                    |
//      |  low streak >=         |  |                                    | BeginAdaptation()
//      |  windows_to_recover    |  |        score >= suspect            v
//      +------------------------+  +--------------------------------ADAPTING
//      ^                                                                |
//      +----------------------------------------------------------------+
//                        CompleteAdaptation()
//
// OnWindow drives the score-based edges; Begin/Complete/AbortAdaptation are
// the daemon's explicit edges. ADAPTING ignores scores entirely — the
// detector is still comparing against the *old* baseline while the new one
// is being trained.
class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftMonitorConfig& config = {});

  DriftState OnWindow(const DriftWindowReport& report);

  // DRIFTED -> ADAPTING. Returns false (no-op) from any other state.
  bool BeginAdaptation();
  // ADAPTING -> HEALTHY (adaptation committed; detector rebaselined).
  void CompleteAdaptation();
  // ADAPTING -> DRIFTED (adaptation failed; still stale, retry eligible).
  void AbortAdaptation();
  // Restart path: a persisted adaptation manifest proves the daemon died
  // mid-ADAPTING; re-enter it directly.
  void ForceAdapting();

  DriftState state() const { return state_; }
  // Responses must flag staleness the moment drift is declared and keep
  // flagging it until the refreshed model is actually serving.
  bool stale() const {
    return state_ == DriftState::kDrifted || state_ == DriftState::kAdapting;
  }
  uint64_t alarms() const { return alarms_; }
  int high_streak() const { return high_streak_; }
  int low_streak() const { return low_streak_; }
  double last_score() const { return last_score_; }
  const DriftMonitorConfig& config() const { return config_; }

 private:
  DriftMonitorConfig config_;
  DriftState state_ = DriftState::kHealthy;
  uint64_t alarms_ = 0;
  int high_streak_ = 0;
  int low_streak_ = 0;
  double last_score_ = 0;
};

}  // namespace qpe::drift

#endif  // QPE_DRIFT_MONITOR_H_
