#ifndef QPE_DRIFT_ADAPTATION_H_
#define QPE_DRIFT_ADAPTATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "encoder/structure_encoder.h"
#include "plan/plan_node.h"
#include "util/status.h"

namespace qpe::drift {

// Crash-safe incremental fine-tuning on a drifted slice. One adaptation
// round lives entirely inside a state directory:
//
//   slice.qpsl    — the drifted slice (serialized plans; atomic, CRC)
//   base.qpe      — encoder weights at adaptation start (atomic)
//   manifest.qpam — COMMIT POINT: its atomic rename declares "an
//                   adaptation is in progress" (written after slice+base,
//                   so a manifest always references consistent inputs)
//   ckpt.qpck     — TrainPpsr's crash-safe training checkpoint (per epoch)
//   adapted.qpe   — the fine-tuned weights (atomic; written on completion,
//                   *before* the manifest is removed)
//
// A SIGKILL anywhere leaves one of two worlds: no manifest (nothing
// committed, or the round completed — adapted.qpe tells which), or a
// manifest plus consistent slice/base/checkpoint from which RunAdaptation
// resumes bit-exactly (the checkpoint machinery's existing contract). The
// pair construction is a pure function of (persisted slice, seed), so a
// resumed run and an uninterrupted run finish with identical weights.

struct AdaptationConfig {
  std::string dir;  // state directory; created if missing
  int epochs = 6;
  int pairs = 48;       // PPSR pairs built from the slice
  int batch_size = 8;
  float lr = 3e-4f;
  uint64_t seed = 41;
  // Fraction of pairs built as (plan, mutation-of-plan) for high-Smatch
  // coverage; the rest pair random slice members.
  double related_fraction = 0.5;
  // Cooperative cancellation (daemon drain): checked between batches; an
  // aborted round keeps its manifest and checkpoint so the next call (or
  // the next daemon start) resumes.
  const std::atomic<bool>* abort = nullptr;
};

struct AdaptationResult {
  // The fine-tuned encoder; null iff the round was aborted mid-training.
  std::unique_ptr<encoder::TransformerPlanEncoder> encoder;
  // The slice the round actually trained on (parsed from the persisted
  // file — on resume this is the original round's slice, not the caller's).
  std::vector<std::unique_ptr<plan::PlanNode>> slice_plans;
  bool aborted = false;
  bool resumed = false;           // picked up a pending manifest
  int64_t resumed_from_epoch = 0;
  double final_loss = 0;
};

// Artifact paths inside the state directory (exposed for tests/tools).
std::string AdaptationSlicePath(const std::string& dir);
std::string AdaptationBaseWeightsPath(const std::string& dir);
std::string AdaptationManifestPath(const std::string& dir);
std::string AdaptationCheckpointPath(const std::string& dir);
std::string AdaptedWeightsPath(const std::string& dir);

// True iff a manifest is present: the daemon died mid-ADAPTING and must
// re-enter it on start.
bool AdaptationPending(const std::string& dir);
// True iff a completed round's weights are present (and no manifest).
bool AdaptedWeightsPresent(const std::string& dir);
// Removes every artifact of the directory (abandon a round).
void ClearAdaptation(const std::string& dir);

// Runs one adaptation round, or resumes the pending one if a manifest
// exists (in which case `slice` is ignored in favour of the persisted
// slice). `base` supplies the architecture and — for a fresh round — the
// starting weights. Returns the refreshed encoder on completion; the
// caller swaps it into serving and rebaselines the sentinel.
util::StatusOr<AdaptationResult> RunAdaptation(
    const encoder::TransformerPlanEncoder& base,
    const std::vector<std::string>& slice, const AdaptationConfig& config);

// Loads a completed round's weights into a fresh encoder of the given
// architecture (daemon start with adapted.qpe present, no manifest).
util::StatusOr<std::unique_ptr<encoder::TransformerPlanEncoder>>
LoadAdaptedEncoder(const std::string& dir,
                   const encoder::StructureEncoderConfig& config);

}  // namespace qpe::drift

#endif  // QPE_DRIFT_ADAPTATION_H_
