#include "drift/adaptation.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <sys/stat.h>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "data/datasets.h"
#include "data/plan_corpus.h"
#include "encoder/ppsr.h"
#include "nn/checkpoint.h"
#include "nn/serialize.h"
#include "plan/serialize.h"
#include "serve/warm_state.h"
#include "smatch/smatch.h"
#include "util/checksum.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace qpe::drift {

namespace {

constexpr uint32_t kSliceMagic = 0x4C535051;     // "QPSL"
constexpr uint32_t kManifestMagic = 0x4D415051;  // "QPAM"
constexpr uint32_t kBlobVersion = 1;
constexpr size_t kBlobHeaderSize = 4 + 4 + 8 + 4;

void PutBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}
void PutU32(std::string* out, uint32_t v) { PutBytes(out, &v, sizeof(v)); }
void PutU64(std::string* out, uint64_t v) { PutBytes(out, &v, sizeof(v)); }

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

#ifdef __unix__
util::Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return util::IoError("cannot reopen '" + path + "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return util::IoError("fsync of '" + path + "' failed");
  return util::OkStatus();
}
#endif

// CRC-guarded atomic blob with the warm-state header discipline:
//   magic u32 | version u32 | payload_size u64 | crc u32 | payload
util::Status WriteBlobAtomic(const std::string& path, uint32_t magic,
                             const std::string& payload) {
  const std::string tmp_path = path + ".tmp";
  auto fail = [&tmp_path](util::Status s) {
    std::remove(tmp_path.c_str());
    return s;
  };
  if (util::Status s = util::InjectFault("adapt.write"); !s.ok()) {
    return fail(std::move(s));
  }
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) return fail(util::IoError("cannot open '" + tmp_path + "'"));
    std::string header;
    PutU32(&header, magic);
    PutU32(&header, kBlobVersion);
    PutU64(&header, payload.size());
    PutU32(&header, util::Crc32(payload));
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os) return fail(util::IoError("write to '" + tmp_path + "' failed"));
  }
#ifdef __unix__
  if (util::Status s = FsyncPath(tmp_path); !s.ok()) return fail(std::move(s));
#endif
  if (util::Status s = util::InjectFault("adapt.rename"); !s.ok()) {
    return fail(std::move(s));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return fail(util::IoError("atomic rename '" + tmp_path + "' -> '" + path +
                              "' failed"));
  }
  return util::OkStatus();
}

util::StatusOr<std::string> ReadBlob(const std::string& path, uint32_t magic) {
  if (util::Status s = util::InjectFault("adapt.read"); !s.ok()) return s;
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::NotFoundError("cannot open '" + path + "'");
  std::ostringstream buffer(std::ios::binary);
  buffer << is.rdbuf();
  if (is.bad()) return util::IoError("read of '" + path + "' failed");
  const std::string file = buffer.str();
  if (file.size() < kBlobHeaderSize) {
    return util::DataLossError("'" + path + "' is smaller than its header");
  }
  uint32_t file_magic = 0, version = 0, crc = 0;
  uint64_t payload_size = 0;
  std::memcpy(&file_magic, file.data(), 4);
  std::memcpy(&version, file.data() + 4, 4);
  std::memcpy(&payload_size, file.data() + 8, 8);
  std::memcpy(&crc, file.data() + 16, 4);
  if (file_magic != magic) {
    return util::DataLossError("'" + path + "' has bad magic");
  }
  if (version != kBlobVersion) {
    return util::DataLossError("'" + path + "' has version " +
                               std::to_string(version) + ", expected " +
                               std::to_string(kBlobVersion));
  }
  if (file.size() - kBlobHeaderSize != payload_size) {
    return util::DataLossError("'" + path + "' payload size mismatch");
  }
  std::string payload = file.substr(kBlobHeaderSize);
  if (util::Crc32(payload) != crc) {
    return util::DataLossError("'" + path + "' payload CRC mismatch");
  }
  return payload;
}

// The manifest freezes every input of the round so a resumed run replays
// the original configuration even if the daemon restarted with new flags.
struct Manifest {
  uint64_t base_fingerprint = 0;
  uint64_t seed = 0;
  uint32_t epochs = 0;
  uint32_t pairs = 0;
  uint32_t batch_size = 0;
  float lr = 0;
  double related_fraction = 0;
};

util::Status SaveManifest(const std::string& dir, const Manifest& manifest) {
  std::string payload;
  PutU64(&payload, manifest.base_fingerprint);
  PutU64(&payload, manifest.seed);
  PutU32(&payload, manifest.epochs);
  PutU32(&payload, manifest.pairs);
  PutU32(&payload, manifest.batch_size);
  PutBytes(&payload, &manifest.lr, sizeof(manifest.lr));
  PutBytes(&payload, &manifest.related_fraction,
           sizeof(manifest.related_fraction));
  return WriteBlobAtomic(AdaptationManifestPath(dir), kManifestMagic, payload);
}

util::StatusOr<Manifest> LoadManifest(const std::string& dir) {
  util::StatusOr<std::string> payload =
      ReadBlob(AdaptationManifestPath(dir), kManifestMagic);
  if (!payload.ok()) return payload.status();
  constexpr size_t kManifestSize = 8 + 8 + 4 + 4 + 4 + 4 + 8;
  if (payload->size() != kManifestSize) {
    return util::DataLossError("adaptation manifest payload is " +
                               std::to_string(payload->size()) +
                               " byte(s), expected " +
                               std::to_string(kManifestSize));
  }
  Manifest manifest;
  const char* p = payload->data();
  std::memcpy(&manifest.base_fingerprint, p, 8);
  std::memcpy(&manifest.seed, p + 8, 8);
  std::memcpy(&manifest.epochs, p + 16, 4);
  std::memcpy(&manifest.pairs, p + 20, 4);
  std::memcpy(&manifest.batch_size, p + 24, 4);
  std::memcpy(&manifest.lr, p + 28, 4);
  std::memcpy(&manifest.related_fraction, p + 32, 8);
  return manifest;
}

util::Status SaveSlice(const std::string& dir,
                       const std::vector<std::string>& slice) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(slice.size()));
  for (const std::string& text : slice) {
    PutU32(&payload, static_cast<uint32_t>(text.size()));
    payload.append(text);
  }
  return WriteBlobAtomic(AdaptationSlicePath(dir), kSliceMagic, payload);
}

util::StatusOr<std::vector<std::string>> LoadSlice(const std::string& dir) {
  util::StatusOr<std::string> payload =
      ReadBlob(AdaptationSlicePath(dir), kSliceMagic);
  if (!payload.ok()) return payload.status();
  std::vector<std::string> slice;
  size_t pos = 0;
  auto read_u32 = [&](uint32_t* v) -> bool {
    if (payload->size() - pos < 4) return false;
    std::memcpy(v, payload->data() + pos, 4);
    pos += 4;
    return true;
  };
  uint32_t count = 0;
  if (!read_u32(&count)) {
    return util::DataLossError("adaptation slice truncated reading count");
  }
  slice.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!read_u32(&len) || payload->size() - pos < len) {
      return util::DataLossError("adaptation slice truncated at entry " +
                                 std::to_string(i));
    }
    slice.emplace_back(payload->data() + pos, len);
    pos += len;
  }
  if (pos != payload->size()) {
    return util::DataLossError("adaptation slice has trailing bytes");
  }
  return slice;
}

util::Status SaveModuleAtomic(const nn::Module& module,
                              const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  if (util::Status s = nn::SaveModuleToFileStatus(module, tmp_path); !s.ok()) {
    std::remove(tmp_path.c_str());
    return s;
  }
#ifdef __unix__
  if (util::Status s = FsyncPath(tmp_path); !s.ok()) {
    std::remove(tmp_path.c_str());
    return s;
  }
#endif
  if (util::Status s = util::InjectFault("adapt.rename"); !s.ok()) {
    std::remove(tmp_path.c_str());
    return s;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return util::IoError("atomic rename '" + tmp_path + "' -> '" + path +
                         "' failed");
  }
  return util::OkStatus();
}

// Deterministic PPSR pairs over the slice: a pure function of (plans,
// manifest) — the heart of the bit-exact resume guarantee.
std::vector<data::PlanPair> BuildSlicePairs(
    const std::vector<std::unique_ptr<plan::PlanNode>>& plans,
    const Manifest& manifest) {
  std::vector<data::PlanPair> pairs;
  const int n = static_cast<int>(plans.size());
  if (n == 0 || manifest.pairs == 0) return pairs;
  util::Rng rng(manifest.seed);
  data::RandomPlanGenerator generator(rng.Fork());
  pairs.reserve(manifest.pairs);
  for (uint32_t p = 0; p < manifest.pairs; ++p) {
    const int i = static_cast<int>(rng.UniformInt(0, n - 1));
    std::unique_ptr<plan::PlanNode> left = plans[i]->Clone();
    std::unique_ptr<plan::PlanNode> right;
    if (rng.Bernoulli(manifest.related_fraction)) {
      right = generator.Mutate(*plans[i], /*mutation_rate=*/0.2);
    } else {
      right = plans[rng.UniformInt(0, n - 1)]->Clone();
    }
    data::PlanPair pair;
    pair.smatch = smatch::Score(*left, *right).f1;
    pair.left = std::move(left);
    pair.right = std::move(right);
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace

std::string AdaptationSlicePath(const std::string& dir) {
  return dir + "/slice.qpsl";
}
std::string AdaptationBaseWeightsPath(const std::string& dir) {
  return dir + "/base.qpe";
}
std::string AdaptationManifestPath(const std::string& dir) {
  return dir + "/manifest.qpam";
}
std::string AdaptationCheckpointPath(const std::string& dir) {
  return dir + "/ckpt.qpck";
}
std::string AdaptedWeightsPath(const std::string& dir) {
  return dir + "/adapted.qpe";
}

bool AdaptationPending(const std::string& dir) {
  return !dir.empty() && FileExists(AdaptationManifestPath(dir));
}

bool AdaptedWeightsPresent(const std::string& dir) {
  return !dir.empty() && !AdaptationPending(dir) &&
         FileExists(AdaptedWeightsPath(dir));
}

void ClearAdaptation(const std::string& dir) {
  if (dir.empty()) return;
  // Manifest first: whatever else remains is then unambiguously garbage.
  std::remove(AdaptationManifestPath(dir).c_str());
  std::remove(AdaptationCheckpointPath(dir).c_str());
  std::remove(AdaptationBaseWeightsPath(dir).c_str());
  std::remove(AdaptationSlicePath(dir).c_str());
  std::remove(AdaptedWeightsPath(dir).c_str());
}

util::StatusOr<AdaptationResult> RunAdaptation(
    const encoder::TransformerPlanEncoder& base,
    const std::vector<std::string>& slice, const AdaptationConfig& config) {
  if (config.dir.empty()) {
    return util::InvalidArgumentError("adaptation directory not set");
  }
  ::mkdir(config.dir.c_str(), 0755);  // EEXIST is fine; writes catch others

  AdaptationResult result;
  Manifest manifest;
  if (AdaptationPending(config.dir)) {
    util::StatusOr<Manifest> loaded = LoadManifest(config.dir);
    if (!loaded.ok()) return loaded.status();
    manifest = *loaded;
    result.resumed = true;
  } else {
    if (slice.empty()) {
      return util::FailedPreconditionError(
          "adaptation requested with an empty drifted slice");
    }
    manifest.base_fingerprint = serve::ModelFingerprint(base);
    manifest.seed = config.seed;
    manifest.epochs = static_cast<uint32_t>(std::max(config.epochs, 1));
    manifest.pairs = static_cast<uint32_t>(std::max(config.pairs, 1));
    manifest.batch_size = static_cast<uint32_t>(std::max(config.batch_size, 1));
    manifest.lr = config.lr;
    manifest.related_fraction = config.related_fraction;
    // Inputs first, then the manifest: its rename is the commit point, and
    // it must never reference a slice or base-weights file that is not
    // fully on disk.
    if (util::Status s = SaveSlice(config.dir, slice); !s.ok()) return s;
    if (util::Status s = SaveModuleAtomic(
            base, AdaptationBaseWeightsPath(config.dir));
        !s.ok())
      return s;
    if (util::Status s = SaveManifest(config.dir, manifest); !s.ok()) return s;
  }

  util::StatusOr<std::vector<std::string>> slice_texts = LoadSlice(config.dir);
  if (!slice_texts.ok()) return slice_texts.status();
  result.slice_plans.reserve(slice_texts->size());
  for (const std::string& text : *slice_texts) {
    util::StatusOr<std::unique_ptr<plan::PlanNode>> parsed =
        plan::ParsePlanNodeChecked(text);
    if (!parsed.ok()) return parsed.status();
    result.slice_plans.push_back(std::move(*parsed));
  }

  // Rebuild the training setup deterministically: clone the architecture,
  // load the persisted base weights (NOT the live encoder's — it may have
  // moved since the manifest committed), fresh match head from the seed.
  util::Rng init_rng(manifest.seed ^ 0x5EED5EED5EED5EEDULL);
  auto clone = std::make_unique<encoder::TransformerPlanEncoder>(base.config(),
                                                                 &init_rng);
  if (util::Status s = nn::LoadModuleFromFileStatus(
          clone.get(), AdaptationBaseWeightsPath(config.dir));
      !s.ok())
    return s;
  encoder::PpsrModel model(std::move(clone), &init_rng);

  const std::vector<data::PlanPair> pairs =
      BuildSlicePairs(result.slice_plans, manifest);

  encoder::PpsrTrainOptions options;
  options.epochs = static_cast<int>(manifest.epochs);
  options.lr = manifest.lr;
  options.batch_size = static_cast<int>(manifest.batch_size);
  options.seed = manifest.seed;
  options.checkpoint.path = AdaptationCheckpointPath(config.dir);
  options.checkpoint.interval_epochs = 1;
  options.checkpoint.resume = true;
  options.abort = config.abort;
  encoder::PpsrTrainStats stats;
  options.stats = &stats;
  result.final_loss = TrainPpsr(&model, pairs, options);
  if (!stats.io_status.ok()) return stats.io_status;
  result.aborted = stats.aborted;
  result.resumed_from_epoch = stats.resumed_from_epoch;
  if (result.aborted) {
    // Manifest and checkpoint stay on disk: the next call resumes exactly
    // where the last completed epoch checkpointed, as after a SIGKILL.
    return result;
  }

  // Completion protocol: adapted weights become durable BEFORE the manifest
  // disappears, so a crash in between re-runs an already-finished round
  // (idempotent) instead of losing it.
  util::Rng out_rng(manifest.seed ^ 0x0ADA97ED0ADA97EDULL);
  auto adapted = std::make_unique<encoder::TransformerPlanEncoder>(
      base.config(), &out_rng);
  nn::CopyParameters(*model.encoder(), adapted.get());
  if (util::Status s =
          SaveModuleAtomic(*adapted, AdaptedWeightsPath(config.dir));
      !s.ok())
    return s;
  std::remove(AdaptationManifestPath(config.dir).c_str());
  std::remove(AdaptationCheckpointPath(config.dir).c_str());
  std::remove(AdaptationBaseWeightsPath(config.dir).c_str());
  std::remove(AdaptationSlicePath(config.dir).c_str());
  result.encoder = std::move(adapted);
  return result;
}

util::StatusOr<std::unique_ptr<encoder::TransformerPlanEncoder>>
LoadAdaptedEncoder(const std::string& dir,
                   const encoder::StructureEncoderConfig& config) {
  util::Rng rng(0x10AD10AD10AD10ADULL);
  auto encoder = std::make_unique<encoder::TransformerPlanEncoder>(config,
                                                                   &rng);
  if (util::Status s =
          nn::LoadModuleFromFileStatus(encoder.get(), AdaptedWeightsPath(dir));
      !s.ok())
    return s;
  return encoder;
}

}  // namespace qpe::drift
