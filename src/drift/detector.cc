#include "drift/detector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "plan/fingerprint.h"
#include "plan/linearize.h"

namespace qpe::drift {

const char* DriftComponentName(DriftComponent component) {
  switch (component) {
    case DriftComponent::kNovelPlans:
      return "novel_plans";
    case DriftComponent::kTokenShift:
      return "token_shift";
    case DriftComponent::kClusterShift:
      return "cluster_shift";
  }
  return "unknown";
}

DriftDetector::DriftDetector(DriftBaseline baseline,
                             const DriftDetectorConfig& config)
    : baseline_(std::move(baseline)),
      config_(config),
      window_tokens_(config.sketch_width, config.sketch_depth) {
  config_.window_size = std::max(config_.window_size, 1);
  ResetWindow();
}

void DriftDetector::ResetWindow() {
  window_plans_ = 0;
  window_novel_ = 0;
  window_tokens_.Clear();
  window_token_total_ = 0;
  window_codes_.clear();
  window_cluster_counts_.assign(
      static_cast<size_t>(baseline_.centroids.cluster_count()) + 1, 0);
}

std::optional<DriftWindowReport> DriftDetector::Observe(
    const plan::PlanNode& plan, const float* embedding, size_t dim) {
  const std::vector<plan::OperatorType> tokens =
      plan::LinearizeDfsBracket(plan);
  return ObserveTokens(tokens, plan::FingerprintTokens(tokens), embedding,
                       dim);
}

std::optional<DriftWindowReport> DriftDetector::ObserveTokens(
    const std::vector<plan::OperatorType>& tokens, uint64_t fingerprint,
    const float* embedding, size_t dim) {
  if (!baseline_.bloom.MightContain(fingerprint)) {
    ++window_novel_;
  }
  for (const plan::OperatorType& token : tokens) {
    if (IsStructuralToken(token)) continue;
    const uint32_t code = TokenCode(token);
    window_tokens_.Add(code);
    ++window_token_total_;
    window_codes_.insert(code);
  }
  if (embedding != nullptr && dim == static_cast<size_t>(baseline_.dim) &&
      baseline_.centroids.cluster_count() > 0) {
    float distance = 0.0f;
    const int c = NearestCentroid(baseline_.centroids, embedding, dim,
                                  &distance);
    if (distance > baseline_.centroids.outlier_threshold) {
      ++window_cluster_counts_.back();  // outlier bucket
    } else {
      ++window_cluster_counts_[c];
    }
  }
  ++window_plans_;
  if (static_cast<int>(window_plans_) < config_.window_size) {
    return std::nullopt;
  }
  DriftWindowReport report = CloseWindow();
  ResetWindow();
  return report;
}

DriftWindowReport DriftDetector::CloseWindow() {
  DriftWindowReport report;
  report.window_index = windows_closed_++;
  report.plans = window_plans_;
  const double n = static_cast<double>(std::max<size_t>(window_plans_, 1));

  // --- Novel-plan component: share of never-before-seen fingerprints. ---
  report.novel_rate = static_cast<double>(window_novel_) / n;
  const double tol = std::clamp(config_.novel_tolerance, 0.0, 0.999);
  report.novel_score =
      std::max(0.0, (report.novel_rate - tol) / (1.0 - tol));

  // --- Token component: total variation over the code registry (union of
  // baseline codes and codes seen this window). The count-min estimate only
  // over-counts, so the TV distance can only over-report — which hysteresis
  // in the monitor absorbs. ---
  std::vector<TokenAttribution> tokens;
  if (window_token_total_ > 0) {
    const double total = static_cast<double>(window_token_total_);
    double tv = 0;
    auto add_token = [&](uint32_t code, double base_freq) {
      const double win_freq =
          static_cast<double>(window_tokens_.Estimate(code)) / total;
      tv += std::abs(win_freq - base_freq);
      TokenAttribution attribution;
      attribution.code = code;
      attribution.baseline_freq = base_freq;
      attribution.window_freq = win_freq;
      attribution.delta = win_freq - base_freq;
      tokens.push_back(std::move(attribution));
    };
    for (const auto& [code, freq] : baseline_.token_freq) {
      add_token(code, freq);
    }
    for (uint32_t code : window_codes_) {
      if (baseline_.token_freq.find(code) == baseline_.token_freq.end()) {
        add_token(code, 0.0);
      }
    }
    report.token_score = std::clamp(0.5 * tv, 0.0, 1.0);
  }

  // --- Cluster component: total variation over k clusters + the outlier
  // bucket. The baseline's outlier bucket holds 1 - outlier_quantile of the
  // training mass by construction; cluster occupancies are scaled by the
  // complement so the baseline distribution sums to 1. ---
  std::vector<ClusterAttribution> clusters;
  uint64_t assigned = 0;
  for (uint64_t c : window_cluster_counts_) assigned += c;
  if (assigned > 0) {
    const double total = static_cast<double>(assigned);
    const int k = baseline_.centroids.cluster_count();
    const double inlier_mass = 1.0 - baseline_.outlier_occupancy;
    double tv = 0;
    for (int c = 0; c <= k; ++c) {
      const bool outlier = c == k;
      const double base = outlier
                              ? baseline_.outlier_occupancy
                              : baseline_.centroids.occupancy[c] * inlier_mass;
      const double win =
          static_cast<double>(window_cluster_counts_[c]) / total;
      tv += std::abs(win - base);
      ClusterAttribution attribution;
      attribution.cluster = outlier ? -1 : c;
      attribution.baseline_occupancy = base;
      attribution.window_occupancy = win;
      attribution.delta = win - base;
      clusters.push_back(attribution);
      if (outlier) report.outlier_rate = win;
    }
    report.cluster_score = std::clamp(0.5 * tv, 0.0, 1.0);
  }

  // --- Fusion + attribution. ---
  report.score = std::max(
      {report.novel_score, report.token_score, report.cluster_score});
  report.dominant = DriftComponent::kNovelPlans;
  if (report.token_score > report.novel_score &&
      report.token_score >= report.cluster_score) {
    report.dominant = DriftComponent::kTokenShift;
  } else if (report.cluster_score > report.novel_score &&
             report.cluster_score > report.token_score) {
    report.dominant = DriftComponent::kClusterShift;
  }

  auto by_abs_delta = [](const auto& a, const auto& b) {
    return std::abs(a.delta) > std::abs(b.delta);
  };
  std::sort(tokens.begin(), tokens.end(), by_abs_delta);
  std::sort(clusters.begin(), clusters.end(), by_abs_delta);
  const size_t top = static_cast<size_t>(std::max(config_.top_attributions, 0));
  if (tokens.size() > top) tokens.resize(top);
  if (clusters.size() > top) clusters.resize(top);
  for (TokenAttribution& t : tokens) t.name = TokenCodeName(t.code);
  report.top_tokens = std::move(tokens);
  report.top_clusters = std::move(clusters);
  return report;
}

void DriftDetector::Rebaseline(DriftBaseline baseline) {
  baseline_ = std::move(baseline);
  ResetWindow();
}

}  // namespace qpe::drift
