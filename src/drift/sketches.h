#ifndef QPE_DRIFT_SKETCHES_H_
#define QPE_DRIFT_SKETCHES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace qpe::drift {

// Streaming sketches behind the drift sentinel. All three are deliberately
// tiny, allocation-free after construction, and O(1) per observation: they
// sit on the daemon's serving hot path, and the acceptance bar is <5% of
// daemon_p99_ms for the whole Observe step.

// Full-avalanche 64-bit mix (splitmix64 finalizer, Steele et al.) — the
// same mixer the plan fingerprint uses, so nearby keys disperse.
uint64_t MixU64(uint64_t x);

// Classic Bloom filter over 64-bit keys with double hashing: hash i is
// h1 + i*h2 over the bit space, which preserves the standard false-positive
// bound without re-hashing per probe (Kirsch & Mitzenmacher). Used for
// "have we ever seen this plan fingerprint during training" — a miss is
// authoritative (the plan is truly novel), a hit may be a false positive,
// which only ever *under*-reports drift.
class BloomFilter {
 public:
  // `bits` is rounded up to a multiple of 64; hashes clamped to >= 1.
  explicit BloomFilter(size_t bits = 1u << 16, int hashes = 4);

  void Insert(uint64_t key);
  bool MightContain(uint64_t key) const;

  size_t bit_count() const { return bits_; }
  int hash_count() const { return hashes_; }
  uint64_t inserted() const { return inserted_; }
  // Fraction of bits set — a saturation diagnostic for STATS.
  double FillRatio() const;

 private:
  size_t bits_;
  int hashes_;
  uint64_t inserted_ = 0;
  std::vector<uint64_t> words_;
};

// Count-min sketch over 64-bit keys: `depth` rows of `width` counters, each
// row indexed by an independently-seeded hash; Estimate takes the row-wise
// minimum, so estimates only ever over-count (by sketch collisions). Tracks
// the live window's taxonomy-token frequencies without a per-token map on
// the hot path.
class CountMinSketch {
 public:
  explicit CountMinSketch(size_t width = 1024, int depth = 4);

  void Add(uint64_t key, uint64_t count = 1);
  uint64_t Estimate(uint64_t key) const;
  void Clear();

  uint64_t total() const { return total_; }
  size_t width() const { return width_; }
  int depth() const { return depth_; }

 private:
  size_t width_;
  int depth_;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;  // depth rows x width, row-major
};

// Per-cluster centroids of the training embedding distribution plus the
// occupancy (fraction of training points) of each cluster and the distance
// beyond which a point counts as an outlier (a quantile of the training
// nearest-centroid distances).
struct CentroidSet {
  std::vector<std::vector<float>> centroids;  // k rows of dim floats
  std::vector<double> occupancy;              // sums to 1 over clusters
  float outlier_threshold = 0.0f;

  int cluster_count() const { return static_cast<int>(centroids.size()); }
  size_t dim() const { return centroids.empty() ? 0 : centroids[0].size(); }
};

// Euclidean distance to the nearest centroid; returns its index (-1 when
// the set is empty) and writes the distance through `distance` if non-null.
int NearestCentroid(const CentroidSet& set, const float* point, size_t dim,
                    float* distance);

// Lloyd's k-means with k-means++ seeding, fully deterministic given `rng`.
// Empty clusters are re-seeded from the point currently farthest from its
// centroid. Fills `occupancy` from the final assignment; the caller sets
// outlier_threshold (see drift::DriftBaseline). If `nearest_out` is
// non-null it receives every point's final nearest-centroid distance.
CentroidSet KMeansCluster(const std::vector<std::vector<float>>& points,
                          int k, int iterations, util::Rng* rng,
                          std::vector<float>* nearest_out = nullptr);

}  // namespace qpe::drift

#endif  // QPE_DRIFT_SKETCHES_H_
