#ifndef QPE_DRIFT_BASELINE_H_
#define QPE_DRIFT_BASELINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "drift/sketches.h"
#include "encoder/structure_encoder.h"
#include "plan/plan_node.h"
#include "plan/taxonomy.h"

namespace qpe::drift {

// Compact 24-bit code of a taxonomy token (level1<<16 | level2<<8 | level3),
// the key every token sketch and frequency table uses. Structural markers
// (BR_OPEN/BR_CLOSE/CLS/SEP) are excluded from drift accounting — they
// appear in every linearization with near-constant frequency and would only
// dampen the total-variation signal of real operator-mix shifts.
uint32_t TokenCode(const plan::OperatorType& type);
bool IsStructuralToken(const plan::OperatorType& type);
// Human-readable "Scan-Heap-Bitmap" style name for attribution output.
std::string TokenCodeName(uint32_t code);

struct DriftBaselineConfig {
  int clusters = 4;
  int kmeans_iterations = 25;
  size_t bloom_bits = 1u << 16;
  int bloom_hashes = 4;
  // Quantile of training nearest-centroid distances used as the outlier
  // threshold; 1 - quantile of training points land in the outlier bucket
  // by construction, which is the bucket's baseline occupancy.
  double outlier_quantile = 0.95;
  uint64_t seed = 17;
};

// Frozen summary of the *training* distribution the detector compares the
// live stream against: embedding-space centroids with occupancies and an
// outlier threshold, exact operator-token frequencies, and a bloom filter
// over every training plan fingerprint. Immutable once built — sustained
// novelty must keep alarming until an adaptation rebaselines.
struct DriftBaseline {
  int dim = 0;
  size_t plans = 0;
  DriftBaselineConfig config;
  CentroidSet centroids;
  BloomFilter bloom;
  // Exact token-code frequency over the training plans (fraction of all
  // non-structural tokens). Small: bounded by the taxonomy cross-product
  // actually in use, not by corpus size.
  std::unordered_map<uint32_t, double> token_freq;
  double outlier_occupancy = 0.05;  // 1 - outlier_quantile
};

// Builds the baseline by encoding `plans` with `encoder` (no dropout, no
// autograd) and clustering the embeddings. Deterministic given the config
// seed. `plans` should be (a sample of) the corpus the serving encoder was
// trained on.
// After an adaptation, rebaseline by calling this again with the refreshed
// encoder and the union of the original corpus and the drifted slice — the
// adapted distribution becomes the new normal.
DriftBaseline BuildDriftBaseline(
    const encoder::PlanSequenceEncoder& encoder,
    const std::vector<const plan::PlanNode*>& plans,
    const DriftBaselineConfig& config = {});

}  // namespace qpe::drift

#endif  // QPE_DRIFT_BASELINE_H_
