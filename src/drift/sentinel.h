#ifndef QPE_DRIFT_SENTINEL_H_
#define QPE_DRIFT_SENTINEL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "drift/baseline.h"
#include "drift/detector.h"
#include "drift/monitor.h"
#include "plan/plan_node.h"

namespace qpe::drift {

struct DriftSentinelConfig {
  DriftDetectorConfig detector;
  DriftMonitorConfig monitor;
  // Distinct serialized plans retained as the adaptation corpus ("the
  // drifted slice"): novel plans are always collected, and everything is
  // collected while the state is off-HEALTHY. FIFO-evicted beyond capacity.
  size_t slice_capacity = 256;
};

// Point-in-time copy of the sentinel's full state for STATS.
struct DriftStatusSnapshot {
  bool enabled = true;
  DriftState state = DriftState::kHealthy;
  double last_score = 0;
  uint64_t windows = 0;
  uint64_t alarms = 0;
  uint64_t observed_plans = 0;
  size_t slice_size = 0;
  bool has_report = false;
  DriftWindowReport last_report;  // valid iff has_report
};

// Thread-safe facade over DriftDetector + DriftMonitor, the object the
// serving daemon owns. Worker threads call Observe concurrently for every
// served plan; the response path reads stale()/state()/last_score() off
// atomics so the hot path never takes the sentinel mutex after Observe.
class DriftSentinel {
 public:
  DriftSentinel(DriftBaseline baseline, const DriftSentinelConfig& config = {});

  // Folds one served (plan, embedding) observation into the stream.
  void Observe(const plan::PlanNode& plan, const float* embedding, size_t dim);

  // Lock-free reads for the per-response drift trailer.
  bool stale() const {
    const auto s = static_cast<DriftState>(
        state_atomic_.load(std::memory_order_relaxed));
    return s == DriftState::kDrifted || s == DriftState::kAdapting;
  }
  DriftState state() const {
    return static_cast<DriftState>(
        state_atomic_.load(std::memory_order_relaxed));
  }
  float last_score() const {
    return score_atomic_.load(std::memory_order_relaxed);
  }

  DriftStatusSnapshot Snapshot() const;
  // The drifted slice (serialized plans), oldest first.
  std::vector<std::string> SliceSnapshot() const;

  // State-machine edges driven by the daemon (see DriftMonitor).
  bool BeginAdaptation();
  // Commits an adaptation: swaps the detector onto `new_baseline`, clears
  // the slice, and returns to HEALTHY.
  void CompleteAdaptation(DriftBaseline new_baseline);
  void AbortAdaptation();
  void ForceAdapting();

  const DriftBaseline& baseline() const { return detector_.baseline(); }
  const DriftSentinelConfig& config() const { return config_; }

 private:
  void PublishLocked();  // refresh the atomics; caller holds mu_

  DriftSentinelConfig config_;
  mutable std::mutex mu_;
  DriftDetector detector_;
  DriftMonitor monitor_;
  uint64_t observed_ = 0;
  bool has_report_ = false;
  DriftWindowReport last_report_;
  // Slice ring: (fingerprint, serialized plan), deduplicated by fingerprint.
  std::deque<std::pair<uint64_t, std::string>> slice_;
  std::unordered_set<uint64_t> slice_keys_;

  std::atomic<uint8_t> state_atomic_{0};
  std::atomic<float> score_atomic_{0.0f};
};

}  // namespace qpe::drift

#endif  // QPE_DRIFT_SENTINEL_H_
