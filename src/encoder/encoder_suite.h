#ifndef QPE_ENCODER_ENCODER_SUITE_H_
#define QPE_ENCODER_ENCODER_SUITE_H_

#include <memory>
#include <string>

#include "encoder/performance_encoder.h"
#include "encoder/structure_encoder.h"
#include "tasks/embeddings.h"

namespace qpe::encoder {

// The full pretrained package the paper envisions shipping with a database
// ("databases will come with prepackaged AI models"): one structure encoder
// plus one performance encoder per operator family, with one-call
// checkpointing. This is the deployment-facing API; the training drivers in
// ppsr.h / performance_encoder.h produce the weights.
class EncoderSuite {
 public:
  struct Config {
    StructureEncoderConfig structure;
    PerfEncoderConfig performance;
    uint64_t seed = 2021;
  };

  EncoderSuite() : EncoderSuite(Config()) {}
  explicit EncoderSuite(const Config& config);

  TransformerPlanEncoder* structure() { return structure_.get(); }
  const TransformerPlanEncoder* structure() const { return structure_.get(); }
  PerformanceEncoder* performance(plan::OperatorGroup group) {
    return performance_[static_cast<int>(group)].get();
  }
  const PerformanceEncoder* performance(plan::OperatorGroup group) const {
    return performance_[static_cast<int>(group)].get();
  }

  // Featurizer configuration wired to this suite's encoders.
  tasks::EmbeddingFeaturizer::Config FeaturizerConfig(
      const catalog::Catalog* catalog) const;

  // Writes/reads structure.qpe and perf_{scan,join,sort,aggregate}.qpe under
  // `directory` (which must exist). Load requires a suite constructed with
  // the same Config.
  bool SaveToDirectory(const std::string& directory) const;
  bool LoadFromDirectory(const std::string& directory);

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::unique_ptr<TransformerPlanEncoder> structure_;
  std::unique_ptr<PerformanceEncoder> performance_[4];
};

}  // namespace qpe::encoder

#endif  // QPE_ENCODER_ENCODER_SUITE_H_
