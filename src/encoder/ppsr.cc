#include "encoder/ppsr.h"

#include <cmath>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace qpe::encoder {

PpsrModel::PpsrModel(std::unique_ptr<PlanSequenceEncoder> encoder,
                     util::Rng* rng) {
  const int d = encoder->output_dim();
  encoder_ = RegisterModule("encoder", std::move(encoder));
  match_ = RegisterModule("match", std::make_unique<nn::Linear>(4 * d, 1, rng));
}

nn::Tensor PpsrModel::PredictSimilarity(const plan::PlanNode& left,
                                        const plan::PlanNode& right,
                                        util::Rng* dropout_rng) const {
  const nn::Tensor v1 = encoder_->Encode(left, dropout_rng);
  const nn::Tensor v2 = encoder_->Encode(right, dropout_rng);
  const nn::Tensor features =
      nn::ConcatCols({v1, v2, Abs(Sub(v1, v2)), Mul(v1, v2)});
  return Sigmoid(match_->Forward(features));
}

std::vector<nn::Tensor> PpsrModel::HeadParameters() const {
  return match_->Parameters();
}

double TrainPpsr(PpsrModel* model, const std::vector<data::PlanPair>& train,
                 const PpsrTrainOptions& options) {
  std::vector<nn::Tensor> params =
      options.freeze_encoder ? model->HeadParameters() : model->Parameters();
  nn::Adam optimizer(params, options.lr);
  util::Rng rng(options.seed);
  model->SetTraining(true);
  double last_epoch_loss = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<int> order =
        rng.Permutation(static_cast<int>(train.size()));
    double epoch_loss = 0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += options.batch_size) {
      nn::Tensor batch_loss = nn::Tensor::Scalar(0.0f);
      int batch_count = 0;
      for (size_t i = start;
           i < order.size() && i < start + options.batch_size; ++i) {
        const data::PlanPair& pair = train[order[i]];
        const nn::Tensor pred =
            model->PredictSimilarity(*pair.left, *pair.right, &rng);
        const nn::Tensor target =
            nn::Tensor::Scalar(static_cast<float>(pair.smatch));
        batch_loss = Add(batch_loss, Square(Sub(pred, target)));
        ++batch_count;
      }
      if (batch_count == 0) continue;
      const nn::Tensor loss =
          Scale(batch_loss, 1.0f / static_cast<float>(batch_count));
      optimizer.ZeroGrad();
      loss.Backward();
      ClipGradNorm(params, options.grad_clip);
      optimizer.Step();
      epoch_loss += loss.value()[0];
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0;
  }
  model->SetTraining(false);
  return last_epoch_loss;
}

double EvaluatePpsrMae(const PpsrModel& model,
                       const std::vector<data::PlanPair>& pairs) {
  if (pairs.empty()) return 0;
  double total = 0;
  for (const data::PlanPair& pair : pairs) {
    const nn::Tensor pred =
        model.PredictSimilarity(*pair.left, *pair.right, nullptr);
    total += std::abs(static_cast<double>(pred.value()[0]) - pair.smatch);
  }
  return total / static_cast<double>(pairs.size());
}

}  // namespace qpe::encoder
