#include "encoder/ppsr.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "nn/arena.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/parallel.h"
#include "util/thread_pool.h"

namespace qpe::encoder {

PpsrModel::PpsrModel(std::unique_ptr<PlanSequenceEncoder> encoder,
                     util::Rng* rng) {
  const int d = encoder->output_dim();
  encoder_ = RegisterModule("encoder", std::move(encoder));
  match_ = RegisterModule("match", std::make_unique<nn::Linear>(4 * d, 1, rng));
}

nn::Tensor PpsrModel::PredictSimilarity(const plan::PlanNode& left,
                                        const plan::PlanNode& right,
                                        util::Rng* dropout_rng) const {
  // Both plans encode through one gradient-capable batch call: during
  // training the transformer encoder runs one columnar packed
  // forward/backward per pair (bit-identical to two per-plan Encode
  // graphs, gradients included); under NoGradGuard and for the baseline
  // encoders this is exactly the per-plan loop.
  const plan::PlanNode* batch[2] = {&left, &right};
  const std::vector<nn::Tensor> enc =
      encoder_->EncodeBatchGrad(batch, dropout_rng);
  const nn::Tensor& v1 = enc[0];
  const nn::Tensor& v2 = enc[1];
  const nn::Tensor features =
      nn::ConcatCols({v1, v2, Abs(Sub(v1, v2)), Mul(v1, v2)});
  return Sigmoid(match_->Forward(features));
}

std::vector<nn::Tensor> PpsrModel::HeadParameters() const {
  return match_->Parameters();
}

double TrainPpsr(PpsrModel* model, const std::vector<data::PlanPair>& train,
                 const PpsrTrainOptions& options) {
  std::vector<nn::Tensor> opt_params =
      options.freeze_encoder ? model->HeadParameters() : model->Parameters();
  // Data-parallel shards must capture gradient writes into EVERY parameter,
  // not just the optimized subset: with freeze_encoder the backward pass
  // still flows gradients into the encoder weights (they require grad),
  // the optimizer just never applies them.
  const std::vector<nn::Tensor> all_params = model->Parameters();
  nn::Adam optimizer(opt_params, options.lr);
  util::Rng rng(options.seed);
  nn::TrainingState ckpt_state;
  const bool checkpointing = !options.checkpoint.path.empty();
  if (options.stats != nullptr) *options.stats = PpsrTrainStats{};
  auto record_io = [&options](util::Status s) {
    if (options.stats != nullptr && options.stats->io_status.ok()) {
      options.stats->io_status = std::move(s);
    }
  };
  if (checkpointing && options.checkpoint.resume &&
      nn::CheckpointExists(options.checkpoint.path)) {
    util::Status s = nn::LoadTrainingCheckpoint(options.checkpoint.path, model,
                                                &optimizer, &ckpt_state);
    if (!s.ok()) {
      // Never overwrite a checkpoint that failed to load; surface and stop.
      record_io(std::move(s));
      return 0;
    }
    rng.SetState(ckpt_state.rng);
    if (options.stats != nullptr) {
      options.stats->resumed_from_epoch = ckpt_state.next_epoch;
      options.stats->skipped_batches = ckpt_state.skipped_batches;
      options.stats->nonfinite_losses = ckpt_state.nonfinite_losses;
    }
  }
  model->SetTraining(true);
  nn::ShardGradBuffers scratch;
  std::vector<util::Rng> shard_rngs;
  double last_epoch_loss = 0;
  const int interval = std::max(1, options.checkpoint.interval_epochs);
  auto abort_requested = [&options]() {
    return options.abort != nullptr &&
           options.abort->load(std::memory_order_relaxed);
  };
  bool aborted = false;
  for (int epoch = static_cast<int>(ckpt_state.next_epoch);
       epoch < options.epochs && !aborted; ++epoch) {
    const std::vector<int> order =
        rng.Permutation(static_cast<int>(train.size()));
    double epoch_loss = 0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += options.batch_size) {
      if (abort_requested()) {
        aborted = true;
        break;
      }
      const int count = static_cast<int>(
          std::min(order.size(), start + options.batch_size) - start);
      if (count == 0) continue;
      // One shard per pair. Dropout streams are forked sequentially in
      // pair order before dispatch so they are a function of the data
      // order alone, never of which thread runs which shard.
      shard_rngs.clear();
      for (int s = 0; s < count; ++s) shard_rngs.push_back(rng.Fork());
      model->ZeroGrad();
      const double batch_loss = nn::ParallelGradientStep(
          all_params, count,
          [&](int s) {
            const data::PlanPair& pair = train[order[start + s]];
            const nn::Tensor pred = model->PredictSimilarity(
                *pair.left, *pair.right, &shard_rngs[s]);
            const nn::Tensor target =
                nn::Tensor::Scalar(static_cast<float>(pair.smatch));
            // Summed over shards this equals the old mean-over-batch loss.
            return Scale(Square(Sub(pred, target)),
                         1.0f / static_cast<float>(count));
          },
          &scratch);
      ++ckpt_state.global_step;
      if (!std::isfinite(batch_loss)) {
        // Loss-spike guard: skip the poisoned update (grads are zeroed at
        // the top of the next batch) instead of feeding NaN into Adam.
        ++ckpt_state.nonfinite_losses;
        ++ckpt_state.skipped_batches;
        if (options.stats != nullptr) {
          ++options.stats->nonfinite_losses;
          ++options.stats->skipped_batches;
        }
        continue;
      }
      ClipGradNorm(opt_params, options.grad_clip);
      optimizer.Step();
      epoch_loss += batch_loss;
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0;
    // An aborted (partial) epoch must not checkpoint: its optimizer state is
    // mid-epoch, and stamping next_epoch past it would break the bit-exact
    // resume contract. The last interval checkpoint stands, as after SIGKILL.
    if (checkpointing && !aborted &&
        ((epoch + 1) % interval == 0 || epoch + 1 == options.epochs)) {
      ckpt_state.next_epoch = epoch + 1;
      ckpt_state.rng = rng.GetState();
      util::Status s = nn::SaveTrainingCheckpoint(options.checkpoint.path,
                                                  *model, optimizer,
                                                  ckpt_state);
      if (!s.ok()) record_io(std::move(s));  // degrade, don't abort training
    }
  }
  if (aborted && options.stats != nullptr) options.stats->aborted = true;
  model->SetTraining(false);
  return last_epoch_loss;
}

double EvaluatePpsrMae(const PpsrModel& model,
                       const std::vector<data::PlanPair>& pairs) {
  if (pairs.empty()) return 0;
  const int n = static_cast<int>(pairs.size());
  std::vector<double> errors(n, 0.0);
  util::ParallelRun(n, [&](int i) {
    nn::ArenaScope arena;     // per-item graph epoch; nothing escapes
    nn::NoGradGuard no_grad;  // pure forward: skip graph construction
    const data::PlanPair& pair = pairs[i];
    const nn::Tensor pred =
        model.PredictSimilarity(*pair.left, *pair.right, nullptr);
    errors[i] = std::abs(static_cast<double>(pred.value()[0]) - pair.smatch);
  });
  double total = 0;
  for (double e : errors) total += e;  // fixed order: thread-count invariant
  return total / static_cast<double>(pairs.size());
}

}  // namespace qpe::encoder
