#ifndef QPE_ENCODER_QUANTIZED_ENCODER_H_
#define QPE_ENCODER_QUANTIZED_ENCODER_H_

#include <span>
#include <vector>

#include "encoder/structure_encoder.h"
#include "nn/packed_batch.h"
#include "nn/quant.h"
#include "nn/transformer.h"

namespace qpe::encoder {

// Int8-quantized serving twin of a trained TransformerPlanEncoder.
//
// Construction copies the fp32 weights out of the trained encoder (via its
// stable dotted parameter names), replays the packed forward over a
// held-out calibration sample to record each linear layer's input range
// (nn::QuantCalibrator, static per-tensor activation scales), and quantizes
// every Linear — q/k/v/output projections, both feed-forward matrices, and
// the optional output projection — to per-channel symmetric int8.
//
// Inference is graph-free: raw contiguous float buffers driven directly by
// the nn::simd kernel table (layer norm, packed attention, softmax stay
// fp32; the GEMMs run int8 x int8 -> int32). No autograd nodes, no arena
// traffic, no backward closures — this is an inference-only engine, so
// Encode ignores its dropout RNG. Results are deterministic and
// batch-invariant: the int8 GEMM is exact integer arithmetic and every
// other kernel is row-independent, so a plan's embedding is bit-identical
// whether encoded alone or inside any batch, at any SIMD level.
//
// Accuracy: embeddings differ from the fp32 encoder's by quantization
// noise. tests/simd_quant_test.cc gates the drift (max embedding cosine
// distance and a kNN neighbor-agreement check against the fp32 encoder);
// EXPERIMENTS.md records the measured deltas next to the speedup.
class QuantizedPlanEncoder : public PlanSequenceEncoder {
 public:
  // `fp32` must be fully trained; `calibration` must be non-empty and
  // should be held out from training. The new encoder is independent of
  // `fp32` once constructed.
  QuantizedPlanEncoder(const TransformerPlanEncoder& fp32,
                       std::span<const plan::PlanNode* const> calibration);

  nn::Tensor Encode(const plan::PlanNode& root,
                    util::Rng* dropout_rng) const override;
  std::vector<nn::Tensor> EncodeBatch(
      std::span<const plan::PlanNode* const> plans,
      util::Rng* dropout_rng) const override;
  int output_dim() const override;

  // Quantized GEMM sites: 6 per transformer layer (wq, wk, wv, wo, ff1,
  // ff2) plus the output projection when present.
  int num_quantized_sites() const { return static_cast<int>(sites_.size()); }
  // Calibrated static input scale of each site, in site order.
  std::vector<float> input_scales() const;

 private:
  struct LayerParams {
    std::vector<float> norm1_gamma, norm1_beta;
    std::vector<float> norm2_gamma, norm2_beta;
  };

  StructureEncoderConfig config_;
  int model_dim_ = 0;
  int head_dim_ = 0;
  std::vector<float> embed1_, embed2_, embed3_;  // [vocab, level dim] each
  std::vector<float> positional_;                // [max_len, model dim]
  std::vector<LayerParams> layers_;
  std::vector<nn::QuantizedLinear> sites_;  // layer-major, then projection
  bool has_projection_ = false;
  // Model view over the owned weight vectors above, consumed by the shared
  // packed engine (nn::PackedEncodeForward). The vectors never move after
  // construction, so the pointers are built once and stay valid.
  nn::PackedModelView view_;
};

}  // namespace qpe::encoder

#endif  // QPE_ENCODER_QUANTIZED_ENCODER_H_
