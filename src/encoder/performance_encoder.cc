#include "encoder/performance_encoder.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "data/features.h"
#include "nn/arena.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/parallel.h"

namespace qpe::encoder {

// --- PerfEncoderBase ---

PerfEncoderBase::PerfEncoderBase(const PerfEncoderConfig& config,
                                 util::Rng* rng)
    : config_(config) {
  heads_ = RegisterModule("heads",
                          std::make_unique<nn::Linear>(config.embed_dim, 3, rng));
}

nn::Tensor PerfEncoderBase::PredictLabels(const nn::Tensor& embedding) const {
  return heads_->Forward(embedding);
}

// --- PerformanceEncoder (three-column) ---

PerformanceEncoder::PerformanceEncoder(const PerfEncoderConfig& config,
                                       util::Rng* rng)
    : PerfEncoderBase(config, rng) {
  node_column_ = RegisterModule(
      "node_column",
      std::make_unique<nn::Mlp>(
          std::vector<int>{config.node_dim, config.column_hidden,
                           config.column_hidden},
          nn::Activation::kRelu, nn::Activation::kRelu, rng));
  meta_column_ = RegisterModule(
      "meta_column",
      std::make_unique<nn::Mlp>(
          std::vector<int>{config.meta_dim, config.column_hidden,
                           config.column_hidden},
          nn::Activation::kRelu, nn::Activation::kRelu, rng));
  db_column_ = RegisterModule(
      "db_column",
      std::make_unique<nn::Mlp>(
          std::vector<int>{config.db_dim, config.column_hidden,
                           config.column_hidden},
          nn::Activation::kRelu, nn::Activation::kRelu, rng));
  merge_ = RegisterModule(
      "merge",
      std::make_unique<nn::Linear>(3 * config.column_hidden, config.embed_dim,
                                   rng));
}

nn::Tensor PerformanceEncoder::Embed(const nn::Tensor& node_features,
                                     const nn::Tensor& meta_features,
                                     const nn::Tensor& db_features) const {
  const nn::Tensor merged = nn::ConcatCols({node_column_->Forward(node_features),
                                        meta_column_->Forward(meta_features),
                                        db_column_->Forward(db_features)});
  return Relu(merge_->Forward(merged));
}

// --- SingleColumnPerformanceEncoder ---

SingleColumnPerformanceEncoder::SingleColumnPerformanceEncoder(
    const PerfEncoderConfig& config, util::Rng* rng)
    : PerfEncoderBase(config, rng) {
  const int input_dim = config.node_dim + config.meta_dim + config.db_dim;
  // Same depth and comparable width as the three-column model.
  stack_ = RegisterModule(
      "stack", std::make_unique<nn::Mlp>(
                   std::vector<int>{input_dim, 3 * config.column_hidden,
                                    3 * config.column_hidden, config.embed_dim},
                   nn::Activation::kRelu, nn::Activation::kRelu, rng));
}

nn::Tensor SingleColumnPerformanceEncoder::Embed(
    const nn::Tensor& node_features, const nn::Tensor& meta_features,
    const nn::Tensor& db_features) const {
  return stack_->Forward(
      nn::ConcatCols({node_features, meta_features, db_features}));
}

// --- Training ---

namespace {

nn::Tensor RowsToTensor(const std::vector<data::OperatorSample>& samples,
                        const std::vector<int>& indices,
                        const std::vector<double> data::OperatorSample::*field) {
  const int cols =
      static_cast<int>((samples[indices[0]].*field).size());
  std::vector<float> data;
  data.reserve(indices.size() * cols);
  for (int i : indices) {
    for (double v : samples[i].*field) {
      // Last line of defense for foreign samples: a non-finite feature (or
      // a double that overflows float) becomes 0 instead of poisoning the
      // whole batch through the matmul.
      const float fv = static_cast<float>(v);
      data.push_back(std::isfinite(fv) ? fv : 0.0f);
    }
  }
  return nn::Tensor::FromVector(static_cast<int>(indices.size()), cols, data);
}

}  // namespace

PerfBatch MakePerfBatch(const std::vector<data::OperatorSample>& samples,
                        const std::vector<int>& indices) {
  PerfBatch batch;
  batch.node = RowsToTensor(samples, indices, &data::OperatorSample::node_features);
  batch.meta = RowsToTensor(samples, indices, &data::OperatorSample::meta_features);
  batch.db = RowsToTensor(samples, indices, &data::OperatorSample::db_features);
  std::vector<float> labels;
  labels.reserve(indices.size() * 3);
  for (int i : indices) {
    labels.push_back(
        static_cast<float>(data::EncodeLabel(samples[i].actual_total_time_ms)));
    labels.push_back(static_cast<float>(data::EncodeLabel(samples[i].total_cost)));
    labels.push_back(
        static_cast<float>(data::EncodeLabel(samples[i].startup_cost)));
  }
  batch.labels = nn::Tensor::FromVector(static_cast<int>(indices.size()), 3,
                                        labels);
  return batch;
}

double EvaluatePerfMaeMs(const PerfEncoderBase& model,
                         const std::vector<data::OperatorSample>& samples) {
  if (samples.empty()) return 0;
  nn::ArenaScope arena;     // the whole eval graph dies with this scope
  nn::NoGradGuard no_grad;  // pure forward: skip graph construction
  std::vector<int> all(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) all[i] = static_cast<int>(i);
  const PerfBatch batch = MakePerfBatch(samples, all);
  const nn::Tensor pred =
      model.PredictLabels(model.Embed(batch.node, batch.meta, batch.db));
  const float* pv = pred.value().data();  // [n, 3] rows; label in column 0
  const int pn = pred.cols();
  double total = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double pred_ms = data::DecodeLabel(pv[i * pn]);
    total += std::abs(pred_ms - samples[i].actual_total_time_ms);
  }
  return total / static_cast<double>(samples.size());
}

namespace {

void RecordIoStatus(const PerfTrainOptions& options, util::Status status) {
  if (options.io_status != nullptr && options.io_status->ok()) {
    *options.io_status = std::move(status);
  }
}

}  // namespace

std::vector<PerfEpochStats> TrainPerformanceEncoder(
    PerfEncoderBase* model, const data::OperatorDataset& dataset,
    const PerfTrainOptions& options) {
  std::vector<nn::Tensor> params = model->Parameters();
  nn::Adam optimizer(params, options.lr);
  util::Rng rng(options.seed);
  std::vector<PerfEpochStats> history;
  nn::TrainingState ckpt_state;
  const bool checkpointing = !options.checkpoint.path.empty();
  if (checkpointing && options.checkpoint.resume &&
      nn::CheckpointExists(options.checkpoint.path)) {
    util::Status s = nn::LoadTrainingCheckpoint(options.checkpoint.path, model,
                                                &optimizer, &ckpt_state);
    if (!s.ok()) {
      // A corrupt checkpoint must not be silently overwritten by a fresh
      // run; surface the error and do nothing.
      RecordIoStatus(options, std::move(s));
      return history;
    }
    rng.SetState(ckpt_state.rng);
  }
  double best_val = ckpt_state.best_val;
  int best_epoch = static_cast<int>(ckpt_state.best_epoch);
  model->SetTraining(true);
  nn::ShardGradBuffers scratch;
  const int n = static_cast<int>(dataset.train.size());
  // Rows per data-parallel shard within a minibatch. Fixed (never derived
  // from the thread count) so the shard partition — and therefore the
  // gradient reduction order — is identical for every thread count.
  constexpr int kShardRows = 8;
  const int interval = std::max(1, options.checkpoint.interval_epochs);
  for (int epoch = static_cast<int>(ckpt_state.next_epoch);
       epoch < options.epochs; ++epoch) {
    const std::vector<int> order = rng.Permutation(n);
    int epoch_skipped = 0;
    int epoch_nonfinite = 0;
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      const int count = end - start;
      const int num_shards = (count + kShardRows - 1) / kShardRows;
      model->ZeroGrad();
      const double batch_loss = nn::ParallelGradientStep(
          params, num_shards,
          [&](int shard) {
            const int s0 = start + shard * kShardRows;
            const int s1 = std::min(end, s0 + kShardRows);
            const std::vector<int> indices(order.begin() + s0,
                                           order.begin() + s1);
            const PerfBatch batch = MakePerfBatch(dataset.train, indices);
            const nn::Tensor pred = model->PredictLabels(
                model->Embed(batch.node, batch.meta, batch.db));
            // Summed over shards this equals MseLoss over the whole
            // minibatch: shard SSE over the full batch element count.
            return Scale(Sum(Square(Sub(pred, batch.labels))),
                         1.0f / static_cast<float>(count * 3));
          },
          &scratch);
      ++ckpt_state.global_step;
      if (!std::isfinite(batch_loss)) {
        // Loss-spike guard: a NaN/Inf batch would propagate poison through
        // the Adam moments into every later step. Drop the update (the
        // gradients are zeroed at the top of the next batch) and count it.
        ++epoch_nonfinite;
        ++epoch_skipped;
        continue;
      }
      ClipGradNorm(params, options.grad_clip);
      optimizer.Step();
    }
    PerfEpochStats stats;
    model->SetTraining(false);
    stats.train_mae_ms = EvaluatePerfMaeMs(*model, dataset.train);
    stats.val_mae_ms = EvaluatePerfMaeMs(*model, dataset.val);
    stats.test_mae_ms = EvaluatePerfMaeMs(*model, dataset.test);
    stats.skipped_batches = epoch_skipped;
    stats.nonfinite_losses = epoch_nonfinite;
    model->SetTraining(true);
    history.push_back(stats);
    ckpt_state.skipped_batches += epoch_skipped;
    ckpt_state.nonfinite_losses += epoch_nonfinite;
    if (stats.val_mae_ms < best_val - 1e-12) {
      best_val = stats.val_mae_ms;
      best_epoch = epoch;
    }
    const bool early_stop = options.patience_epochs > 0 &&
                            epoch - best_epoch >= options.patience_epochs;
    if (checkpointing &&
        ((epoch + 1) % interval == 0 || epoch + 1 == options.epochs ||
         early_stop)) {
      ckpt_state.next_epoch = epoch + 1;
      ckpt_state.best_val = best_val;
      ckpt_state.best_epoch = best_epoch;
      ckpt_state.rng = rng.GetState();
      util::Status s = nn::SaveTrainingCheckpoint(options.checkpoint.path,
                                                  *model, optimizer,
                                                  ckpt_state);
      // A failed periodic save degrades durability, not training: record
      // the error and keep going.
      if (!s.ok()) RecordIoStatus(options, std::move(s));
    }
    if (early_stop) break;  // validation MAE stopped improving
  }
  model->SetTraining(false);
  return history;
}

}  // namespace qpe::encoder
