#ifndef QPE_ENCODER_STRUCTURE_ENCODER_H_
#define QPE_ENCODER_STRUCTURE_ENCODER_H_

#include <memory>
#include <span>
#include <vector>

#include "nn/checkpoint.h"
#include "nn/module.h"
#include "nn/packed_batch.h"
#include "nn/tensor.h"
#include "nn/transformer.h"
#include "plan/linearize.h"
#include "plan/plan_node.h"
#include "plan/taxonomy.h"

namespace qpe::encoder {

class QuantizedPlanEncoder;  // encoder/quantized_encoder.h

// Splits a linearized token sequence into three per-level id sequences for
// the sub-type embeddings.
struct TokenIds {
  std::vector<int> level1;
  std::vector<int> level2;
  std::vector<int> level3;
};
TokenIds TokensToIds(const std::vector<plan::OperatorType>& tokens);

// Bag-of-subtypes featurization of a plan (normalized subtype counts plus
// size/depth), the input of the FNN baseline and the sparse autoencoder.
int BagOfTokensDim();
std::vector<double> BagOfTokens(const plan::PlanNode& root);

// Columnar batch assembly for the packed pipeline: linearizes every plan
// (DFS-bracket, truncated to max_len), clamps the three sub-type ids, and
// appends them straight into the workspace's id columns, then builds the
// ragged layout in place. Equivalent to LinearizeDfsBracket + TokensToIds
// + BatchLayout::FromLengths per plan, but reuses the workspace's capacity
// so steady-state packing performs no heap allocation.
void PackPlansColumns(std::span<const plan::PlanNode* const> plans,
                      int max_len, nn::PackedBatch* ws);

// Common interface of all plan structure encoders: plan in, S(p) out.
class PlanSequenceEncoder : public nn::Module {
 public:
  // Returns the structural embedding [1, output_dim]. `dropout_rng` enables
  // stochastic regularization during training; pass nullptr for eval.
  virtual nn::Tensor Encode(const plan::PlanNode& root,
                            util::Rng* dropout_rng) const = 0;

  // Encodes a batch of plans; result i is the [1, output_dim] embedding of
  // plans[i], bit-identical to Encode(*plans[i], dropout_rng). The base
  // implementation is a per-plan loop; encoders with a batched forward
  // (TransformerPlanEncoder) override it to amortize matmuls across the
  // whole batch. This is the serving hot path — see serve::EmbeddingService.
  virtual std::vector<nn::Tensor> EncodeBatch(
      std::span<const plan::PlanNode* const> plans,
      util::Rng* dropout_rng) const;

  // Gradient-recording batch encode: like EncodeBatch, but usable while
  // gradients are enabled — result i backpropagates exactly like
  // Encode(*plans[i], dropout_rng) would, gradient bits included. The base
  // implementation is the per-plan loop (which IS that reference);
  // TransformerPlanEncoder overrides it with the columnar packed training
  // forward/backward (nn/packed_train.h) so data-parallel training shards
  // run one packed pass per shard instead of per-plan op-chain graphs.
  virtual std::vector<nn::Tensor> EncodeBatchGrad(
      std::span<const plan::PlanNode* const> plans,
      util::Rng* dropout_rng) const;

  virtual int output_dim() const = 0;
};

struct StructureEncoderConfig {
  // Sub-type embedding dims; the model dim is their sum (paper: input
  // embedding is the concatenation of the three sub-type embeddings).
  int level1_dim = 24;
  int level2_dim = 12;
  int level3_dim = 12;
  int num_heads = 4;
  int ff_dim = 96;
  int num_layers = 2;
  int max_len = 256;
  float dropout = 0.1f;
  // Final projection dim; 0 means "use the model dim directly". Used by the
  // embedding-size sweep of the paper's Figure 9.
  int output_dim = 0;

  int ModelDim() const { return level1_dim + level2_dim + level3_dim; }
};

// The paper's structure encoder (§3.1.2): DFS-bracket linearization,
// three-subtype concatenated input embeddings, multi-head self-attentive
// (transformer) layers, CLS pooling.
class TransformerPlanEncoder : public PlanSequenceEncoder {
 public:
  TransformerPlanEncoder(const StructureEncoderConfig& config, util::Rng* rng);

  nn::Tensor Encode(const plan::PlanNode& root,
                    util::Rng* dropout_rng) const override;
  nn::Tensor EncodeTokens(const std::vector<plan::OperatorType>& tokens,
                          util::Rng* dropout_rng) const;

  // Batched inference: linearizes all plans, packs the token sequences into
  // one ragged batch (nn::BatchLayout) and runs a single transformer
  // forward, so the embedding lookup, q/k/v/output projections, layer
  // norms and feed-forward GEMMs are amortized across the batch.
  // Bit-identical to per-plan Encode. With a non-null dropout RNG during
  // training it falls back to the per-plan path (dropout draws are
  // per-sequence by contract).
  std::vector<nn::Tensor> EncodeBatch(
      std::span<const plan::PlanNode* const> plans,
      util::Rng* dropout_rng) const override;

  // Training fast path: packs the batch (in reverse caller order — see
  // nn/packed_train.h) and runs the columnar recording forward, returning
  // slices of one graph node whose backward replays the op chain's
  // gradient arithmetic through the dispatched backward kernels.
  // Bit-identical to the per-plan loop — values, dropout streams and
  // accumulated parameter gradients — at every SIMD level. Falls back to
  // the per-plan loop under NoGradGuard (it would record no graph there;
  // eval paths keep their existing numerics) or when QPE_PACKED /
  // QPE_PACKED_TRAIN disable it.
  std::vector<nn::Tensor> EncodeBatchGrad(
      std::span<const plan::PlanNode* const> plans,
      util::Rng* dropout_rng) const override;

  int output_dim() const override;

  const StructureEncoderConfig& config() const { return config_; }

  // Builds an int8-quantized serving twin of this encoder (weights copied,
  // activation scales calibrated on the given held-out plan sample). The
  // result is self-contained: it does not reference this encoder after
  // construction. See encoder/quantized_encoder.h. Defined in
  // quantized_encoder.cc.
  std::unique_ptr<QuantizedPlanEncoder> Quantize(
      std::span<const plan::PlanNode* const> calibration) const;

 private:
  // Stable Tensor handles to every parameter the packed engine touches,
  // resolved once from the dotted parameter names. Checkpoint loads
  // replace a tensor's value *buffer* but not its identity, so the handles
  // survive LoadCheckpoint; EncodeBatchPacked re-reads the raw data
  // pointers from them on every call.
  struct PackedRefs {
    nn::Tensor embed1, embed2, embed3, positional;
    struct Layer {
      nn::Tensor norm1_gamma, norm1_beta, norm2_gamma, norm2_beta;
    };
    std::vector<Layer> layers;
    struct Site {
      nn::Tensor weight, bias;
    };
    std::vector<Site> sites;  // layer-major wq,wk,wv,wo,ff1,ff2; projection
  };

  // The columnar fast path of EncodeBatch: packs into the thread-local
  // nn::PackedBatch and runs the graph-free packed engine with fp32 GEMMs.
  // Bit-identical to the op-chain path at every SIMD level. Engaged only
  // under an active NoGradGuard (it records no graph) when QPE_PACKED
  // allows.
  std::vector<nn::Tensor> EncodeBatchPacked(
      std::span<const plan::PlanNode* const> plans) const;

  StructureEncoderConfig config_;
  nn::Embedding* embed1_;
  nn::Embedding* embed2_;
  nn::Embedding* embed3_;
  nn::TransformerEncoder* transformer_;
  nn::Linear* projection_ = nullptr;  // only when output_dim != model dim
  PackedRefs packed_refs_;
};

// LSTM baseline over the same linearization (LSTM-PPSR in §6.1).
class LstmPlanEncoder : public PlanSequenceEncoder {
 public:
  LstmPlanEncoder(const StructureEncoderConfig& config, util::Rng* rng);

  nn::Tensor Encode(const plan::PlanNode& root,
                    util::Rng* dropout_rng) const override;
  int output_dim() const override;

 private:
  StructureEncoderConfig config_;
  nn::Embedding* embed1_;
  nn::Embedding* embed2_;
  nn::Embedding* embed3_;
  nn::Lstm* lstm_;
  nn::Linear* projection_ = nullptr;
};

// Feed-forward baseline on bag-of-subtype features (FNN in §6.1's
// from-scratch comparison).
class FnnPlanEncoder : public PlanSequenceEncoder {
 public:
  FnnPlanEncoder(int hidden_dim, int output_dim, util::Rng* rng);

  nn::Tensor Encode(const plan::PlanNode& root,
                    util::Rng* dropout_rng) const override;
  int output_dim() const override { return output_dim_; }

 private:
  int output_dim_;
  nn::Mlp* mlp_;
};

// Sparse autoencoder baseline (Sparse-AE in §6.1): self-supervised
// reconstruction of the bag-of-subtypes vector with an L1 sparsity penalty
// on the hidden code; Encode() returns the code.
class SparseAutoencoder : public PlanSequenceEncoder {
 public:
  SparseAutoencoder(int code_dim, util::Rng* rng);

  nn::Tensor Encode(const plan::PlanNode& root,
                    util::Rng* dropout_rng) const override;
  int output_dim() const override { return code_dim_; }

  // Reconstruction + sparsity loss for one plan (self-supervised pretraining).
  nn::Tensor ReconstructionLoss(const plan::PlanNode& root,
                                float sparsity_weight = 1e-3f) const;

 private:
  nn::Tensor EncodeFeatures(const nn::Tensor& features) const;

  int code_dim_;
  nn::Linear* encoder_;
  nn::Linear* decoder_;
};

// Pretrains a sparse autoencoder on a set of plans. With batch_size > 1
// each minibatch trains data-parallel (one shard per plan, gradients
// reduced deterministically in shard order before the optimizer step);
// batch_size == 1 reproduces the original per-plan SGD exactly. With a
// non-empty `checkpoint.path` the run saves crash-safe training state every
// `checkpoint.interval_epochs` and resumes bit-exactly from an existing
// checkpoint file.
void PretrainSparseAutoencoder(SparseAutoencoder* autoencoder,
                               const std::vector<const plan::PlanNode*>& plans,
                               int epochs, float lr, uint64_t seed,
                               int batch_size = 1,
                               const nn::CheckpointConfig& checkpoint = {});

}  // namespace qpe::encoder

#endif  // QPE_ENCODER_STRUCTURE_ENCODER_H_
