#include "encoder/structure_encoder.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "nn/parallel.h"

namespace qpe::encoder {

using plan::Taxonomy;

namespace {

// Ingestion hardening: an id outside the vocabulary (a corrupt or
// unsanitized foreign tree) embeds as the reserved UNKNOWN row instead of
// reading past the embedding table.
int ClampId(uint8_t id, int count, int unknown) {
  return id < count ? id : unknown;
}

}  // namespace

TokenIds TokensToIds(const std::vector<plan::OperatorType>& tokens) {
  const Taxonomy& tax = Taxonomy::Get();
  TokenIds ids;
  ids.level1.reserve(tokens.size());
  ids.level2.reserve(tokens.size());
  ids.level3.reserve(tokens.size());
  for (const plan::OperatorType& t : tokens) {
    ids.level1.push_back(ClampId(t.level1, tax.Level1Count(), tax.unknown1()));
    ids.level2.push_back(ClampId(t.level2, tax.Level2Count(), tax.unknown2()));
    ids.level3.push_back(ClampId(t.level3, tax.Level3Count(), tax.unknown3()));
  }
  return ids;
}

int BagOfTokensDim() {
  const Taxonomy& tax = Taxonomy::Get();
  return tax.Level1Count() + tax.Level2Count() + tax.Level3Count() + 2;
}

std::vector<double> BagOfTokens(const plan::PlanNode& root) {
  const Taxonomy& tax = Taxonomy::Get();
  std::vector<double> features(BagOfTokensDim(), 0.0);
  int nodes = 0;
  root.Visit([&](const plan::PlanNode& n) {
    ++nodes;
    const plan::OperatorType& t = n.type();
    features[ClampId(t.level1, tax.Level1Count(), tax.unknown1())] += 1.0;
    features[tax.Level1Count() +
             ClampId(t.level2, tax.Level2Count(), tax.unknown2())] += 1.0;
    features[tax.Level1Count() + tax.Level2Count() +
             ClampId(t.level3, tax.Level3Count(), tax.unknown3())] += 1.0;
  });
  const double inv = nodes > 0 ? 1.0 / nodes : 0.0;
  for (double& f : features) f *= inv;
  features[features.size() - 2] = std::log1p(static_cast<double>(nodes)) / 6.0;
  features[features.size() - 1] =
      std::log1p(static_cast<double>(root.Depth())) / 5.0;
  return features;
}

namespace {

nn::Tensor FeaturesToTensor(const std::vector<double>& features) {
  std::vector<float> data(features.begin(), features.end());
  return nn::Tensor::FromVector(1, static_cast<int>(data.size()), data);
}

}  // namespace

// --- PlanSequenceEncoder ---

std::vector<nn::Tensor> PlanSequenceEncoder::EncodeBatch(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (const plan::PlanNode* p : plans) out.push_back(Encode(*p, dropout_rng));
  return out;
}

// --- TransformerPlanEncoder ---

TransformerPlanEncoder::TransformerPlanEncoder(
    const StructureEncoderConfig& config, util::Rng* rng)
    : config_(config) {
  const Taxonomy& tax = Taxonomy::Get();
  embed1_ = RegisterModule("embed1", std::make_unique<nn::Embedding>(
                                         tax.Level1Count(), config.level1_dim,
                                         rng));
  embed2_ = RegisterModule("embed2", std::make_unique<nn::Embedding>(
                                         tax.Level2Count(), config.level2_dim,
                                         rng));
  embed3_ = RegisterModule("embed3", std::make_unique<nn::Embedding>(
                                         tax.Level3Count(), config.level3_dim,
                                         rng));
  transformer_ = RegisterModule(
      "transformer",
      std::make_unique<nn::TransformerEncoder>(
          config.ModelDim(), config.num_heads, config.ff_dim,
          config.num_layers, config.max_len, config.dropout, rng));
  if (config.output_dim > 0 && config.output_dim != config.ModelDim()) {
    projection_ = RegisterModule(
        "projection",
        std::make_unique<nn::Linear>(config.ModelDim(), config.output_dim, rng));
  }
}

int TransformerPlanEncoder::output_dim() const {
  return projection_ != nullptr ? config_.output_dim : config_.ModelDim();
}

nn::Tensor TransformerPlanEncoder::EncodeTokens(
    const std::vector<plan::OperatorType>& tokens,
    util::Rng* dropout_rng) const {
  std::vector<plan::OperatorType> bounded = tokens;
  // Sequences past max_len (adversarially deep foreign plans) truncate
  // instead of outrunning the positional-encoding table.
  if (static_cast<int>(bounded.size()) > config_.max_len) {
    bounded.resize(config_.max_len);
  }
  const TokenIds ids = TokensToIds(bounded);
  const nn::Tensor embedded = nn::ConcatCols({embed1_->Forward(ids.level1),
                                          embed2_->Forward(ids.level2),
                                          embed3_->Forward(ids.level3)});
  const nn::Tensor contextual = transformer_->Forward(embedded, dropout_rng);
  // CLS pooling: the first token aggregates the sequence (§3.1.2).
  nn::Tensor cls = SliceRows(contextual, 0, 1);
  if (projection_ != nullptr) cls = projection_->Forward(cls);
  return cls;
}

nn::Tensor TransformerPlanEncoder::Encode(const plan::PlanNode& root,
                                          util::Rng* dropout_rng) const {
  return EncodeTokens(plan::LinearizeDfsBracket(root), dropout_rng);
}

std::vector<nn::Tensor> TransformerPlanEncoder::EncodeBatch(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  if (plans.empty()) return {};
  if (dropout_rng != nullptr && training()) {
    // Dropout draws are defined per sequence; the packed path cannot
    // reproduce them, so training-mode batches take the per-plan loop.
    return PlanSequenceEncoder::EncodeBatch(plans, dropout_rng);
  }
  // Linearize and pack every plan's (truncated) token sequence into one
  // ragged batch.
  TokenIds packed;
  std::vector<int> lengths;
  lengths.reserve(plans.size());
  for (const plan::PlanNode* p : plans) {
    std::vector<plan::OperatorType> tokens = plan::LinearizeDfsBracket(*p);
    if (static_cast<int>(tokens.size()) > config_.max_len) {
      tokens.resize(config_.max_len);
    }
    const TokenIds ids = TokensToIds(tokens);
    packed.level1.insert(packed.level1.end(), ids.level1.begin(),
                         ids.level1.end());
    packed.level2.insert(packed.level2.end(), ids.level2.begin(),
                         ids.level2.end());
    packed.level3.insert(packed.level3.end(), ids.level3.begin(),
                         ids.level3.end());
    lengths.push_back(static_cast<int>(tokens.size()));
  }
  const nn::BatchLayout layout = nn::BatchLayout::FromLengths(lengths);
  // One embedding gather + one transformer pass for the whole batch.
  const nn::Tensor embedded =
      nn::ConcatCols({embed1_->Forward(packed.level1),
                      embed2_->Forward(packed.level2),
                      embed3_->Forward(packed.level3)});
  const nn::Tensor contextual = transformer_->ForwardBatch(embedded, layout);
  // CLS pooling: row 0 of each sequence, gathered into a [B, d] matrix so
  // the optional projection is itself one batched GEMM.
  nn::Tensor cls = GatherRows(contextual, layout.offsets);
  if (projection_ != nullptr) cls = projection_->Forward(cls);
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (int i = 0; i < layout.size(); ++i) {
    out.push_back(SliceRows(cls, i, 1));
  }
  return out;
}

// --- LstmPlanEncoder ---

LstmPlanEncoder::LstmPlanEncoder(const StructureEncoderConfig& config,
                                 util::Rng* rng)
    : config_(config) {
  const Taxonomy& tax = Taxonomy::Get();
  embed1_ = RegisterModule("embed1", std::make_unique<nn::Embedding>(
                                         tax.Level1Count(), config.level1_dim,
                                         rng));
  embed2_ = RegisterModule("embed2", std::make_unique<nn::Embedding>(
                                         tax.Level2Count(), config.level2_dim,
                                         rng));
  embed3_ = RegisterModule("embed3", std::make_unique<nn::Embedding>(
                                         tax.Level3Count(), config.level3_dim,
                                         rng));
  lstm_ = RegisterModule(
      "lstm", std::make_unique<nn::Lstm>(config.ModelDim(), config.ModelDim(),
                                         rng));
  if (config.output_dim > 0 && config.output_dim != config.ModelDim()) {
    projection_ = RegisterModule(
        "projection",
        std::make_unique<nn::Linear>(config.ModelDim(), config.output_dim, rng));
  }
}

int LstmPlanEncoder::output_dim() const {
  return projection_ != nullptr ? config_.output_dim : config_.ModelDim();
}

nn::Tensor LstmPlanEncoder::Encode(const plan::PlanNode& root,
                                   util::Rng* dropout_rng) const {
  (void)dropout_rng;
  std::vector<plan::OperatorType> tokens = plan::LinearizeDfsBracket(root);
  if (static_cast<int>(tokens.size()) > config_.max_len) {
    tokens.resize(config_.max_len);
  }
  const TokenIds ids = TokensToIds(tokens);
  const nn::Tensor embedded = nn::ConcatCols({embed1_->Forward(ids.level1),
                                          embed2_->Forward(ids.level2),
                                          embed3_->Forward(ids.level3)});
  nn::Tensor final_state = lstm_->Forward(embedded);
  if (projection_ != nullptr) final_state = projection_->Forward(final_state);
  return final_state;
}

// --- FnnPlanEncoder ---

FnnPlanEncoder::FnnPlanEncoder(int hidden_dim, int output_dim, util::Rng* rng)
    : output_dim_(output_dim) {
  mlp_ = RegisterModule(
      "mlp", std::make_unique<nn::Mlp>(
                 std::vector<int>{BagOfTokensDim(), hidden_dim, output_dim},
                 nn::Activation::kRelu, nn::Activation::kNone, rng));
}

nn::Tensor FnnPlanEncoder::Encode(const plan::PlanNode& root,
                                  util::Rng* dropout_rng) const {
  (void)dropout_rng;
  return mlp_->Forward(FeaturesToTensor(BagOfTokens(root)));
}

// --- SparseAutoencoder ---

SparseAutoencoder::SparseAutoencoder(int code_dim, util::Rng* rng)
    : code_dim_(code_dim) {
  encoder_ = RegisterModule(
      "encoder", std::make_unique<nn::Linear>(BagOfTokensDim(), code_dim, rng));
  decoder_ = RegisterModule(
      "decoder", std::make_unique<nn::Linear>(code_dim, BagOfTokensDim(), rng));
}

nn::Tensor SparseAutoencoder::EncodeFeatures(const nn::Tensor& features) const {
  return Sigmoid(encoder_->Forward(features));
}

nn::Tensor SparseAutoencoder::Encode(const plan::PlanNode& root,
                                     util::Rng* dropout_rng) const {
  (void)dropout_rng;
  return EncodeFeatures(FeaturesToTensor(BagOfTokens(root)));
}

nn::Tensor SparseAutoencoder::ReconstructionLoss(const plan::PlanNode& root,
                                                 float sparsity_weight) const {
  const nn::Tensor features = FeaturesToTensor(BagOfTokens(root));
  const nn::Tensor code = EncodeFeatures(features);
  const nn::Tensor reconstruction = decoder_->Forward(code);
  const nn::Tensor mse = Mean(Square(Sub(reconstruction, features)));
  const nn::Tensor sparsity = Mean(Abs(code));
  return Add(mse, Scale(sparsity, sparsity_weight));
}

void PretrainSparseAutoencoder(SparseAutoencoder* autoencoder,
                               const std::vector<const plan::PlanNode*>& plans,
                               int epochs, float lr, uint64_t seed,
                               int batch_size,
                               const nn::CheckpointConfig& checkpoint) {
  const std::vector<nn::Tensor> params = autoencoder->Parameters();
  nn::Adam optimizer(params, lr);
  util::Rng rng(seed);
  nn::TrainingState ckpt_state;
  const bool checkpointing = !checkpoint.path.empty();
  if (checkpointing && checkpoint.resume &&
      nn::CheckpointExists(checkpoint.path)) {
    if (!nn::LoadTrainingCheckpoint(checkpoint.path, autoencoder, &optimizer,
                                    &ckpt_state)
             .ok()) {
      return;  // never overwrite a checkpoint that failed to load
    }
    rng.SetState(ckpt_state.rng);
  }
  nn::ShardGradBuffers scratch;
  const size_t batch = batch_size < 1 ? 1 : static_cast<size_t>(batch_size);
  const int interval = std::max(1, checkpoint.interval_epochs);
  for (int epoch = static_cast<int>(ckpt_state.next_epoch); epoch < epochs;
       ++epoch) {
    const std::vector<int> order =
        rng.Permutation(static_cast<int>(plans.size()));
    for (size_t start = 0; start < order.size(); start += batch) {
      const int count =
          static_cast<int>(std::min(order.size(), start + batch) - start);
      autoencoder->ZeroGrad();
      const double batch_loss = nn::ParallelGradientStep(
          params, count,
          [&](int s) {
            // Summed over shards this is the mean loss over the minibatch;
            // with batch_size == 1 the scale is exactly 1.
            return Scale(
                autoencoder->ReconstructionLoss(*plans[order[start + s]]),
                1.0f / static_cast<float>(count));
          },
          &scratch);
      if (!std::isfinite(batch_loss)) {
        ++ckpt_state.skipped_batches;  // loss-spike guard: drop the update
        ++ckpt_state.nonfinite_losses;
        continue;
      }
      optimizer.Step();
    }
    if (checkpointing && ((epoch + 1) % interval == 0 || epoch + 1 == epochs)) {
      ckpt_state.next_epoch = epoch + 1;
      ckpt_state.rng = rng.GetState();
      // Best effort: a failed periodic save degrades durability only.
      (void)nn::SaveTrainingCheckpoint(checkpoint.path, *autoencoder,
                                       optimizer, ckpt_state);
    }
  }
}

}  // namespace qpe::encoder
