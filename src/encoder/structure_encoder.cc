#include "encoder/structure_encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>

#include "nn/arena.h"
#include "nn/optimizer.h"
#include "nn/packed_forward.h"
#include "nn/packed_train.h"
#include "nn/parallel.h"
#include "nn/simd.h"

namespace qpe::encoder {

using plan::Taxonomy;

namespace {

// Ingestion hardening: an id outside the vocabulary (a corrupt or
// unsanitized foreign tree) embeds as the reserved UNKNOWN row instead of
// reading past the embedding table.
int ClampId(uint8_t id, int count, int unknown) {
  return id < count ? id : unknown;
}

}  // namespace

TokenIds TokensToIds(const std::vector<plan::OperatorType>& tokens) {
  const Taxonomy& tax = Taxonomy::Get();
  TokenIds ids;
  ids.level1.reserve(tokens.size());
  ids.level2.reserve(tokens.size());
  ids.level3.reserve(tokens.size());
  for (const plan::OperatorType& t : tokens) {
    ids.level1.push_back(ClampId(t.level1, tax.Level1Count(), tax.unknown1()));
    ids.level2.push_back(ClampId(t.level2, tax.Level2Count(), tax.unknown2()));
    ids.level3.push_back(ClampId(t.level3, tax.Level3Count(), tax.unknown3()));
  }
  return ids;
}

int BagOfTokensDim() {
  const Taxonomy& tax = Taxonomy::Get();
  return tax.Level1Count() + tax.Level2Count() + tax.Level3Count() + 2;
}

std::vector<double> BagOfTokens(const plan::PlanNode& root) {
  const Taxonomy& tax = Taxonomy::Get();
  std::vector<double> features(BagOfTokensDim(), 0.0);
  int nodes = 0;
  root.Visit([&](const plan::PlanNode& n) {
    ++nodes;
    const plan::OperatorType& t = n.type();
    features[ClampId(t.level1, tax.Level1Count(), tax.unknown1())] += 1.0;
    features[tax.Level1Count() +
             ClampId(t.level2, tax.Level2Count(), tax.unknown2())] += 1.0;
    features[tax.Level1Count() + tax.Level2Count() +
             ClampId(t.level3, tax.Level3Count(), tax.unknown3())] += 1.0;
  });
  const double inv = nodes > 0 ? 1.0 / nodes : 0.0;
  for (double& f : features) f *= inv;
  features[features.size() - 2] = std::log1p(static_cast<double>(nodes)) / 6.0;
  features[features.size() - 1] =
      std::log1p(static_cast<double>(root.Depth())) / 5.0;
  return features;
}

namespace {

nn::Tensor FeaturesToTensor(const std::vector<double>& features) {
  std::vector<float> data(features.begin(), features.end());
  return nn::Tensor::FromVector(1, static_cast<int>(data.size()), data);
}

}  // namespace

void PackPlansColumns(std::span<const plan::PlanNode* const> plans,
                      int max_len, nn::PackedBatch* ws) {
  const Taxonomy& tax = Taxonomy::Get();
  const int c1 = tax.Level1Count(), u1 = tax.unknown1();
  const int c2 = tax.Level2Count(), u2 = tax.unknown2();
  const int c3 = tax.Level3Count(), u3 = tax.unknown3();
  // One linearization scratch per thread, reused across plans and batches.
  thread_local std::vector<plan::OperatorType> tokens;
  ws->BeginBatch();
  for (const plan::PlanNode* p : plans) {
    plan::LinearizeDfsBracketInto(*p, &tokens);
    const int len = std::min(static_cast<int>(tokens.size()), max_len);
    for (int t = 0; t < len; ++t) {
      const plan::OperatorType& tok = tokens[t];
      ws->ids1.push_back(ClampId(tok.level1, c1, u1));
      ws->ids2.push_back(ClampId(tok.level2, c2, u2));
      ws->ids3.push_back(ClampId(tok.level3, c3, u3));
    }
    ws->lengths.push_back(len);
  }
  ws->BuildLayout();
  ws->FinishPack();
}

// --- PlanSequenceEncoder ---

std::vector<nn::Tensor> PlanSequenceEncoder::EncodeBatch(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (const plan::PlanNode* p : plans) out.push_back(Encode(*p, dropout_rng));
  return out;
}

std::vector<nn::Tensor> PlanSequenceEncoder::EncodeBatchGrad(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  // The per-plan loop is the gradient-bit reference the packed override
  // must reproduce.
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (const plan::PlanNode* p : plans) out.push_back(Encode(*p, dropout_rng));
  return out;
}

// --- TransformerPlanEncoder ---

TransformerPlanEncoder::TransformerPlanEncoder(
    const StructureEncoderConfig& config, util::Rng* rng)
    : config_(config) {
  const Taxonomy& tax = Taxonomy::Get();
  embed1_ = RegisterModule("embed1", std::make_unique<nn::Embedding>(
                                         tax.Level1Count(), config.level1_dim,
                                         rng));
  embed2_ = RegisterModule("embed2", std::make_unique<nn::Embedding>(
                                         tax.Level2Count(), config.level2_dim,
                                         rng));
  embed3_ = RegisterModule("embed3", std::make_unique<nn::Embedding>(
                                         tax.Level3Count(), config.level3_dim,
                                         rng));
  transformer_ = RegisterModule(
      "transformer",
      std::make_unique<nn::TransformerEncoder>(
          config.ModelDim(), config.num_heads, config.ff_dim,
          config.num_layers, config.max_len, config.dropout, rng));
  if (config.output_dim > 0 && config.output_dim != config.ModelDim()) {
    projection_ = RegisterModule(
        "projection",
        std::make_unique<nn::Linear>(config.ModelDim(), config.output_dim, rng));
  }

  // Resolve the packed engine's parameter handles once, through the same
  // dotted names the checkpoint format uses. Tensor handles stay valid
  // across LoadCheckpoint (which replaces value buffers, not tensors), so
  // this never needs re-running — only the raw pointers are re-read per
  // call.
  std::unordered_map<std::string, nn::Tensor> params;
  for (auto& [name, tensor] : NamedParameters()) params.emplace(name, tensor);
  auto get = [&](const std::string& name) -> nn::Tensor {
    auto it = params.find(name);
    assert(it != params.end() && "missing parameter for packed refs");
    return it->second;
  };
  packed_refs_.embed1 = get("embed1.table");
  packed_refs_.embed2 = get("embed2.table");
  packed_refs_.embed3 = get("embed3.table");
  packed_refs_.positional = get("transformer.positional");
  static constexpr const char* kSiteNames[] = {
      "attention.wq", "attention.wk", "attention.wv",
      "attention.wo", "ff1",          "ff2",
  };
  for (int i = 0; i < config.num_layers; ++i) {
    const std::string prefix = "transformer.layer" + std::to_string(i) + ".";
    PackedRefs::Layer layer;
    layer.norm1_gamma = get(prefix + "norm1.gamma");
    layer.norm1_beta = get(prefix + "norm1.beta");
    layer.norm2_gamma = get(prefix + "norm2.gamma");
    layer.norm2_beta = get(prefix + "norm2.beta");
    packed_refs_.layers.push_back(std::move(layer));
    for (const char* site : kSiteNames) {
      packed_refs_.sites.push_back(
          {get(prefix + site + ".weight"), get(prefix + site + ".bias")});
    }
  }
  if (projection_ != nullptr) {
    packed_refs_.sites.push_back(
        {get("projection.weight"), get("projection.bias")});
  }
}

int TransformerPlanEncoder::output_dim() const {
  return projection_ != nullptr ? config_.output_dim : config_.ModelDim();
}

nn::Tensor TransformerPlanEncoder::EncodeTokens(
    const std::vector<plan::OperatorType>& tokens,
    util::Rng* dropout_rng) const {
  std::vector<plan::OperatorType> bounded = tokens;
  // Sequences past max_len (adversarially deep foreign plans) truncate
  // instead of outrunning the positional-encoding table.
  if (static_cast<int>(bounded.size()) > config_.max_len) {
    bounded.resize(config_.max_len);
  }
  const TokenIds ids = TokensToIds(bounded);
  const nn::Tensor embedded = nn::ConcatCols({embed1_->Forward(ids.level1),
                                          embed2_->Forward(ids.level2),
                                          embed3_->Forward(ids.level3)});
  const nn::Tensor contextual = transformer_->Forward(embedded, dropout_rng);
  // CLS pooling: the first token aggregates the sequence (§3.1.2).
  nn::Tensor cls = SliceRows(contextual, 0, 1);
  if (projection_ != nullptr) cls = projection_->Forward(cls);
  return cls;
}

nn::Tensor TransformerPlanEncoder::Encode(const plan::PlanNode& root,
                                          util::Rng* dropout_rng) const {
  return EncodeTokens(plan::LinearizeDfsBracket(root), dropout_rng);
}

std::vector<nn::Tensor> TransformerPlanEncoder::EncodeBatchPacked(
    std::span<const plan::PlanNode* const> plans) const {
  nn::PackedBatch& ws = nn::PackedBatch::ThreadLocal();
  PackPlansColumns(plans, config_.max_len, &ws);

  // Refresh the model view's raw pointers from the parameter handles (the
  // buffers move on checkpoint load). The view lives in the thread-local
  // workspace so concurrent encoder threads never write a shared view.
  nn::PackedModelView& mv = ws.view;
  mv.model_dim = config_.ModelDim();
  mv.ff_dim = config_.ff_dim;
  mv.num_heads = config_.num_heads;
  mv.num_layers = config_.num_layers;
  mv.level1_dim = config_.level1_dim;
  mv.level2_dim = config_.level2_dim;
  mv.level3_dim = config_.level3_dim;
  mv.output_dim = output_dim();
  mv.has_projection = projection_ != nullptr;
  mv.embed1 = packed_refs_.embed1.value().data();
  mv.embed2 = packed_refs_.embed2.value().data();
  mv.embed3 = packed_refs_.embed3.value().data();
  mv.positional = packed_refs_.positional.value().data();
  if (mv.layers.size() != packed_refs_.layers.size()) {
    mv.layers.resize(packed_refs_.layers.size());
  }
  for (size_t i = 0; i < packed_refs_.layers.size(); ++i) {
    const PackedRefs::Layer& src = packed_refs_.layers[i];
    mv.layers[i] = {src.norm1_gamma.value().data(),
                    src.norm1_beta.value().data(),
                    src.norm2_gamma.value().data(),
                    src.norm2_beta.value().data()};
  }

  // fp32 GEMM: the fused linear kernel reproduces the op chain's
  // fill + blocked matmul + bias add (+ ReLU clamp) value stream per
  // output element, so the packed result is bit-identical to it — without
  // the zero-fill and bias passes over the output buffer.
  auto fp32_linear = [&](int site, const float* x, int m, int in, int out,
                         float* y, bool relu) {
    const PackedRefs::Site& s = packed_refs_.sites[site];
    nn::simd::K().linear_bias_act(x, s.weight.value().data(),
                                  s.bias.value().data(), y, m, in, out,
                                  relu ? 1 : 0);
  };
  const float* result = nn::PackedEncodeForward(mv, ws, fp32_linear);

  // Result tensors are plain heap tensors, constructed outside any arena:
  // they escape this call, and routing them through the serving arena
  // would turn every micro-batch into arena misses.
  nn::ArenaScope noarena(nullptr);
  const int od = mv.output_dim;
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (int i = 0; i < ws.layout.size(); ++i) {
    const float* row = result + static_cast<size_t>(i) * od;
    out.push_back(
        nn::Tensor::FromVector(1, od, std::vector<float>(row, row + od)));
  }
  return out;
}

std::vector<nn::Tensor> TransformerPlanEncoder::EncodeBatchGrad(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  if (plans.empty()) return {};
  if (!nn::GradEnabled() || !nn::PackedEnvEnabled() ||
      !nn::PackedTrainEnvEnabled()) {
    return PlanSequenceEncoder::EncodeBatchGrad(plans, dropout_rng);
  }
  // Pack in REVERSE caller order: the autograd engine runs later-built
  // sibling subtrees' backward first, so under the reversed packing the
  // backward kernels' ascending-row accumulation reproduces the per-plan
  // gradient accumulation order at every shared memory location.
  nn::PackedBatch& pb = nn::PackedBatch::ThreadLocal();
  std::vector<const plan::PlanNode*> reversed(plans.rbegin(), plans.rend());
  PackPlansColumns(reversed, config_.max_len, &pb);

  nn::PackedTrainBatch& ws = nn::PackedTrainBatch::ThreadLocal();
  ws.ids1.assign(pb.ids1.begin(), pb.ids1.end());
  ws.ids2.assign(pb.ids2.begin(), pb.ids2.end());
  ws.ids3.assign(pb.ids3.begin(), pb.ids3.end());
  ws.positions.assign(pb.layout.positions.begin(), pb.layout.positions.end());
  ws.offsets.assign(pb.layout.offsets.begin(), pb.layout.offsets.end());
  ws.lengths.assign(pb.layout.lengths.begin(), pb.layout.lengths.end());
  ws.rows = pb.layout.total_rows;
  ws.num_seqs = pb.layout.size();

  // Refresh the training view's raw pointers from the stable parameter
  // handles (checkpoint loads replace value buffers, never the autograd
  // nodes the gradients route through).
  auto param = [](const nn::Tensor& t) {
    return nn::PackedTrainParam{t.value().data(), t.impl()};
  };
  nn::PackedTrainView& tv = ws.view;
  tv.model_dim = config_.ModelDim();
  tv.ff_dim = config_.ff_dim;
  tv.num_heads = config_.num_heads;
  tv.num_layers = config_.num_layers;
  tv.level1_dim = config_.level1_dim;
  tv.level2_dim = config_.level2_dim;
  tv.level3_dim = config_.level3_dim;
  tv.output_dim = output_dim();
  tv.has_projection = projection_ != nullptr;
  tv.dropout = config_.dropout;
  tv.embed1 = param(packed_refs_.embed1);
  tv.embed2 = param(packed_refs_.embed2);
  tv.embed3 = param(packed_refs_.embed3);
  tv.positional = param(packed_refs_.positional);
  if (tv.layers.size() != packed_refs_.layers.size()) {
    tv.layers.resize(packed_refs_.layers.size());
  }
  for (size_t i = 0; i < packed_refs_.layers.size(); ++i) {
    const PackedRefs::Layer& src = packed_refs_.layers[i];
    tv.layers[i] = {param(src.norm1_gamma), param(src.norm1_beta),
                    param(src.norm2_gamma), param(src.norm2_beta)};
  }
  if (tv.sites.size() != packed_refs_.sites.size()) {
    tv.sites.resize(packed_refs_.sites.size());
  }
  for (size_t i = 0; i < packed_refs_.sites.size(); ++i) {
    tv.sites[i] = {param(packed_refs_.sites[i].weight),
                   param(packed_refs_.sites[i].bias)};
  }

  // Dropout engages exactly when the per-plan path would engage it; the
  // rate check happens inside the forward.
  util::Rng* rng = training() ? dropout_rng : nullptr;
  const float* result = nn::PackedTrainForward(ws, rng);

  // One graph node for the whole batch. Its parents are every parameter
  // the backward writes, so requires_grad propagates; the gradients
  // themselves flow through GradPtr inside PackedTrainBackward, not
  // through graph edges (the parameters are leaves).
  const int S = ws.num_seqs;
  const int od = tv.output_dim;
  std::vector<std::shared_ptr<nn::Tensor::Impl>> parents;
  parents.reserve(4 + 4 * packed_refs_.layers.size() +
                  2 * packed_refs_.sites.size());
  parents.push_back(packed_refs_.embed1.impl_);
  parents.push_back(packed_refs_.embed2.impl_);
  parents.push_back(packed_refs_.embed3.impl_);
  parents.push_back(packed_refs_.positional.impl_);
  for (const PackedRefs::Layer& l : packed_refs_.layers) {
    parents.push_back(l.norm1_gamma.impl_);
    parents.push_back(l.norm1_beta.impl_);
    parents.push_back(l.norm2_gamma.impl_);
    parents.push_back(l.norm2_beta.impl_);
  }
  for (const PackedRefs::Site& s : packed_refs_.sites) {
    parents.push_back(s.weight.impl_);
    parents.push_back(s.bias.impl_);
  }
  nn::Tensor packed_out =
      nn::Tensor::MakeResult(S, od, parents, nn::Tensor::Fill::kOverwrite);
  std::memcpy(packed_out.value().data(), result,
              sizeof(float) * static_cast<size_t>(S) * od);
  nn::PackedTrainBatch* wsp = &ws;
  nn::Tensor::Impl* oi = packed_out.impl();
  const uint64_t gen = ws.generation;
  oi->backward_fn = [wsp, oi, gen]() {
    oi->EnsureGrad();
    nn::PackedTrainBackward(*wsp, oi->grad.data(), gen);
  };

  // Caller plan ci is packed sequence S-1-ci.
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (int ci = 0; ci < S; ++ci) {
    out.push_back(SliceRows(packed_out, S - 1 - ci, 1));
  }
  return out;
}

std::vector<nn::Tensor> TransformerPlanEncoder::EncodeBatch(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  if (plans.empty()) return {};
  if (dropout_rng != nullptr && training()) {
    // Dropout draws are defined per sequence; the packed path cannot
    // reproduce them, so training-mode batches take the per-plan loop.
    return PlanSequenceEncoder::EncodeBatch(plans, dropout_rng);
  }
  if (!nn::GradEnabled() && nn::PackedEnvEnabled()) {
    // Inference batches under NoGradGuard take the columnar packed engine;
    // the op-chain path below remains for graph-recording callers and as
    // the QPE_PACKED=0 reference.
    return EncodeBatchPacked(plans);
  }
  // Linearize and pack every plan's (truncated) token sequence into one
  // ragged batch.
  TokenIds packed;
  std::vector<int> lengths;
  lengths.reserve(plans.size());
  for (const plan::PlanNode* p : plans) {
    std::vector<plan::OperatorType> tokens = plan::LinearizeDfsBracket(*p);
    if (static_cast<int>(tokens.size()) > config_.max_len) {
      tokens.resize(config_.max_len);
    }
    const TokenIds ids = TokensToIds(tokens);
    packed.level1.insert(packed.level1.end(), ids.level1.begin(),
                         ids.level1.end());
    packed.level2.insert(packed.level2.end(), ids.level2.begin(),
                         ids.level2.end());
    packed.level3.insert(packed.level3.end(), ids.level3.begin(),
                         ids.level3.end());
    lengths.push_back(static_cast<int>(tokens.size()));
  }
  const nn::BatchLayout layout = nn::BatchLayout::FromLengths(lengths);
  // One embedding gather + one transformer pass for the whole batch.
  const nn::Tensor embedded =
      nn::ConcatCols({embed1_->Forward(packed.level1),
                      embed2_->Forward(packed.level2),
                      embed3_->Forward(packed.level3)});
  const nn::Tensor contextual = transformer_->ForwardBatch(embedded, layout);
  // CLS pooling: row 0 of each sequence, gathered into a [B, d] matrix so
  // the optional projection is itself one batched GEMM.
  nn::Tensor cls = GatherRows(contextual, layout.offsets);
  if (projection_ != nullptr) cls = projection_->Forward(cls);
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (int i = 0; i < layout.size(); ++i) {
    out.push_back(SliceRows(cls, i, 1));
  }
  return out;
}

// --- LstmPlanEncoder ---

LstmPlanEncoder::LstmPlanEncoder(const StructureEncoderConfig& config,
                                 util::Rng* rng)
    : config_(config) {
  const Taxonomy& tax = Taxonomy::Get();
  embed1_ = RegisterModule("embed1", std::make_unique<nn::Embedding>(
                                         tax.Level1Count(), config.level1_dim,
                                         rng));
  embed2_ = RegisterModule("embed2", std::make_unique<nn::Embedding>(
                                         tax.Level2Count(), config.level2_dim,
                                         rng));
  embed3_ = RegisterModule("embed3", std::make_unique<nn::Embedding>(
                                         tax.Level3Count(), config.level3_dim,
                                         rng));
  lstm_ = RegisterModule(
      "lstm", std::make_unique<nn::Lstm>(config.ModelDim(), config.ModelDim(),
                                         rng));
  if (config.output_dim > 0 && config.output_dim != config.ModelDim()) {
    projection_ = RegisterModule(
        "projection",
        std::make_unique<nn::Linear>(config.ModelDim(), config.output_dim, rng));
  }
}

int LstmPlanEncoder::output_dim() const {
  return projection_ != nullptr ? config_.output_dim : config_.ModelDim();
}

nn::Tensor LstmPlanEncoder::Encode(const plan::PlanNode& root,
                                   util::Rng* dropout_rng) const {
  (void)dropout_rng;
  std::vector<plan::OperatorType> tokens = plan::LinearizeDfsBracket(root);
  if (static_cast<int>(tokens.size()) > config_.max_len) {
    tokens.resize(config_.max_len);
  }
  const TokenIds ids = TokensToIds(tokens);
  const nn::Tensor embedded = nn::ConcatCols({embed1_->Forward(ids.level1),
                                          embed2_->Forward(ids.level2),
                                          embed3_->Forward(ids.level3)});
  nn::Tensor final_state = lstm_->Forward(embedded);
  if (projection_ != nullptr) final_state = projection_->Forward(final_state);
  return final_state;
}

// --- FnnPlanEncoder ---

FnnPlanEncoder::FnnPlanEncoder(int hidden_dim, int output_dim, util::Rng* rng)
    : output_dim_(output_dim) {
  mlp_ = RegisterModule(
      "mlp", std::make_unique<nn::Mlp>(
                 std::vector<int>{BagOfTokensDim(), hidden_dim, output_dim},
                 nn::Activation::kRelu, nn::Activation::kNone, rng));
}

nn::Tensor FnnPlanEncoder::Encode(const plan::PlanNode& root,
                                  util::Rng* dropout_rng) const {
  (void)dropout_rng;
  return mlp_->Forward(FeaturesToTensor(BagOfTokens(root)));
}

// --- SparseAutoencoder ---

SparseAutoencoder::SparseAutoencoder(int code_dim, util::Rng* rng)
    : code_dim_(code_dim) {
  encoder_ = RegisterModule(
      "encoder", std::make_unique<nn::Linear>(BagOfTokensDim(), code_dim, rng));
  decoder_ = RegisterModule(
      "decoder", std::make_unique<nn::Linear>(code_dim, BagOfTokensDim(), rng));
}

nn::Tensor SparseAutoencoder::EncodeFeatures(const nn::Tensor& features) const {
  return Sigmoid(encoder_->Forward(features));
}

nn::Tensor SparseAutoencoder::Encode(const plan::PlanNode& root,
                                     util::Rng* dropout_rng) const {
  (void)dropout_rng;
  return EncodeFeatures(FeaturesToTensor(BagOfTokens(root)));
}

nn::Tensor SparseAutoencoder::ReconstructionLoss(const plan::PlanNode& root,
                                                 float sparsity_weight) const {
  const nn::Tensor features = FeaturesToTensor(BagOfTokens(root));
  const nn::Tensor code = EncodeFeatures(features);
  const nn::Tensor reconstruction = decoder_->Forward(code);
  const nn::Tensor mse = Mean(Square(Sub(reconstruction, features)));
  const nn::Tensor sparsity = Mean(Abs(code));
  return Add(mse, Scale(sparsity, sparsity_weight));
}

void PretrainSparseAutoencoder(SparseAutoencoder* autoencoder,
                               const std::vector<const plan::PlanNode*>& plans,
                               int epochs, float lr, uint64_t seed,
                               int batch_size,
                               const nn::CheckpointConfig& checkpoint) {
  const std::vector<nn::Tensor> params = autoencoder->Parameters();
  nn::Adam optimizer(params, lr);
  util::Rng rng(seed);
  nn::TrainingState ckpt_state;
  const bool checkpointing = !checkpoint.path.empty();
  if (checkpointing && checkpoint.resume &&
      nn::CheckpointExists(checkpoint.path)) {
    if (!nn::LoadTrainingCheckpoint(checkpoint.path, autoencoder, &optimizer,
                                    &ckpt_state)
             .ok()) {
      return;  // never overwrite a checkpoint that failed to load
    }
    rng.SetState(ckpt_state.rng);
  }
  nn::ShardGradBuffers scratch;
  const size_t batch = batch_size < 1 ? 1 : static_cast<size_t>(batch_size);
  const int interval = std::max(1, checkpoint.interval_epochs);
  for (int epoch = static_cast<int>(ckpt_state.next_epoch); epoch < epochs;
       ++epoch) {
    const std::vector<int> order =
        rng.Permutation(static_cast<int>(plans.size()));
    for (size_t start = 0; start < order.size(); start += batch) {
      const int count =
          static_cast<int>(std::min(order.size(), start + batch) - start);
      autoencoder->ZeroGrad();
      const double batch_loss = nn::ParallelGradientStep(
          params, count,
          [&](int s) {
            // Summed over shards this is the mean loss over the minibatch;
            // with batch_size == 1 the scale is exactly 1.
            return Scale(
                autoencoder->ReconstructionLoss(*plans[order[start + s]]),
                1.0f / static_cast<float>(count));
          },
          &scratch);
      if (!std::isfinite(batch_loss)) {
        ++ckpt_state.skipped_batches;  // loss-spike guard: drop the update
        ++ckpt_state.nonfinite_losses;
        continue;
      }
      optimizer.Step();
    }
    if (checkpointing && ((epoch + 1) % interval == 0 || epoch + 1 == epochs)) {
      ckpt_state.next_epoch = epoch + 1;
      ckpt_state.rng = rng.GetState();
      // Best effort: a failed periodic save degrades durability only.
      (void)nn::SaveTrainingCheckpoint(checkpoint.path, *autoencoder,
                                       optimizer, ckpt_state);
    }
  }
}

}  // namespace qpe::encoder
