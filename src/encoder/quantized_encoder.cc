#include "encoder/quantized_encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "nn/arena.h"
#include "nn/packed_forward.h"
#include "nn/simd.h"
#include "plan/linearize.h"

namespace qpe::encoder {

namespace {

// Sites per transformer layer, in fixed order: the three input projections,
// the output projection, then the two feed-forward matrices.
constexpr int kSitesPerLayer = 6;
constexpr const char* kLayerSites[kSitesPerLayer] = {
    "attention.wq", "attention.wk", "attention.wv",
    "attention.wo", "ff1",          "ff2",
};

}  // namespace

QuantizedPlanEncoder::QuantizedPlanEncoder(
    const TransformerPlanEncoder& fp32,
    std::span<const plan::PlanNode* const> calibration)
    : config_(fp32.config()) {
  model_dim_ = config_.ModelDim();
  head_dim_ = model_dim_ / config_.num_heads;
  assert(!calibration.empty());

  // Pull the trained weights through their stable dotted names (the same
  // names the checkpoint format serializes).
  std::unordered_map<std::string, nn::Tensor> params;
  for (auto& [name, tensor] : fp32.NamedParameters()) {
    params.emplace(name, tensor);
  }
  auto get = [&](const std::string& name) -> const nn::Tensor& {
    auto it = params.find(name);
    assert(it != params.end() && "missing parameter in fp32 encoder");
    return it->second;
  };
  auto copy = [&](const std::string& name) {
    const std::vector<float>& v = get(name).value();
    return std::vector<float>(v.begin(), v.end());
  };

  embed1_ = copy("embed1.table");
  embed2_ = copy("embed2.table");
  embed3_ = copy("embed3.table");
  positional_ = copy("transformer.positional");

  struct Fp32Site {
    nn::Tensor weight;
    nn::Tensor bias;
  };
  std::vector<Fp32Site> fp32_sites;
  layers_.reserve(config_.num_layers);
  for (int i = 0; i < config_.num_layers; ++i) {
    const std::string prefix = "transformer.layer" + std::to_string(i) + ".";
    LayerParams lp;
    lp.norm1_gamma = copy(prefix + "norm1.gamma");
    lp.norm1_beta = copy(prefix + "norm1.beta");
    lp.norm2_gamma = copy(prefix + "norm2.gamma");
    lp.norm2_beta = copy(prefix + "norm2.beta");
    layers_.push_back(std::move(lp));
    for (const char* site : kLayerSites) {
      fp32_sites.push_back({get(prefix + site + ".weight"),
                            get(prefix + site + ".bias")});
    }
  }
  has_projection_ = params.count("projection.weight") > 0;
  if (has_projection_) {
    fp32_sites.push_back(
        {get("projection.weight"), get("projection.bias")});
  }

  // The owned weight vectors are final now: build the model view the
  // packed engine consumes. The pointers stay valid for the encoder's
  // lifetime.
  view_.model_dim = model_dim_;
  view_.ff_dim = config_.ff_dim;
  view_.num_heads = config_.num_heads;
  view_.num_layers = config_.num_layers;
  view_.level1_dim = config_.level1_dim;
  view_.level2_dim = config_.level2_dim;
  view_.level3_dim = config_.level3_dim;
  view_.output_dim = has_projection_ ? config_.output_dim : model_dim_;
  view_.has_projection = has_projection_;
  view_.embed1 = embed1_.data();
  view_.embed2 = embed2_.data();
  view_.embed3 = embed3_.data();
  view_.positional = positional_.data();
  view_.layers.reserve(layers_.size());
  for (const LayerParams& lp : layers_) {
    view_.layers.push_back({lp.norm1_gamma.data(), lp.norm1_beta.data(),
                            lp.norm2_gamma.data(), lp.norm2_beta.data()});
  }

  // Calibration pass: replay the packed forward with the fp32 weights,
  // recording every site's input absmax. The fp32 GEMM below goes through
  // the same simd matmul kernel the autograd path uses, so the observed
  // ranges are exactly the ranges the fp32 encoder produces.
  std::vector<nn::QuantCalibrator> calibrators(fp32_sites.size());
  nn::PackedBatch& ws = nn::PackedBatch::ThreadLocal();
  PackPlansColumns(calibration, config_.max_len, &ws);
  auto fp32_linear = [&](int site, const float* x, int m, int in, int out,
                         float* y, bool relu) {
    calibrators[site].Observe(x, static_cast<size_t>(m) * in);
    nn::simd::K().linear_bias_act(x, fp32_sites[site].weight.value().data(),
                                  fp32_sites[site].bias.value().data(), y, m,
                                  in, out, relu ? 1 : 0);
  };
  (void)nn::PackedEncodeForward(view_, ws, fp32_linear);

  sites_.reserve(fp32_sites.size());
  for (size_t s = 0; s < fp32_sites.size(); ++s) {
    sites_.push_back(nn::QuantizedLinear::FromLinear(
        fp32_sites[s].weight, fp32_sites[s].bias, calibrators[s].scale()));
  }
}

int QuantizedPlanEncoder::output_dim() const {
  return has_projection_ ? config_.output_dim : model_dim_;
}

std::vector<float> QuantizedPlanEncoder::input_scales() const {
  std::vector<float> scales;
  scales.reserve(sites_.size());
  for (const nn::QuantizedLinear& site : sites_) {
    scales.push_back(site.input_scale());
  }
  return scales;
}

std::vector<nn::Tensor> QuantizedPlanEncoder::EncodeBatch(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  (void)dropout_rng;  // inference-only engine: no dropout, ever
  if (plans.empty()) return {};
  nn::PackedBatch& ws = nn::PackedBatch::ThreadLocal();
  PackPlansColumns(plans, config_.max_len, &ws);
  // The engine calls wq, wk, wv back to back on the same normed buffer,
  // and the three sites calibrated on identical inputs, so their static
  // scales agree — wk/wv can then reuse wq's quantized activations
  // bit-identically instead of re-quantizing. The guard is conservative:
  // consecutive site ids (so an intervening call can never have rewritten
  // the buffer), same pointer/shape, and exactly equal scales.
  int last_site = -1;
  const float* last_x = nullptr;
  int last_m = 0, last_in = 0;
  auto int8_linear = [&](int site, const float* x, int m, int in, int out,
                         float* y, bool relu) {
    assert(sites_[site].in_features() == in &&
           sites_[site].out_features() == out);
    const bool reuse_qx =
        site == last_site + 1 && (site % 6 == 1 || site % 6 == 2) &&
        x == last_x && m == last_m && in == last_in &&
        sites_[site].input_scale() == sites_[last_site].input_scale();
    if (reuse_qx) {
      sites_[site].ForwardPrequantized(m, y, ws.qx, &ws.row_scale);
    } else {
      sites_[site].Forward(x, m, y, &ws.qx, &ws.row_scale);
    }
    last_site = site;
    last_x = x;
    last_m = m;
    last_in = in;
    if (relu) {
      // The engine delegates ff1's activation to the callback. bias_relu
      // with a zero bias is the op chain's exact `> 0` clamp: adding +0.0f
      // maps -0 to +0 and the clamp does the same, so every element comes
      // out bit-identical to the plain scalar sweep — vectorized.
      static thread_local std::vector<float> zeros;
      if (zeros.size() < static_cast<size_t>(out)) zeros.resize(out, 0.0f);
      nn::simd::K().bias_relu(y, zeros.data(), y, m, out);
    }
  };
  const float* cls = nn::PackedEncodeForward(view_, ws, int8_linear);
  // Result tensors escape to the caller: construct them outside any active
  // arena so steady-state serving batches create zero arena traffic.
  nn::ArenaScope noarena(nullptr);
  const int od = output_dim();
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (int i = 0; i < ws.layout.size(); ++i) {
    const float* row = cls + static_cast<size_t>(i) * od;
    out.push_back(nn::Tensor::FromVector(
        1, od, std::vector<float>(row, row + od)));
  }
  return out;
}

nn::Tensor QuantizedPlanEncoder::Encode(const plan::PlanNode& root,
                                        util::Rng* dropout_rng) const {
  const plan::PlanNode* plans[] = {&root};
  return EncodeBatch(plans, dropout_rng)[0];
}

std::unique_ptr<QuantizedPlanEncoder> TransformerPlanEncoder::Quantize(
    std::span<const plan::PlanNode* const> calibration) const {
  return std::make_unique<QuantizedPlanEncoder>(*this, calibration);
}

}  // namespace qpe::encoder
