#include "encoder/quantized_encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "nn/simd.h"
#include "plan/linearize.h"

namespace qpe::encoder {

namespace {

// Sites per transformer layer, in fixed order: the three input projections,
// the output projection, then the two feed-forward matrices.
constexpr int kSitesPerLayer = 6;
constexpr const char* kLayerSites[kSitesPerLayer] = {
    "attention.wq", "attention.wk", "attention.wv",
    "attention.wo", "ff1",          "ff2",
};

}  // namespace

QuantizedPlanEncoder::QuantizedPlanEncoder(
    const TransformerPlanEncoder& fp32,
    std::span<const plan::PlanNode* const> calibration)
    : config_(fp32.config()) {
  model_dim_ = config_.ModelDim();
  head_dim_ = model_dim_ / config_.num_heads;
  assert(!calibration.empty());

  // Pull the trained weights through their stable dotted names (the same
  // names the checkpoint format serializes).
  std::unordered_map<std::string, nn::Tensor> params;
  for (auto& [name, tensor] : fp32.NamedParameters()) {
    params.emplace(name, tensor);
  }
  auto get = [&](const std::string& name) -> const nn::Tensor& {
    auto it = params.find(name);
    assert(it != params.end() && "missing parameter in fp32 encoder");
    return it->second;
  };
  auto copy = [&](const std::string& name) {
    const std::vector<float>& v = get(name).value();
    return std::vector<float>(v.begin(), v.end());
  };

  embed1_ = copy("embed1.table");
  embed2_ = copy("embed2.table");
  embed3_ = copy("embed3.table");
  positional_ = copy("transformer.positional");

  struct Fp32Site {
    nn::Tensor weight;
    nn::Tensor bias;
  };
  std::vector<Fp32Site> fp32_sites;
  layers_.reserve(config_.num_layers);
  for (int i = 0; i < config_.num_layers; ++i) {
    const std::string prefix = "transformer.layer" + std::to_string(i) + ".";
    LayerParams lp;
    lp.norm1_gamma = copy(prefix + "norm1.gamma");
    lp.norm1_beta = copy(prefix + "norm1.beta");
    lp.norm2_gamma = copy(prefix + "norm2.gamma");
    lp.norm2_beta = copy(prefix + "norm2.beta");
    layers_.push_back(std::move(lp));
    for (const char* site : kLayerSites) {
      fp32_sites.push_back({get(prefix + site + ".weight"),
                            get(prefix + site + ".bias")});
    }
  }
  has_projection_ = params.count("projection.weight") > 0;
  if (has_projection_) {
    fp32_sites.push_back(
        {get("projection.weight"), get("projection.bias")});
  }

  // Calibration pass: replay the packed forward with the fp32 weights,
  // recording every site's input absmax. The fp32 GEMM below goes through
  // the same simd matmul kernel the autograd path uses, so the observed
  // ranges are exactly the ranges the fp32 encoder produces.
  std::vector<nn::QuantCalibrator> calibrators(fp32_sites.size());
  TokenIds packed;
  std::vector<int> lengths;
  PackBatch(calibration, &packed, &lengths);
  const nn::BatchLayout layout = nn::BatchLayout::FromLengths(lengths);
  auto fp32_linear = [&](int site, const float* x, int m, int in, int out,
                         float* y) {
    calibrators[site].Observe(x, static_cast<size_t>(m) * in);
    std::fill(y, y + static_cast<size_t>(m) * out, 0.0f);
    nn::simd::K().matmul_forward_range(x, fp32_sites[site].weight.value().data(),
                                       y, 0, m, in, out);
    const float* bias = fp32_sites[site].bias.value().data();
    for (int i = 0; i < m; ++i) {
      float* row = y + static_cast<size_t>(i) * out;
      for (int j = 0; j < out; ++j) row[j] += bias[j];
    }
  };
  (void)ForwardPacked(packed, layout, fp32_linear);

  sites_.reserve(fp32_sites.size());
  for (size_t s = 0; s < fp32_sites.size(); ++s) {
    sites_.push_back(nn::QuantizedLinear::FromLinear(
        fp32_sites[s].weight, fp32_sites[s].bias, calibrators[s].scale()));
  }
}

int QuantizedPlanEncoder::output_dim() const {
  return has_projection_ ? config_.output_dim : model_dim_;
}

std::vector<float> QuantizedPlanEncoder::input_scales() const {
  std::vector<float> scales;
  scales.reserve(sites_.size());
  for (const nn::QuantizedLinear& site : sites_) {
    scales.push_back(site.input_scale());
  }
  return scales;
}

void QuantizedPlanEncoder::PackBatch(
    std::span<const plan::PlanNode* const> plans, TokenIds* packed,
    std::vector<int>* lengths) const {
  lengths->reserve(plans.size());
  for (const plan::PlanNode* p : plans) {
    std::vector<plan::OperatorType> tokens = plan::LinearizeDfsBracket(*p);
    if (static_cast<int>(tokens.size()) > config_.max_len) {
      tokens.resize(config_.max_len);
    }
    const TokenIds ids = TokensToIds(tokens);
    packed->level1.insert(packed->level1.end(), ids.level1.begin(),
                          ids.level1.end());
    packed->level2.insert(packed->level2.end(), ids.level2.begin(),
                          ids.level2.end());
    packed->level3.insert(packed->level3.end(), ids.level3.begin(),
                          ids.level3.end());
    lengths->push_back(static_cast<int>(tokens.size()));
  }
}

template <typename LinearFn>
std::vector<float> QuantizedPlanEncoder::ForwardPacked(
    const TokenIds& ids, const nn::BatchLayout& layout,
    LinearFn&& linear) const {
  const int rows = layout.total_rows;
  const int d = model_dim_;
  const int f = config_.ff_dim;
  const int d1 = config_.level1_dim;
  const int d2 = config_.level2_dim;
  const int d3 = config_.level3_dim;
  const float invd = 1.0f / static_cast<float>(d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const nn::simd::Kernels& kern = nn::simd::K();

  // Token embeddings (three-table concat) plus positional rows.
  std::vector<float> h(static_cast<size_t>(rows) * d);
  for (int t = 0; t < rows; ++t) {
    float* row = h.data() + static_cast<size_t>(t) * d;
    const float* e1 =
        embed1_.data() + static_cast<size_t>(ids.level1[t]) * d1;
    const float* e2 =
        embed2_.data() + static_cast<size_t>(ids.level2[t]) * d2;
    const float* e3 =
        embed3_.data() + static_cast<size_t>(ids.level3[t]) * d3;
    const float* pos =
        positional_.data() + static_cast<size_t>(layout.positions[t]) * d;
    std::copy(e1, e1 + d1, row);
    std::copy(e2, e2 + d2, row + d1);
    std::copy(e3, e3 + d3, row + d1 + d2);
    for (int c = 0; c < d; ++c) row[c] += pos[c];
  }

  std::vector<float> normed(static_cast<size_t>(rows) * d);
  std::vector<float> q(static_cast<size_t>(rows) * d);
  std::vector<float> k(static_cast<size_t>(rows) * d);
  std::vector<float> v(static_cast<size_t>(rows) * d);
  std::vector<float> ctx(static_cast<size_t>(rows) * d);
  std::vector<float> ff(static_cast<size_t>(rows) * f);
  for (int li = 0; li < config_.num_layers; ++li) {
    const LayerParams& lp = layers_[li];
    const int base = li * kSitesPerLayer;
    // Pre-norm attention block with residual.
    kern.layer_norm_rows(h.data(), lp.norm1_gamma.data(),
                         lp.norm1_beta.data(), normed.data(), rows, d, invd);
    linear(base + 0, normed.data(), rows, d, d, q.data());
    linear(base + 1, normed.data(), rows, d, d, k.data());
    linear(base + 2, normed.data(), rows, d, d, v.data());
    kern.attention_forward_packed(q.data(), k.data(), v.data(), ctx.data(),
                                  layout.offsets.data(),
                                  layout.lengths.data(), layout.size(),
                                  config_.num_heads, d, scale);
    linear(base + 3, ctx.data(), rows, d, d, normed.data());
    for (size_t i = 0; i < h.size(); ++i) h[i] += normed[i];
    // Pre-norm feed-forward block (ReLU; the trained encoder's default and
    // only activation) with residual.
    kern.layer_norm_rows(h.data(), lp.norm2_gamma.data(),
                         lp.norm2_beta.data(), normed.data(), rows, d, invd);
    linear(base + 4, normed.data(), rows, d, f, ff.data());
    for (size_t i = 0; i < ff.size(); ++i) {
      if (ff[i] < 0) ff[i] = 0.0f;
    }
    linear(base + 5, ff.data(), rows, f, d, normed.data());
    for (size_t i = 0; i < h.size(); ++i) h[i] += normed[i];
  }

  // CLS pooling, then the optional output projection on the [B, d] matrix.
  const int num_seqs = layout.size();
  std::vector<float> cls(static_cast<size_t>(num_seqs) * d);
  for (int s = 0; s < num_seqs; ++s) {
    const float* src = h.data() + static_cast<size_t>(layout.offsets[s]) * d;
    std::copy(src, src + d, cls.data() + static_cast<size_t>(s) * d);
  }
  if (!has_projection_) return cls;
  const int od = config_.output_dim;
  std::vector<float> projected(static_cast<size_t>(num_seqs) * od);
  linear(config_.num_layers * kSitesPerLayer, cls.data(), num_seqs, d, od,
         projected.data());
  return projected;
}

std::vector<nn::Tensor> QuantizedPlanEncoder::EncodeBatch(
    std::span<const plan::PlanNode* const> plans, util::Rng* dropout_rng) const {
  (void)dropout_rng;  // inference-only engine: no dropout, ever
  if (plans.empty()) return {};
  TokenIds packed;
  std::vector<int> lengths;
  PackBatch(plans, &packed, &lengths);
  const nn::BatchLayout layout = nn::BatchLayout::FromLengths(lengths);
  std::vector<int8_t> qx_scratch;
  std::vector<float> row_scale_scratch;
  auto int8_linear = [&](int site, const float* x, int m, int in, int out,
                         float* y) {
    assert(sites_[site].in_features() == in &&
           sites_[site].out_features() == out);
    (void)in;
    (void)out;
    sites_[site].Forward(x, m, y, &qx_scratch, &row_scale_scratch);
  };
  const std::vector<float> cls = ForwardPacked(packed, layout, int8_linear);
  const int od = output_dim();
  std::vector<nn::Tensor> out;
  out.reserve(plans.size());
  for (int i = 0; i < layout.size(); ++i) {
    const float* row = cls.data() + static_cast<size_t>(i) * od;
    out.push_back(nn::Tensor::FromVector(
        1, od, std::vector<float>(row, row + od)));
  }
  return out;
}

nn::Tensor QuantizedPlanEncoder::Encode(const plan::PlanNode& root,
                                        util::Rng* dropout_rng) const {
  const plan::PlanNode* plans[] = {&root};
  return EncodeBatch(plans, dropout_rng)[0];
}

std::unique_ptr<QuantizedPlanEncoder> TransformerPlanEncoder::Quantize(
    std::span<const plan::PlanNode* const> calibration) const {
  return std::make_unique<QuantizedPlanEncoder>(*this, calibration);
}

}  // namespace qpe::encoder
