#include "encoder/encoder_suite.h"

#include "nn/serialize.h"

namespace qpe::encoder {

namespace {

const char* const kPerfFileNames[4] = {"perf_scan.qpe", "perf_join.qpe",
                                       "perf_sort.qpe", "perf_aggregate.qpe"};

}  // namespace

EncoderSuite::EncoderSuite(const Config& config) : config_(config) {
  util::Rng rng(config.seed);
  structure_ =
      std::make_unique<TransformerPlanEncoder>(config.structure, &rng);
  for (auto& perf : performance_) {
    perf = std::make_unique<PerformanceEncoder>(config.performance, &rng);
  }
}

tasks::EmbeddingFeaturizer::Config EncoderSuite::FeaturizerConfig(
    const catalog::Catalog* catalog) const {
  tasks::EmbeddingFeaturizer::Config featurizer_config;
  featurizer_config.structure = structure_.get();
  for (int g = 0; g < 4; ++g) {
    featurizer_config.performance[g] = performance_[g].get();
  }
  featurizer_config.catalog = catalog;
  return featurizer_config;
}

bool EncoderSuite::SaveToDirectory(const std::string& directory) const {
  if (!nn::SaveModuleToFile(*structure_, directory + "/structure.qpe")) {
    return false;
  }
  for (int g = 0; g < 4; ++g) {
    if (!nn::SaveModuleToFile(*performance_[g],
                              directory + "/" + kPerfFileNames[g])) {
      return false;
    }
  }
  return true;
}

bool EncoderSuite::LoadFromDirectory(const std::string& directory) {
  if (!nn::LoadModuleFromFile(structure_.get(),
                              directory + "/structure.qpe")) {
    return false;
  }
  for (int g = 0; g < 4; ++g) {
    if (!nn::LoadModuleFromFile(performance_[g].get(),
                                directory + "/" + kPerfFileNames[g])) {
      return false;
    }
  }
  return true;
}

}  // namespace qpe::encoder
