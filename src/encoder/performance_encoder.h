#ifndef QPE_ENCODER_PERFORMANCE_ENCODER_H_
#define QPE_ENCODER_PERFORMANCE_ENCODER_H_

#include <vector>

#include "data/datasets.h"
#include "nn/checkpoint.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace qpe::encoder {

// Configuration of one per-operator performance encoder instance (the paper
// creates one for each of Scan, Join, Sort, Aggregate; §3.2).
struct PerfEncoderConfig {
  int node_dim = 40;    // data::kNodeFeatureDim
  int meta_dim = 14;    // catalog::Catalog::kMetaFeatureDim
  int db_dim = 18;      // config::DbConfig::FeatureDim()
  int column_hidden = 32;
  int embed_dim = 32;   // C(p) dimension (paper used 300 at GPU scale)
};

// Base for performance encoders: subclasses produce the embedding; the base
// owns the three multi-task regression heads (Total Time, Total Cost,
// Startup Time — trained jointly so the embedding captures all of them,
// §3.2.3).
class PerfEncoderBase : public nn::Module {
 public:
  virtual ~PerfEncoderBase() = default;

  // [B, node_dim], [B, meta_dim], [B, db_dim] -> embedding [B, embed_dim].
  virtual nn::Tensor Embed(const nn::Tensor& node_features,
                           const nn::Tensor& meta_features,
                           const nn::Tensor& db_features) const = 0;

  // Embedding -> [B, 3] predicted (encoded) labels: time, cost, startup.
  nn::Tensor PredictLabels(const nn::Tensor& embedding) const;

  const PerfEncoderConfig& config() const { return config_; }

 protected:
  PerfEncoderBase(const PerfEncoderConfig& config, util::Rng* rng);

 private:
  PerfEncoderConfig config_;
  nn::Linear* heads_;  // one linear producing all three label outputs
};

// The paper's three-column DNN (§3.2.2): independent columns for plan
// features, meta features, and DB settings, merged by a fully-connected
// layer into the embedding.
class PerformanceEncoder : public PerfEncoderBase {
 public:
  PerformanceEncoder(const PerfEncoderConfig& config, util::Rng* rng);

  nn::Tensor Embed(const nn::Tensor& node_features,
                   const nn::Tensor& meta_features,
                   const nn::Tensor& db_features) const override;

 private:
  nn::Mlp* node_column_;
  nn::Mlp* meta_column_;
  nn::Mlp* db_column_;
  nn::Linear* merge_;
};

// Standard single-column DNN baseline (§6.2's "standard DNN"): all features
// concatenated into one stack of the same total capacity.
class SingleColumnPerformanceEncoder : public PerfEncoderBase {
 public:
  SingleColumnPerformanceEncoder(const PerfEncoderConfig& config,
                                 util::Rng* rng);

  nn::Tensor Embed(const nn::Tensor& node_features,
                   const nn::Tensor& meta_features,
                   const nn::Tensor& db_features) const override;

 private:
  nn::Mlp* stack_;
};

// --- Training ---

struct PerfTrainOptions {
  int epochs = 60;
  float lr = 2e-3f;
  int batch_size = 32;
  uint64_t seed = 31;
  float grad_clip = 5.0f;
  // Early stopping: stop when validation MAE has not improved by more than
  // `patience_delta_ms` in the last `patience_epochs` epochs (the paper
  // stops at <5 ms improvement over 100 epochs).
  int patience_epochs = 0;  // 0 disables early stopping
  double patience_delta_ms = 5.0;
  // Crash-safe checkpoint/resume (nn/checkpoint.h). With a non-empty path
  // the run saves full training state every `interval_epochs` and, when
  // `resume` is set and the file exists, continues from it — bit-exactly:
  // the resumed run finishes with the same weights as an uninterrupted one.
  nn::CheckpointConfig checkpoint;
  // If non-null, receives the first checkpoint IO error (training continues
  // after a failed periodic save but aborts on a corrupt resume file rather
  // than silently overwriting it).
  util::Status* io_status = nullptr;
};

struct PerfEpochStats {
  double train_mae_ms = 0;
  double val_mae_ms = 0;
  double test_mae_ms = 0;
  // Loss-spike guard observability: batches whose loss came back NaN/Inf
  // this epoch were skipped (no optimizer step) instead of poisoning the
  // weights.
  int skipped_batches = 0;
  int nonfinite_losses = 0;
};

// Batched tensors for a set of operator samples.
struct PerfBatch {
  nn::Tensor node;
  nn::Tensor meta;
  nn::Tensor db;
  nn::Tensor labels;  // [B, 3] encoded
};
PerfBatch MakePerfBatch(const std::vector<data::OperatorSample>& samples,
                        const std::vector<int>& indices);

// Joint multi-metric training. Returns per-epoch MAE history (Actual Total
// Time, in milliseconds, as reported in the paper's Figure 12).
std::vector<PerfEpochStats> TrainPerformanceEncoder(
    PerfEncoderBase* model, const data::OperatorDataset& dataset,
    const PerfTrainOptions& options);

// MAE of the time label in milliseconds over a sample set.
double EvaluatePerfMaeMs(const PerfEncoderBase& model,
                         const std::vector<data::OperatorSample>& samples);

}  // namespace qpe::encoder

#endif  // QPE_ENCODER_PERFORMANCE_ENCODER_H_
