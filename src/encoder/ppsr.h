#ifndef QPE_ENCODER_PPSR_H_
#define QPE_ENCODER_PPSR_H_

#include <memory>
#include <vector>

#include "data/datasets.h"
#include "encoder/structure_encoder.h"
#include "nn/module.h"

namespace qpe::encoder {

// Plan-Pair Similarity Regression (paper §3.1.1): the pretraining task that
// teaches the structure encoder. Given two plans, predict their Smatch
// score with a matching layer over [v1 ∘ v2 ∘ |v1−v2| ∘ v1⊙v2] followed by
// a sigmoid (the paper's 4d concatenated match function).
class PpsrModel : public nn::Module {
 public:
  // Takes ownership of the encoder.
  PpsrModel(std::unique_ptr<PlanSequenceEncoder> encoder, util::Rng* rng);

  nn::Tensor PredictSimilarity(const plan::PlanNode& left,
                               const plan::PlanNode& right,
                               util::Rng* dropout_rng) const;

  PlanSequenceEncoder* encoder() { return encoder_; }
  const PlanSequenceEncoder* encoder() const { return encoder_; }
  // Parameters of the match head only (for fixed-feature evaluation).
  std::vector<nn::Tensor> HeadParameters() const;

 private:
  PlanSequenceEncoder* encoder_;
  nn::Linear* match_;
};

struct PpsrTrainOptions {
  int epochs = 8;
  float lr = 5e-4f;
  int batch_size = 8;
  uint64_t seed = 23;
  // Fixed-feature mode: freeze the encoder, train only the match head
  // ("Transformer-PPSR-fixed" in §6.1).
  bool freeze_encoder = false;
  float grad_clip = 5.0f;
};

// Trains the model on Smatch-labelled pairs; returns the final-epoch mean
// train loss (MSE).
double TrainPpsr(PpsrModel* model, const std::vector<data::PlanPair>& train,
                 const PpsrTrainOptions& options);

// Mean absolute error between predicted and true Smatch scores.
double EvaluatePpsrMae(const PpsrModel& model,
                       const std::vector<data::PlanPair>& pairs);

}  // namespace qpe::encoder

#endif  // QPE_ENCODER_PPSR_H_
