#ifndef QPE_ENCODER_PPSR_H_
#define QPE_ENCODER_PPSR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/datasets.h"
#include "encoder/structure_encoder.h"
#include "nn/checkpoint.h"
#include "nn/module.h"
#include "util/status.h"

namespace qpe::encoder {

// Plan-Pair Similarity Regression (paper §3.1.1): the pretraining task that
// teaches the structure encoder. Given two plans, predict their Smatch
// score with a matching layer over [v1 ∘ v2 ∘ |v1−v2| ∘ v1⊙v2] followed by
// a sigmoid (the paper's 4d concatenated match function).
class PpsrModel : public nn::Module {
 public:
  // Takes ownership of the encoder.
  PpsrModel(std::unique_ptr<PlanSequenceEncoder> encoder, util::Rng* rng);

  nn::Tensor PredictSimilarity(const plan::PlanNode& left,
                               const plan::PlanNode& right,
                               util::Rng* dropout_rng) const;

  PlanSequenceEncoder* encoder() { return encoder_; }
  const PlanSequenceEncoder* encoder() const { return encoder_; }
  // Parameters of the match head only (for fixed-feature evaluation).
  std::vector<nn::Tensor> HeadParameters() const;

 private:
  PlanSequenceEncoder* encoder_;
  nn::Linear* match_;
};

// Observability for a TrainPpsr run: where it resumed, how many batches the
// loss-spike guard dropped, and the first checkpoint IO error (if any).
struct PpsrTrainStats {
  int64_t resumed_from_epoch = 0;  // 0 == started fresh
  int64_t skipped_batches = 0;     // cumulative across resumes
  int64_t nonfinite_losses = 0;
  bool aborted = false;  // stopped early via PpsrTrainOptions::abort
  util::Status io_status;
};

struct PpsrTrainOptions {
  int epochs = 8;
  float lr = 5e-4f;
  int batch_size = 8;
  uint64_t seed = 23;
  // Fixed-feature mode: freeze the encoder, train only the match head
  // ("Transformer-PPSR-fixed" in §6.1).
  bool freeze_encoder = false;
  float grad_clip = 5.0f;
  // Crash-safe checkpoint/resume (nn/checkpoint.h); empty path disables.
  // A resumed run finishes with bit-identical weights to an uninterrupted
  // one at the same thread count.
  nn::CheckpointConfig checkpoint;
  // Cooperative cancellation: when non-null and set, training stops at the
  // next batch boundary *without* writing a fresh checkpoint — exactly the
  // state a SIGKILL would leave — so a later resume from the last interval
  // checkpoint is bit-identical either way. Used by the serving daemon to
  // drain mid-adaptation.
  const std::atomic<bool>* abort = nullptr;
  // If non-null, filled with resume/skip/IO information for the run.
  PpsrTrainStats* stats = nullptr;
};

// Trains the model on Smatch-labelled pairs; returns the final-epoch mean
// train loss (MSE).
double TrainPpsr(PpsrModel* model, const std::vector<data::PlanPair>& train,
                 const PpsrTrainOptions& options);

// Mean absolute error between predicted and true Smatch scores.
double EvaluatePpsrMae(const PpsrModel& model,
                       const std::vector<data::PlanPair>& pairs);

}  // namespace qpe::encoder

#endif  // QPE_ENCODER_PPSR_H_
