#include "tasks/workload_similarity.h"

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace qpe::tasks {

std::vector<double> WorkloadEmbedding(
    const encoder::PlanSequenceEncoder& encoder,
    const std::vector<WeightedPlan>& workload) {
  std::vector<double> embedding(encoder.output_dim(), 0.0);
  double total_theta = 0;
  for (const WeightedPlan& entry : workload) total_theta += entry.theta;
  if (total_theta <= 0) return embedding;
  // Encode the whole workload in one batched forward (bit-identical to
  // per-plan Encode, but the transformer GEMMs amortize across plans).
  std::vector<const plan::PlanNode*> plans;
  std::vector<double> weights;
  plans.reserve(workload.size());
  weights.reserve(workload.size());
  for (const WeightedPlan& entry : workload) {
    if (entry.plan == nullptr) continue;
    plans.push_back(entry.plan);
    weights.push_back(entry.theta / total_theta);
  }
  const std::vector<nn::Tensor> encoded = encoder.EncodeBatch(plans, nullptr);
  for (size_t i = 0; i < encoded.size(); ++i) {
    const float* row = encoded[i].value().data();  // [1, dim]
    for (int c = 0; c < encoded[i].cols(); ++c) {
      embedding[c] += weights[i] * row[c];
    }
  }
  return embedding;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0;
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0 || nb <= 0) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double total = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

std::vector<int> KMeansCluster(const std::vector<std::vector<double>>& rows,
                               int k, int iterations, uint64_t seed) {
  const int n = static_cast<int>(rows.size());
  if (n == 0 || k <= 0) return {};
  k = std::min(k, n);
  const size_t dim = rows[0].size();
  util::Rng rng(seed);

  // k-means++ style init: first centroid random, then farthest-point.
  std::vector<std::vector<double>> centroids;
  centroids.push_back(rows[rng.UniformInt(0, n - 1)]);
  while (static_cast<int>(centroids.size()) < k) {
    int farthest = 0;
    double best = -1;
    for (int i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& centroid : centroids) {
        nearest = std::min(nearest, EuclideanDistance(rows[i], centroid));
      }
      if (nearest > best) {
        best = nearest;
        farthest = i;
      }
    }
    centroids.push_back(rows[farthest]);
  }

  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      int best_cluster = 0;
      double best_distance = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = EuclideanDistance(rows[i], centroids[c]);
        if (d < best_distance) {
          best_distance = d;
          best_cluster = c;
        }
      }
      changed = changed || best_cluster != assignment[i];
      assignment[i] = best_cluster;
    }
    if (!changed && iter > 0) break;
    for (int c = 0; c < k; ++c) {
      std::vector<double> mean(dim, 0.0);
      int count = 0;
      for (int i = 0; i < n; ++i) {
        if (assignment[i] != c) continue;
        for (size_t j = 0; j < dim; ++j) mean[j] += rows[i][j];
        ++count;
      }
      if (count > 0) {
        for (double& v : mean) v /= count;
        centroids[c] = std::move(mean);
      }
    }
  }
  return assignment;
}

}  // namespace qpe::tasks
