#include "tasks/embeddings.h"

#include "data/features.h"

namespace qpe::tasks {

EmbeddingFeaturizer::EmbeddingFeaturizer(Config config)
    : config_(std::move(config)) {}

int EmbeddingFeaturizer::FeatureDim() const {
  int dim = 0;
  if (config_.structure != nullptr) dim += config_.structure->output_dim();
  for (const encoder::PerfEncoderBase* perf : config_.performance) {
    if (perf != nullptr) {
      dim += perf->config().embed_dim;
      if (config_.include_group_predictions) dim += 3;
    }
  }
  if (config_.include_db_features) dim += config::DbConfig::FeatureDim();
  return dim;
}

std::vector<float> EmbeddingFeaturizer::Featurize(
    const simdb::ExecutedQuery& record) const {
  return FeaturizeImpl(record, nullptr);
}

std::vector<float> EmbeddingFeaturizer::FeaturizeImpl(
    const simdb::ExecutedQuery& record, const nn::Tensor* structure) const {
  std::vector<float> features;
  features.reserve(FeatureDim());
  const plan::PlanNode& root = *record.query.root;

  if (config_.structure != nullptr) {
    const nn::Tensor s = structure != nullptr
                             ? *structure
                             : config_.structure->Encode(root, nullptr);
    for (float v : s.value()) features.push_back(v);
  }

  for (int g = 0; g < 4; ++g) {
    const encoder::PerfEncoderBase* perf = config_.performance[g];
    if (perf == nullptr) continue;
    // Collect this group's nodes and mean-pool their embeddings.
    std::vector<data::OperatorSample> nodes;
    const std::vector<double> db_features = record.db_config.ToFeatures();
    root.Visit([&](const plan::PlanNode& node) {
      if (static_cast<int>(plan::GroupOf(node.type())) != g) return;
      data::OperatorSample sample;
      sample.node_features = data::NodeFeatures(node);
      sample.meta_features = data::NodeMetaFeatures(node, *config_.catalog);
      sample.db_features = db_features;
      nodes.push_back(std::move(sample));
    });
    const int embed_dim = perf->config().embed_dim;
    const int extra = config_.include_group_predictions ? 3 : 0;
    if (nodes.empty()) {
      features.insert(features.end(), embed_dim + extra, 0.0f);
      continue;
    }
    std::vector<int> all(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) all[i] = static_cast<int>(i);
    const encoder::PerfBatch batch = encoder::MakePerfBatch(nodes, all);
    const nn::Tensor embedded = perf->Embed(batch.node, batch.meta, batch.db);
    const float* ev = embedded.value().data();  // [rows, embed_dim]
    for (int c = 0; c < embed_dim; ++c) {
      float mean = 0;
      for (int r = 0; r < embedded.rows(); ++r) {
        mean += ev[static_cast<size_t>(r) * embed_dim + c];
      }
      features.push_back(mean / static_cast<float>(embedded.rows()));
    }
    if (config_.include_group_predictions) {
      // Cumulative sample: summed node features, whole-plan meta features.
      std::vector<data::OperatorSample> cumulative(1);
      std::vector<std::vector<double>> node_rows;
      node_rows.reserve(nodes.size());
      for (const auto& sample : nodes) node_rows.push_back(sample.node_features);
      cumulative[0].node_features = data::SumFeatures(node_rows);
      cumulative[0].meta_features =
          data::NodeMetaFeatures(root, *config_.catalog);
      cumulative[0].db_features = db_features;
      const encoder::PerfBatch cbatch = encoder::MakePerfBatch(cumulative, {0});
      const nn::Tensor prediction =
          perf->PredictLabels(perf->Embed(cbatch.node, cbatch.meta, cbatch.db));
      for (int c = 0; c < 3; ++c) features.push_back(prediction.at(0, c));
    }
  }

  if (config_.include_db_features) {
    for (double v : record.db_config.ToFeatures()) {
      features.push_back(static_cast<float>(v));
    }
  }
  return features;
}

std::vector<std::vector<float>> EmbeddingFeaturizer::FeaturizeAll(
    const std::vector<simdb::ExecutedQuery>& records) const {
  // Batch the structural encodes across the whole dataset: one packed
  // transformer forward instead of a per-record pass.
  std::vector<nn::Tensor> structure;
  if (config_.structure != nullptr) {
    std::vector<const plan::PlanNode*> roots;
    roots.reserve(records.size());
    for (const simdb::ExecutedQuery& record : records) {
      roots.push_back(record.query.root.get());
    }
    structure = config_.structure->EncodeBatch(roots, nullptr);
  }
  std::vector<std::vector<float>> rows;
  rows.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    rows.push_back(FeaturizeImpl(
        records[i], structure.empty() ? nullptr : &structure[i]));
  }
  return rows;
}

}  // namespace qpe::tasks
