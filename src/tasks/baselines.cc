#include "tasks/baselines.h"

#include <algorithm>
#include <cmath>

#include "data/features.h"

namespace qpe::tasks {

namespace {

// Linear prediction with a trailing bias weight.
double Predict(const std::vector<double>& weights,
               const std::vector<double>& features) {
  double y = weights.back();  // bias
  for (size_t i = 0; i < features.size() && i + 1 < weights.size(); ++i) {
    y += weights[i] * features[i];
  }
  return y;
}

// Closed-form ridge regression: returns weights (last element = bias).
std::vector<double> FitRidge(const std::vector<std::vector<double>>& x,
                             const std::vector<double>& y, double lambda) {
  const int n = static_cast<int>(x.size());
  const int d = static_cast<int>(x[0].size()) + 1;  // +bias
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (int r = 0; r < n; ++r) {
    std::vector<double> row = x[r];
    row.push_back(1.0);
    for (int i = 0; i < d; ++i) {
      xty[i] += row[i] * y[r];
      for (int j = 0; j < d; ++j) xtx[i][j] += row[i] * row[j];
    }
  }
  return SolveRidge(std::move(xtx), std::move(xty), lambda);
}

void Standardize(const std::vector<std::vector<double>>& rows,
                 std::vector<double>* mean, std::vector<double>* scale) {
  const size_t d = rows[0].size();
  mean->assign(d, 0.0);
  scale->assign(d, 0.0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < d; ++i) (*mean)[i] += row[i];
  }
  for (size_t i = 0; i < d; ++i) (*mean)[i] /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (size_t i = 0; i < d; ++i) {
      const double c = row[i] - (*mean)[i];
      (*scale)[i] += c * c;
    }
  }
  for (size_t i = 0; i < d; ++i) {
    (*scale)[i] = std::sqrt((*scale)[i] / static_cast<double>(rows.size()));
    if ((*scale)[i] < 1e-9) (*scale)[i] = 1.0;
  }
}

std::vector<double> Apply(const std::vector<double>& row,
                          const std::vector<double>& mean,
                          const std::vector<double>& scale) {
  std::vector<double> out(row.size());
  for (size_t i = 0; i < row.size(); ++i) out[i] = (row[i] - mean[i]) / scale[i];
  return out;
}

}  // namespace

std::vector<double> SolveRidge(std::vector<std::vector<double>> a,
                               std::vector<double> b, double lambda) {
  const int d = static_cast<int>(b.size());
  for (int i = 0; i < d; ++i) a[i][i] += lambda;
  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < d; ++col) {
    int pivot = col;
    for (int r = col + 1; r < d; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::abs(diag) < 1e-12) continue;
    for (int r = 0; r < d; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / diag;
      for (int c = col; c < d; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(d, 0.0);
  for (int i = 0; i < d; ++i) {
    x[i] = std::abs(a[i][i]) < 1e-12 ? 0.0 : b[i] / a[i][i];
  }
  return x;
}

std::vector<double> PlanLevelFeatures(const simdb::ExecutedQuery& record) {
  std::vector<std::vector<double>> node_rows;
  int nodes = 0;
  record.query.root->Visit([&](const plan::PlanNode& node) {
    node_rows.push_back(data::NodeFeatures(node));
    ++nodes;
  });
  std::vector<double> features = data::SumFeatures(node_rows);
  for (double v : record.db_config.ToFeatures()) features.push_back(v);
  features.push_back(std::log1p(static_cast<double>(nodes)) / 6.0);
  features.push_back(
      std::log1p(record.query.root->props().total_cost) / 25.0);
  features.push_back(
      std::log1p(record.query.root->props().startup_cost) / 25.0);
  return features;
}

double LatencyBaseline::EvaluateMaeMs(
    const std::vector<simdb::ExecutedQuery>& records) const {
  if (records.empty()) return 0;
  double total = 0;
  for (const simdb::ExecutedQuery& record : records) {
    total += std::abs(PredictMs(record) - record.latency_ms);
  }
  return total / static_cast<double>(records.size());
}

// --- TAM ---

namespace {

std::vector<double> TamFeatures(const simdb::ExecutedQuery& record) {
  return {std::log1p(record.query.root->props().total_cost),
          std::log1p(record.query.root->props().startup_cost),
          std::log1p(static_cast<double>(record.query.NumNodes()))};
}

}  // namespace

void TamBaseline::Train(const std::vector<simdb::ExecutedQuery>& train) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const simdb::ExecutedQuery& record : train) {
    x.push_back(TamFeatures(record));
    y.push_back(data::EncodeLabel(record.latency_ms));
  }
  weights_ = FitRidge(x, y, 1e-6);
}

double TamBaseline::PredictMs(const simdb::ExecutedQuery& record) const {
  return data::DecodeLabel(Predict(weights_, TamFeatures(record)));
}

// --- SVM (linear SVR stand-in) ---

void SvrBaseline::Train(const std::vector<simdb::ExecutedQuery>& train) {
  std::vector<std::vector<double>> raw;
  std::vector<double> y;
  for (const simdb::ExecutedQuery& record : train) {
    raw.push_back(PlanLevelFeatures(record));
    y.push_back(data::EncodeLabel(record.latency_ms));
  }
  Standardize(raw, &mean_, &scale_);
  std::vector<std::vector<double>> x;
  x.reserve(raw.size());
  for (const auto& row : raw) x.push_back(Apply(row, mean_, scale_));
  weights_ = FitRidge(x, y, lambda_);
}

double SvrBaseline::PredictMs(const simdb::ExecutedQuery& record) const {
  const std::vector<double> features =
      Apply(PlanLevelFeatures(record), mean_, scale_);
  return data::DecodeLabel(Predict(weights_, features));
}

// --- RBF ---

void RbfBaseline::Train(const std::vector<simdb::ExecutedQuery>& train) {
  std::vector<std::vector<double>> raw;
  train_labels_.clear();
  for (const simdb::ExecutedQuery& record : train) {
    raw.push_back(PlanLevelFeatures(record));
    train_labels_.push_back(data::EncodeLabel(record.latency_ms));
  }
  Standardize(raw, &mean_, &scale_);
  train_features_.clear();
  train_features_.reserve(raw.size());
  for (const auto& row : raw) train_features_.push_back(Apply(row, mean_, scale_));

  // Median-distance bandwidth heuristic over a subsample.
  std::vector<double> distances;
  const size_t n = train_features_.size();
  const size_t stride = std::max<size_t>(1, n / 64);
  for (size_t i = 0; i < n; i += stride) {
    for (size_t j = i + stride; j < n; j += stride) {
      double d2 = 0;
      for (size_t k = 0; k < train_features_[i].size(); ++k) {
        const double diff = train_features_[i][k] - train_features_[j][k];
        d2 += diff * diff;
      }
      distances.push_back(std::sqrt(d2));
    }
  }
  std::sort(distances.begin(), distances.end());
  bandwidth_ = distances.empty() ? 1.0
                                 : std::max(1e-3, distances[distances.size() / 2]);
}

double RbfBaseline::PredictMs(const simdb::ExecutedQuery& record) const {
  const std::vector<double> query =
      Apply(PlanLevelFeatures(record), mean_, scale_);
  double weight_sum = 0, value_sum = 0;
  for (size_t i = 0; i < train_features_.size(); ++i) {
    double d2 = 0;
    for (size_t k = 0; k < query.size(); ++k) {
      const double diff = query[k] - train_features_[i][k];
      d2 += diff * diff;
    }
    const double w = std::exp(-d2 / (2.0 * bandwidth_ * bandwidth_));
    weight_sum += w;
    value_sum += w * train_labels_[i];
  }
  if (weight_sum < 1e-12) {
    // Far from all training points: fall back to the mean label.
    double mean = 0;
    for (double y : train_labels_) mean += y;
    return data::DecodeLabel(train_labels_.empty()
                                 ? 0.0
                                 : mean / train_labels_.size());
  }
  return data::DecodeLabel(value_sum / weight_sum);
}

}  // namespace qpe::tasks
