#include "tasks/classifier.h"

#include <algorithm>
#include <cassert>

#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace qpe::tasks {

namespace {

nn::Tensor RowsTensor(const std::vector<std::vector<float>>& rows,
                      const std::vector<int>& indices) {
  const int d = static_cast<int>(rows[indices[0]].size());
  std::vector<float> flat;
  flat.reserve(indices.size() * d);
  for (int i : indices) {
    flat.insert(flat.end(), rows[i].begin(), rows[i].end());
  }
  return nn::Tensor::FromVector(static_cast<int>(indices.size()), d, flat);
}

}  // namespace

QueryClassifier::QueryClassifier(const Config& config, util::Rng* rng)
    : config_(config) {
  assert(static_cast<int>(config.template_to_cluster.size()) ==
         config.num_templates);
  if (config.use_batchnorm) {
    batchnorm_ = RegisterModule(
        "batchnorm", std::make_unique<nn::BatchNorm1d>(config.feature_dim));
  }
  mlp_ = RegisterModule(
      "mlp", std::make_unique<nn::Mlp>(
                 std::vector<int>{config.feature_dim, config.hidden_dim,
                                  config.hidden_dim, config.num_templates},
                 nn::Activation::kRelu, nn::Activation::kNone, rng));
  cluster_matrix_ =
      nn::Tensor::Zeros(config.num_templates, config.num_clusters);
  for (int t = 0; t < config.num_templates; ++t) {
    cluster_matrix_.set(t, config.template_to_cluster[t], 1.0f);
  }
}

nn::Tensor QueryClassifier::Logits(const nn::Tensor& x) {
  nn::Tensor h = x;
  if (batchnorm_ != nullptr) h = batchnorm_->Forward(h);
  return mlp_->Forward(h);
}

void QueryClassifier::Train(const std::vector<std::vector<float>>& features,
                            const std::vector<int>& template_labels,
                            const TrainOptions& options) {
  nn::Adam optimizer(Parameters(), options.lr);
  util::Rng rng(options.seed);
  const int n = static_cast<int>(features.size());
  SetTraining(true);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<int> order = rng.Permutation(n);
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      const std::vector<int> indices(order.begin() + start,
                                     order.begin() + end);
      if (indices.size() < 2 && batchnorm_ != nullptr) continue;
      const nn::Tensor x = RowsTensor(features, indices);
      std::vector<int> targets;
      targets.reserve(indices.size());
      for (int i : indices) targets.push_back(template_labels[i]);
      const nn::Tensor logits = Logits(x);
      nn::Tensor loss = CrossEntropy(logits, targets);
      if (config_.cluster_loss_weight > 0) {
        // Cluster regularizer: sum template probabilities per cluster, then
        // cross-entropy against the true cluster (§5.3).
        const nn::Tensor probs = SoftmaxRows(logits);
        const nn::Tensor cluster_probs = MatMul(probs, cluster_matrix_);
        nn::Tensor one_hot = nn::Tensor::Zeros(
            static_cast<int>(indices.size()), config_.num_clusters);
        float* oh = one_hot.value().data();
        for (size_t r = 0; r < indices.size(); ++r) {
          oh[r * config_.num_clusters +
             config_.template_to_cluster[targets[r]]] = 1.0f;
        }
        const nn::Tensor cluster_nll = Scale(
            Mean(RowSum(Mul(Log(cluster_probs), one_hot))),
            -static_cast<float>(config_.num_clusters));
        // (RowSum picks the target cluster's log-prob; Mean divides by the
        // cluster count, so rescale to a per-row average NLL.)
        loss = Add(loss, Scale(cluster_nll, config_.cluster_loss_weight));
      }
      optimizer.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), 5.0f);
      optimizer.Step();
    }
  }
  SetTraining(false);
}

int QueryClassifier::PredictTemplate(const std::vector<float>& features) {
  SetTraining(false);
  const nn::Tensor x = nn::Tensor::FromVector(
      1, static_cast<int>(features.size()), features);
  const nn::Tensor logits = Logits(x);
  const float* lv = logits.value().data();  // [1, num_templates]
  int best = 0;
  for (int t = 1; t < config_.num_templates; ++t) {
    if (lv[t] > lv[best]) best = t;
  }
  return best;
}

QueryClassifier::Accuracy QueryClassifier::Evaluate(
    const std::vector<std::vector<float>>& features,
    const std::vector<int>& template_labels) {
  SetTraining(false);
  Accuracy accuracy;
  if (features.empty()) return accuracy;
  int template_hits = 0, cluster_hits = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    const nn::Tensor x = nn::Tensor::FromVector(
        1, static_cast<int>(features[i].size()), features[i]);
    const nn::Tensor logits = Logits(x);
    const nn::Tensor probs = SoftmaxRows(logits);
    // Template prediction: argmax logit.
    const float* lv = logits.value().data();  // [1, num_templates]
    const float* pv = probs.value().data();
    int best_template = 0;
    for (int t = 1; t < config_.num_templates; ++t) {
      if (lv[t] > lv[best_template]) best_template = t;
    }
    // Cluster prediction: argmax of summed template probabilities (§5.3).
    std::vector<double> cluster_scores(config_.num_clusters, 0.0);
    for (int t = 0; t < config_.num_templates; ++t) {
      cluster_scores[config_.template_to_cluster[t]] += pv[t];
    }
    int best_cluster = 0;
    for (int c = 1; c < config_.num_clusters; ++c) {
      if (cluster_scores[c] > cluster_scores[best_cluster]) best_cluster = c;
    }
    template_hits += best_template == template_labels[i];
    cluster_hits +=
        best_cluster == config_.template_to_cluster[template_labels[i]];
  }
  accuracy.template_accuracy =
      static_cast<double>(template_hits) / features.size();
  accuracy.cluster_accuracy =
      static_cast<double>(cluster_hits) / features.size();
  return accuracy;
}

}  // namespace qpe::tasks
