#ifndef QPE_TASKS_KNOB_IMPORTANCE_H_
#define QPE_TASKS_KNOB_IMPORTANCE_H_

#include <vector>

#include "config/db_config.h"
#include "simdb/workload_runner.h"
#include "tasks/latency_model.h"

namespace qpe::tasks {

// Per-knob importance for a workload (the paper's motivating observation:
// "query Q18 and query Q7 ... respond to knob changes shared_buffers vs.
// effective_cache_size very differently"). Two estimators:
//
//  - Permutation importance of a trained latency model: shuffle one knob's
//    values across the evaluation records and measure the increase in the
//    model's prediction error. Captures what the *model* relies on.
//  - Ground-truth sensitivity from the simulator: re-execute each record
//    with one knob moved to its range extremes and measure the latency
//    swing. Captures what actually matters.

struct KnobImportance {
  config::Knob knob;
  double score = 0;  // larger = more important; units depend on estimator
};

// Permutation importance (MAE increase in ms when the knob is shuffled).
std::vector<KnobImportance> PermutationImportance(
    const LatencyPredictor& model,
    const std::vector<simdb::ExecutedQuery>& records, uint64_t seed);

// Ground-truth sensitivity: mean |latency(knob=max) - latency(knob=min)| in
// ms over the given query instances, holding everything else fixed.
std::vector<KnobImportance> SimulatedSensitivity(
    const simdb::BenchmarkWorkload& workload,
    const std::vector<int>& template_indices, int instances, uint64_t seed);

}  // namespace qpe::tasks

#endif  // QPE_TASKS_KNOB_IMPORTANCE_H_
