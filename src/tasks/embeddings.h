#ifndef QPE_TASKS_EMBEDDINGS_H_
#define QPE_TASKS_EMBEDDINGS_H_

#include <array>
#include <vector>

#include "catalog/catalog.h"
#include "encoder/performance_encoder.h"
#include "encoder/structure_encoder.h"
#include "simdb/workload_runner.h"

namespace qpe::tasks {

// Bridges the pretrained encoders to the downstream tasks (paper Figure 4):
// given an executed query, produces the fused feature vector
//   [ S(p) ∘ mean-pooled C(p) per operator group ∘ f_db ]
// with any component omissible for ablations. Encoders are used as fixed
// feature extractors here (the paper's feature-based downstream usage).
class EmbeddingFeaturizer {
 public:
  struct Config {
    const encoder::PlanSequenceEncoder* structure = nullptr;  // may be null
    // One performance encoder per group: Scan, Join, Sort, Aggregate
    // (indexed by plan::OperatorGroup); entries may be null.
    std::array<const encoder::PerfEncoderBase*, 4> performance = {nullptr,
                                                                  nullptr,
                                                                  nullptr,
                                                                  nullptr};
    const catalog::Catalog* catalog = nullptr;  // required if performance set
    bool include_db_features = true;
    // Also append each group's predicted (encoded) time/cost/startup for
    // the *summed-features* sample — the cumulative-label view of §3.2.1.
    // This hands the downstream model calibrated per-group time estimates.
    bool include_group_predictions = true;
  };

  explicit EmbeddingFeaturizer(Config config);

  int FeatureDim() const;
  std::vector<float> Featurize(const simdb::ExecutedQuery& record) const;

  // Featurizes a whole dataset into an [N, FeatureDim] row-major matrix.
  // The structure embeddings of all records are computed in one
  // EncodeBatch call (bit-identical to per-record Encode).
  std::vector<std::vector<float>> FeaturizeAll(
      const std::vector<simdb::ExecutedQuery>& records) const;

  const Config& config() const { return config_; }

 private:
  // `structure` is the precomputed structural embedding of the record's
  // plan (batched path), or null to encode inline.
  std::vector<float> FeaturizeImpl(const simdb::ExecutedQuery& record,
                                   const nn::Tensor* structure) const;

  Config config_;
};

}  // namespace qpe::tasks

#endif  // QPE_TASKS_EMBEDDINGS_H_
