#ifndef QPE_TASKS_LATENCY_MODEL_H_
#define QPE_TASKS_LATENCY_MODEL_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "simdb/workload_runner.h"
#include "tasks/embeddings.h"

namespace qpe::tasks {

// Downstream task 1 (paper §4.1): query latency prediction. A standard
// multilayer DNN over the fused features from EmbeddingFeaturizer —
// structure embedding, computational performance embedding, and the
// (log-scaled) database settings — trained in log-latency space.
class LatencyPredictor : public nn::Module {
 public:
  LatencyPredictor(const EmbeddingFeaturizer* featurizer, int hidden_dim,
                   util::Rng* rng);

  struct TrainOptions {
    int epochs = 80;
    float lr = 2e-3f;
    int batch_size = 32;
    uint64_t seed = 41;
  };

  // Trains on executed queries (targets: observed latency). Returns final
  // train MAE in ms.
  double Train(const std::vector<simdb::ExecutedQuery>& train,
               const TrainOptions& options);

  double PredictMs(const simdb::ExecutedQuery& record) const;

  // MAE in milliseconds over a set.
  double EvaluateMaeMs(const std::vector<simdb::ExecutedQuery>& records) const;

  // Per-record predictions (ms).
  std::vector<double> PredictAllMs(
      const std::vector<simdb::ExecutedQuery>& records) const;

 private:
  nn::Tensor FeatureTensor(
      const std::vector<std::vector<float>>& rows) const;

  const EmbeddingFeaturizer* featurizer_;
  nn::Mlp* mlp_;
};

}  // namespace qpe::tasks

#endif  // QPE_TASKS_LATENCY_MODEL_H_
