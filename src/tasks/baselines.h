#ifndef QPE_TASKS_BASELINES_H_
#define QPE_TASKS_BASELINES_H_

#include <string>
#include <vector>

#include "simdb/workload_runner.h"

namespace qpe::tasks {

// Latency-prediction baselines from the paper's Figure 7/8 comparison
// (Marcus & Papaemmanouil's study): TAM, SVM, RBF, and QPPNet (QPPNet lives
// in tasks/qppnet.h). Each learns from executed queries and predicts
// latency for unseen ones.

// Flat plan-level feature vector shared by the SVM/RBF baselines: summed
// node features plus configuration features plus plan shape statistics.
std::vector<double> PlanLevelFeatures(const simdb::ExecutedQuery& record);

class LatencyBaseline {
 public:
  virtual ~LatencyBaseline() = default;
  virtual void Train(const std::vector<simdb::ExecutedQuery>& train) = 0;
  virtual double PredictMs(const simdb::ExecutedQuery& record) const = 0;
  virtual std::string name() const = 0;

  double EvaluateMaeMs(const std::vector<simdb::ExecutedQuery>& records) const;
};

// TAM (Wu et al. [33]): a *tuned optimizer cost model* — calibrates a
// linear map from optimizer cost estimates (total cost, startup cost, node
// count) to observed latency.
class TamBaseline : public LatencyBaseline {
 public:
  void Train(const std::vector<simdb::ExecutedQuery>& train) override;
  double PredictMs(const simdb::ExecutedQuery& record) const override;
  std::string name() const override { return "TAM"; }

 private:
  std::vector<double> weights_;
};

// SVM baseline (Akdere et al. [1]): linear support-vector regression,
// realized as closed-form ridge regression on plan-level features (same
// model family and feature granularity; the epsilon-insensitive loss is the
// only simplification).
class SvrBaseline : public LatencyBaseline {
 public:
  explicit SvrBaseline(double ridge_lambda = 1e-2) : lambda_(ridge_lambda) {}

  void Train(const std::vector<simdb::ExecutedQuery>& train) override;
  double PredictMs(const simdb::ExecutedQuery& record) const override;
  std::string name() const override { return "SVM"; }

 private:
  double lambda_;
  std::vector<double> weights_;
  std::vector<double> mean_;
  std::vector<double> scale_;
};

// RBF baseline (Li et al. [17]): RBF-kernel regression, realized as
// Nadaraya-Watson kernel smoothing over standardized plan-level features
// with a median-distance bandwidth.
class RbfBaseline : public LatencyBaseline {
 public:
  void Train(const std::vector<simdb::ExecutedQuery>& train) override;
  double PredictMs(const simdb::ExecutedQuery& record) const override;
  std::string name() const override { return "RBF"; }

 private:
  std::vector<std::vector<double>> train_features_;  // standardized
  std::vector<double> train_labels_;                 // encoded
  std::vector<double> mean_;
  std::vector<double> scale_;
  double bandwidth_ = 1.0;
};

// Solves (A + lambda*I) x = b for symmetric positive-definite A via
// Gaussian elimination with partial pivoting. Exposed for tests.
std::vector<double> SolveRidge(std::vector<std::vector<double>> a,
                               std::vector<double> b, double lambda);

}  // namespace qpe::tasks

#endif  // QPE_TASKS_BASELINES_H_
