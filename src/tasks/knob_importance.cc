#include "tasks/knob_importance.h"

#include <algorithm>
#include <cmath>

#include "simdb/executor.h"
#include "simdb/planner.h"
#include "util/rng.h"

namespace qpe::tasks {

std::vector<KnobImportance> PermutationImportance(
    const LatencyPredictor& model,
    const std::vector<simdb::ExecutedQuery>& records, uint64_t seed) {
  const double baseline = model.EvaluateMaeMs(records);
  util::Rng rng(seed);
  std::vector<KnobImportance> importances;
  for (int k = 0; k < config::kNumKnobs; ++k) {
    const auto knob = static_cast<config::Knob>(k);
    // Shuffle this knob's values across records.
    const std::vector<int> perm =
        rng.Permutation(static_cast<int>(records.size()));
    double total_error = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      simdb::ExecutedQuery shuffled = records[i].Clone();
      shuffled.db_config.Set(knob, records[perm[i]].db_config.Get(knob));
      total_error += std::abs(model.PredictMs(shuffled) - records[i].latency_ms);
    }
    KnobImportance importance;
    importance.knob = knob;
    importance.score =
        total_error / static_cast<double>(records.size()) - baseline;
    importances.push_back(importance);
  }
  std::sort(importances.begin(), importances.end(),
            [](const KnobImportance& a, const KnobImportance& b) {
              return a.score > b.score;
            });
  return importances;
}

std::vector<KnobImportance> SimulatedSensitivity(
    const simdb::BenchmarkWorkload& workload,
    const std::vector<int>& template_indices, int instances, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<KnobImportance> importances(config::kNumKnobs);
  for (int k = 0; k < config::kNumKnobs; ++k) {
    importances[k].knob = static_cast<config::Knob>(k);
  }
  int count = 0;
  for (int t : template_indices) {
    for (int i = 0; i < instances; ++i) {
      const simdb::QuerySpec spec = workload.Instantiate(t, &rng);
      for (int k = 0; k < config::kNumKnobs; ++k) {
        const auto knob = static_cast<config::Knob>(k);
        const auto& info = config::GetKnobInfo(knob);
        auto run = [&](double value) {
          config::DbConfig db_config;  // midpoints elsewhere
          db_config.Set(knob, value);
          simdb::Planner planner(&workload.GetCatalog(), &db_config);
          simdb::ExecutorSim executor(&workload.GetCatalog(), &db_config);
          plan::Plan planned = planner.PlanQuery(spec);
          util::Rng noise(seed + t);  // identical noise both runs
          return executor.Execute(&planned, spec.cardinality_seed, &noise);
        };
        importances[k].score +=
            std::abs(run(info.max_value) - run(info.min_value));
      }
      ++count;
    }
  }
  for (auto& importance : importances) {
    importance.score /= std::max(1, count);
  }
  std::sort(importances.begin(), importances.end(),
            [](const KnobImportance& a, const KnobImportance& b) {
              return a.score > b.score;
            });
  return importances;
}

}  // namespace qpe::tasks
