#ifndef QPE_TASKS_CLASSIFIER_H_
#define QPE_TASKS_CLASSIFIER_H_

#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace qpe::tasks {

// Downstream task 2 (paper §4.2, §5.3): query classification on the Join
// Order Benchmark — predict the template id (113-way) of a plan, with a
// cluster-level (33-way) cross-entropy regularizer computed by summing the
// template probabilities within each cluster. Inputs are fused embedding
// features (structure and/or performance, from EmbeddingFeaturizer), passed
// through batch normalization before the classifier MLP — both details the
// paper reports as important.
class QueryClassifier : public nn::Module {
 public:
  struct Config {
    int feature_dim = 0;
    int hidden_dim = 64;
    int num_templates = 113;
    int num_clusters = 33;
    std::vector<int> template_to_cluster;  // size num_templates
    float cluster_loss_weight = 0.5f;
    bool use_batchnorm = true;
  };

  QueryClassifier(const Config& config, util::Rng* rng);

  struct TrainOptions {
    int epochs = 40;
    float lr = 2e-3f;
    int batch_size = 32;
    uint64_t seed = 53;
  };

  void Train(const std::vector<std::vector<float>>& features,
             const std::vector<int>& template_labels,
             const TrainOptions& options);

  struct Accuracy {
    double template_accuracy = 0;
    double cluster_accuracy = 0;
  };

  Accuracy Evaluate(const std::vector<std::vector<float>>& features,
                    const std::vector<int>& template_labels);

  // Predicted template id for one feature row.
  int PredictTemplate(const std::vector<float>& features);

 private:
  nn::Tensor Logits(const nn::Tensor& x);

  Config config_;
  nn::BatchNorm1d* batchnorm_ = nullptr;
  nn::Mlp* mlp_;
  nn::Tensor cluster_matrix_;  // [num_templates, num_clusters], constant 0/1
};

}  // namespace qpe::tasks

#endif  // QPE_TASKS_CLASSIFIER_H_
