#include "tasks/latency_model.h"

#include <algorithm>
#include <cmath>

#include "data/features.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace qpe::tasks {

LatencyPredictor::LatencyPredictor(const EmbeddingFeaturizer* featurizer,
                                   int hidden_dim, util::Rng* rng)
    : featurizer_(featurizer) {
  mlp_ = RegisterModule(
      "mlp", std::make_unique<nn::Mlp>(
                 std::vector<int>{featurizer->FeatureDim(), hidden_dim,
                                  hidden_dim, 1},
                 nn::Activation::kRelu, nn::Activation::kNone, rng));
}

nn::Tensor LatencyPredictor::FeatureTensor(
    const std::vector<std::vector<float>>& rows) const {
  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(n) * d);
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  return nn::Tensor::FromVector(n, d, flat);
}

double LatencyPredictor::Train(
    const std::vector<simdb::ExecutedQuery>& train,
    const TrainOptions& options) {
  // Encoders are fixed feature extractors: featurize once, then train the
  // head MLP on the cached matrix.
  const std::vector<std::vector<float>> features =
      featurizer_->FeaturizeAll(train);
  std::vector<float> targets;
  targets.reserve(train.size());
  for (const simdb::ExecutedQuery& record : train) {
    targets.push_back(static_cast<float>(data::EncodeLabel(record.latency_ms)));
  }

  nn::Adam optimizer(Parameters(), options.lr);
  util::Rng rng(options.seed);
  const int n = static_cast<int>(train.size());
  SetTraining(true);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<int> order = rng.Permutation(n);
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      std::vector<std::vector<float>> batch_rows;
      std::vector<float> batch_targets;
      for (int i = start; i < end; ++i) {
        batch_rows.push_back(features[order[i]]);
        batch_targets.push_back(targets[order[i]]);
      }
      const nn::Tensor x = FeatureTensor(batch_rows);
      const nn::Tensor y = nn::Tensor::FromVector(
          static_cast<int>(batch_targets.size()), 1, batch_targets);
      const nn::Tensor loss = nn::MseLoss(mlp_->Forward(x), y);
      optimizer.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), 5.0f);
      optimizer.Step();
    }
  }
  SetTraining(false);
  return EvaluateMaeMs(train);
}

double LatencyPredictor::PredictMs(const simdb::ExecutedQuery& record) const {
  const nn::Tensor x = FeatureTensor({featurizer_->Featurize(record)});
  return data::DecodeLabel(mlp_->Forward(x).at(0, 0));
}

std::vector<double> LatencyPredictor::PredictAllMs(
    const std::vector<simdb::ExecutedQuery>& records) const {
  std::vector<double> predictions;
  predictions.reserve(records.size());
  for (const simdb::ExecutedQuery& record : records) {
    predictions.push_back(PredictMs(record));
  }
  return predictions;
}

double LatencyPredictor::EvaluateMaeMs(
    const std::vector<simdb::ExecutedQuery>& records) const {
  if (records.empty()) return 0;
  double total = 0;
  for (const simdb::ExecutedQuery& record : records) {
    total += std::abs(PredictMs(record) - record.latency_ms);
  }
  return total / static_cast<double>(records.size());
}

}  // namespace qpe::tasks
