#ifndef QPE_TASKS_WORKLOAD_SIMILARITY_H_
#define QPE_TASKS_WORKLOAD_SIMILARITY_H_

#include <vector>

#include "encoder/structure_encoder.h"
#include "plan/plan_node.h"

namespace qpe::tasks {

// Workload-level characterization (paper §1/§2.1): a workload is a weighted
// set of plans W = {(p_i, theta_i)}, sum(theta_i) = 1. With a pretrained
// plan encoder, a workload embeds as the theta-weighted mean of its plan
// embeddings, and workloads compare by embedding distance — enabling the
// paper's motivating applications (identify databases with similar
// workloads, transfer tuning experience) without sharing any query text.

struct WeightedPlan {
  const plan::PlanNode* plan = nullptr;
  double theta = 1.0;
};

// theta-weighted mean embedding; weights are normalized internally.
std::vector<double> WorkloadEmbedding(
    const encoder::PlanSequenceEncoder& encoder,
    const std::vector<WeightedPlan>& workload);

// Cosine similarity between two workload embeddings (0 if degenerate).
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

// Euclidean distance between workload embeddings.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

// K-means clustering of workload (or plan) embeddings; returns the cluster
// id per input row. Deterministic given the seed.
std::vector<int> KMeansCluster(const std::vector<std::vector<double>>& rows,
                               int k, int iterations, uint64_t seed);

}  // namespace qpe::tasks

#endif  // QPE_TASKS_WORKLOAD_SIMILARITY_H_
