#include "tasks/qppnet.h"

#include <cmath>

#include "data/features.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace qpe::tasks {

QppNet::QppNet(const Config& config, util::Rng* rng) : config_(config) {
  const int input_dim = data::kNodeFeatureDim + 2 * config.data_dim;
  for (int g = 0; g < plan::kNumOperatorGroups; ++g) {
    units_.push_back(RegisterModule(
        std::string("unit_") + plan::GroupName(static_cast<plan::OperatorGroup>(g)),
        std::make_unique<nn::Mlp>(
            std::vector<int>{input_dim, config.hidden_dim, config.hidden_dim,
                             config.data_dim},
            nn::Activation::kRelu, nn::Activation::kNone, rng)));
  }
}

nn::Tensor QppNet::ForwardNode(const plan::PlanNode& node) const {
  // Children data vectors, zero-padded to two slots; extra children are
  // summed into the second slot.
  nn::Tensor left = nn::Tensor::Zeros(1, config_.data_dim);
  nn::Tensor right = nn::Tensor::Zeros(1, config_.data_dim);
  const auto& children = node.children();
  if (!children.empty()) left = ForwardNode(*children[0]);
  for (size_t i = 1; i < children.size(); ++i) {
    right = Add(right, ForwardNode(*children[i]));
  }
  const std::vector<double> features = data::NodeFeatures(node);
  std::vector<float> feature_floats(features.begin(), features.end());
  const nn::Tensor node_features = nn::Tensor::FromVector(
      1, static_cast<int>(feature_floats.size()), feature_floats);
  const nn::Tensor input = nn::ConcatCols({node_features, left, right});
  const int group = static_cast<int>(plan::GroupOf(node.type()));
  return units_[group]->Forward(input);
}

nn::Tensor QppNet::PlanLoss(const plan::PlanNode& root) const {
  // Supervise the root's latency output fully, internal nodes at reduced
  // weight, as in the original per-operator training signal.
  nn::Tensor total = nn::Tensor::Scalar(0.0f);
  float weight_total = 0.0f;
  std::vector<const plan::PlanNode*> stack = {&root};
  while (!stack.empty()) {
    const plan::PlanNode* node = stack.back();
    stack.pop_back();
    const float weight = node == &root ? 1.0f : config_.internal_loss_weight;
    if (weight > 0) {
      const nn::Tensor data_vector = ForwardNode(*node);
      const nn::Tensor pred = SliceCols(data_vector, 0, 1);
      const nn::Tensor target = nn::Tensor::Scalar(static_cast<float>(
          data::EncodeLabel(node->props().actual_total_time_ms)));
      total = Add(total, Scale(Square(Sub(pred, target)), weight));
      weight_total += weight;
    }
    // Only descend one level for internal supervision to bound cost: the
    // root plus its direct children cover the dominant operators.
    if (node == &root) {
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }
  return Scale(total, weight_total > 0 ? 1.0f / weight_total : 1.0f);
}

void QppNet::Train(const std::vector<simdb::ExecutedQuery>& train) {
  nn::Adam optimizer(Parameters(), config_.lr);
  util::Rng rng(config_.seed);
  SetTraining(true);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<int> order =
        rng.Permutation(static_cast<int>(train.size()));
    for (int idx : order) {
      if (train[idx].query.root == nullptr) continue;
      const nn::Tensor loss = PlanLoss(*train[idx].query.root);
      optimizer.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(Parameters(), 5.0f);
      optimizer.Step();
    }
  }
  SetTraining(false);
}

double QppNet::PredictMs(const simdb::ExecutedQuery& record) const {
  if (record.query.root == nullptr) return 0;
  const nn::Tensor data_vector = ForwardNode(*record.query.root);
  return data::DecodeLabel(data_vector.at(0, 0));
}

}  // namespace qpe::tasks
