#ifndef QPE_TASKS_QPPNET_H_
#define QPE_TASKS_QPPNET_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tasks/baselines.h"

namespace qpe::tasks {

// QPPNet (Marcus & Papaemmanouil [18]): plan-structured neural network.
// One neural unit per operator group; a node's unit consumes the node's
// features concatenated with its children's output *data vectors* and emits
// a data vector whose first element is the predicted (encoded) latency of
// the subtree. The network composes along the plan tree, so its shape
// mirrors the plan's shape — per-plan dynamic graphs, handled naturally by
// the autograd substrate.
class QppNet : public nn::Module, public LatencyBaseline {
 public:
  struct Config {
    int data_dim = 16;    // size of the inter-unit data vectors
    int hidden_dim = 32;
    int epochs = 30;
    float lr = 2e-3f;
    uint64_t seed = 47;
    // Supervision weight for internal (non-root) nodes' latency outputs.
    float internal_loss_weight = 0.5f;
  };

  QppNet(const Config& config, util::Rng* rng);

  void Train(const std::vector<simdb::ExecutedQuery>& train) override;
  double PredictMs(const simdb::ExecutedQuery& record) const override;
  std::string name() const override { return "QPPNet"; }

 private:
  // Returns the node's data vector [1, data_dim].
  nn::Tensor ForwardNode(const plan::PlanNode& node) const;
  // Collects (prediction, encoded target, weight) terms for the loss.
  nn::Tensor PlanLoss(const plan::PlanNode& root) const;

  Config config_;
  std::vector<nn::Mlp*> units_;  // one per plan::OperatorGroup
};

}  // namespace qpe::tasks

#endif  // QPE_TASKS_QPPNET_H_
