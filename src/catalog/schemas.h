#ifndef QPE_CATALOG_SCHEMAS_H_
#define QPE_CATALOG_SCHEMAS_H_

#include "catalog/catalog.h"

namespace qpe::catalog {

// Synthetic catalogs standing in for the paper's benchmark databases. Row
// counts follow the official generators (dbgen/dsdgen/IMDB dumps) at the
// given scale factor; column statistics (ndv, null fractions, correlation,
// indexes) are representative values sufficient for the planner and the
// executor simulator.

// TPC-H: 8 tables (region, nation, supplier, customer, part, partsupp,
// orders, lineitem). scale_factor 1 == ~8.6M total rows.
Catalog MakeTpchCatalog(double scale_factor);

// TPC-DS: the 17 tables used by our template set (3 fact + returns +
// inventory + dimensions).
Catalog MakeTpcdsCatalog(double scale_factor);

// IMDB catalog for the Join Order Benchmark: the full 21-table schema.
Catalog MakeImdbCatalog();

// Spatial catalog modelling Jackpine (TIGER shapefiles) plus OSM extracts
// for one region. `region_scale` scales feature counts (e.g. New York vs
// Los Angeles extracts).
Catalog MakeSpatialCatalog(double region_scale);

}  // namespace qpe::catalog

#endif  // QPE_CATALOG_SCHEMAS_H_
