#include "catalog/catalog.h"

#include <algorithm>
#include <cmath>

namespace qpe::catalog {

double TableStats::RowWidth() const {
  double width = 24.0;  // tuple header
  for (const ColumnStats& col : columns) width += col.avg_width;
  return width;
}

double TableStats::PageCount() const {
  return std::max(1.0, std::ceil(row_count * RowWidth() / kPageSizeBytes));
}

const ColumnStats* TableStats::FindColumn(const std::string& column_name) const {
  for (const ColumnStats& col : columns) {
    if (col.name == column_name) return &col;
  }
  return nullptr;
}

int TableStats::IndexedColumnCount() const {
  int count = 0;
  for (const ColumnStats& col : columns) count += col.indexed;
  return count;
}

TableStats& Catalog::AddTable(TableStats table) {
  tables_.push_back(std::move(table));
  return tables_.back();
}

const TableStats* Catalog::FindTable(const std::string& table_name) const {
  for (const TableStats& table : tables_) {
    if (table.name == table_name) return &table;
  }
  return nullptr;
}

double Catalog::TotalPages() const {
  double total = 0;
  for (const TableStats& table : tables_) total += table.PageCount();
  return total;
}

double Catalog::TotalRows() const {
  double total = 0;
  for (const TableStats& table : tables_) total += table.row_count;
  return total;
}

std::vector<double> Catalog::MetaFeatures(
    const std::vector<std::string>& relations) const {
  double rows = 0, pages = 0, bytes = 0;
  double columns = 0, indexed = 0;
  double ndv_sum = 0, null_frac_sum = 0, corr_sum = 0, width_sum = 0;
  int col_count = 0;
  for (const std::string& rel : relations) {
    const TableStats* table = FindTable(rel);
    if (table == nullptr) continue;
    rows += table->row_count;
    pages += table->PageCount();
    bytes += table->TotalBytes();
    columns += static_cast<double>(table->columns.size());
    indexed += table->IndexedColumnCount();
    for (const ColumnStats& col : table->columns) {
      ndv_sum += col.ndv;
      null_frac_sum += col.null_frac;
      corr_sum += col.correlation;
      width_sum += col.avg_width;
      ++col_count;
    }
  }
  const double inv_cols = col_count > 0 ? 1.0 / col_count : 0.0;
  // Log-compress the unbounded magnitudes so features are in a learnable
  // range regardless of scale factor.
  return {
      std::log1p(rows) / 25.0,
      std::log1p(pages) / 25.0,
      std::log1p(bytes) / 35.0,
      columns / 64.0,
      indexed / 16.0,
      std::log1p(ndv_sum) / 25.0,
      null_frac_sum * inv_cols,
      corr_sum * inv_cols,
      width_sum * inv_cols / 64.0,
      static_cast<double>(relations.size()) / 8.0,
      std::log1p(TotalPages()) / 25.0,
      std::log1p(TotalRows()) / 25.0,
      std::log1p(scale_factor_) / 8.0,
      spatial_ ? 1.0 : 0.0,
  };
}

}  // namespace qpe::catalog
