#include "catalog/schemas.h"

#include <algorithm>
#include <cmath>

namespace qpe::catalog {

namespace {

ColumnStats Col(const char* name, double ndv, double width, bool indexed,
                double null_frac = 0.0, double correlation = 0.0) {
  ColumnStats col;
  col.name = name;
  col.ndv = std::max(1.0, ndv);
  col.avg_width = width;
  col.indexed = indexed;
  col.null_frac = null_frac;
  col.correlation = correlation;
  return col;
}

TableStats Table(const char* name, double rows, std::vector<ColumnStats> cols) {
  TableStats table;
  table.name = name;
  table.row_count = rows;
  table.columns = std::move(cols);
  return table;
}

}  // namespace

Catalog MakeTpchCatalog(double scale_factor) {
  const double sf = scale_factor;
  Catalog catalog("tpch", sf);
  catalog.AddTable(Table("region", 5,
                         {Col("r_regionkey", 5, 4, true, 0, 1.0),
                          Col("r_name", 5, 12, false)}));
  catalog.AddTable(Table("nation", 25,
                         {Col("n_nationkey", 25, 4, true, 0, 1.0),
                          Col("n_regionkey", 5, 4, false),
                          Col("n_name", 25, 12, false)}));
  catalog.AddTable(Table("supplier", 10000 * sf,
                         {Col("s_suppkey", 10000 * sf, 4, true, 0, 1.0),
                          Col("s_nationkey", 25, 4, false),
                          Col("s_acctbal", 9000 * sf, 8, false),
                          Col("s_comment", 10000 * sf, 60, false)}));
  catalog.AddTable(Table("customer", 150000 * sf,
                         {Col("c_custkey", 150000 * sf, 4, true, 0, 1.0),
                          Col("c_nationkey", 25, 4, false),
                          Col("c_mktsegment", 5, 10, false),
                          Col("c_acctbal", 140000 * sf, 8, false),
                          Col("c_comment", 150000 * sf, 70, false)}));
  catalog.AddTable(Table("part", 200000 * sf,
                         {Col("p_partkey", 200000 * sf, 4, true, 0, 1.0),
                          Col("p_brand", 25, 10, false),
                          Col("p_type", 150, 25, false),
                          Col("p_size", 50, 4, false),
                          Col("p_container", 40, 10, false),
                          Col("p_retailprice", 100000 * sf, 8, false)}));
  catalog.AddTable(Table("partsupp", 800000 * sf,
                         {Col("ps_partkey", 200000 * sf, 4, true),
                          Col("ps_suppkey", 10000 * sf, 4, true),
                          Col("ps_availqty", 10000, 4, false),
                          Col("ps_supplycost", 100000, 8, false)}));
  catalog.AddTable(Table("orders", 1500000 * sf,
                         {Col("o_orderkey", 1500000 * sf, 4, true, 0, 1.0),
                          Col("o_custkey", 100000 * sf, 4, true),
                          Col("o_orderdate", 2406, 4, true, 0, 0.9),
                          Col("o_orderstatus", 3, 1, false),
                          Col("o_orderpriority", 5, 15, false),
                          Col("o_totalprice", 1400000 * sf, 8, false)}));
  catalog.AddTable(
      Table("lineitem", 6000000 * sf,
            {Col("l_orderkey", 1500000 * sf, 4, true, 0, 0.99),
             Col("l_partkey", 200000 * sf, 4, true),
             Col("l_suppkey", 10000 * sf, 4, true),
             Col("l_shipdate", 2526, 4, true, 0, 0.85),
             Col("l_receiptdate", 2554, 4, false, 0, 0.85),
             Col("l_quantity", 50, 8, false),
             Col("l_discount", 11, 8, false),
             Col("l_extendedprice", 900000 * sf, 8, false),
             Col("l_returnflag", 3, 1, false),
             Col("l_shipmode", 7, 10, false)}));
  return catalog;
}

Catalog MakeTpcdsCatalog(double scale_factor) {
  const double sf = scale_factor;
  Catalog catalog("tpcds", sf);
  catalog.AddTable(
      Table("store_sales", 2880404 * sf,
            {Col("ss_item_sk", 18000 * std::sqrt(sf), 4, true),
             Col("ss_customer_sk", 100000 * sf, 4, true, 0.04),
             Col("ss_store_sk", 12 * std::sqrt(sf), 4, true, 0.04),
             Col("ss_sold_date_sk", 1823, 4, true, 0.04, 0.95),
             Col("ss_promo_sk", 300 * std::sqrt(sf), 4, false, 0.04),
             Col("ss_quantity", 100, 4, false),
             Col("ss_sales_price", 200000, 8, false),
             Col("ss_net_profit", 1000000, 8, false)}));
  catalog.AddTable(
      Table("catalog_sales", 1441548 * sf,
            {Col("cs_item_sk", 18000 * std::sqrt(sf), 4, true),
             Col("cs_bill_customer_sk", 100000 * sf, 4, true, 0.02),
             Col("cs_call_center_sk", 6 * std::sqrt(sf), 4, false, 0.02),
             Col("cs_sold_date_sk", 1823, 4, true, 0.02, 0.95),
             Col("cs_quantity", 100, 4, false),
             Col("cs_net_profit", 1000000, 8, false)}));
  catalog.AddTable(
      Table("web_sales", 719384 * sf,
            {Col("ws_item_sk", 18000 * std::sqrt(sf), 4, true),
             Col("ws_bill_customer_sk", 100000 * sf, 4, true, 0.02),
             Col("ws_web_site_sk", 30, 4, false, 0.02),
             Col("ws_sold_date_sk", 1823, 4, true, 0.02, 0.95),
             Col("ws_quantity", 100, 4, false),
             Col("ws_net_profit", 1000000, 8, false)}));
  catalog.AddTable(
      Table("store_returns", 287514 * sf,
            {Col("sr_item_sk", 18000 * std::sqrt(sf), 4, true),
             Col("sr_customer_sk", 100000 * sf, 4, true, 0.04),
             Col("sr_returned_date_sk", 2003, 4, true, 0.04, 0.9),
             Col("sr_return_amt", 100000, 8, false)}));
  catalog.AddTable(
      Table("inventory", 11745000 * sf,
            {Col("inv_item_sk", 18000 * std::sqrt(sf), 4, true),
             Col("inv_warehouse_sk", 5 * std::sqrt(sf), 4, true),
             Col("inv_date_sk", 261, 4, true, 0, 0.99),
             Col("inv_quantity_on_hand", 1000, 4, false, 0.05)}));
  catalog.AddTable(
      Table("item", 18000 * std::sqrt(sf),
            {Col("i_item_sk", 18000 * std::sqrt(sf), 4, true, 0, 1.0),
             Col("i_brand_id", 950, 4, false),
             Col("i_category", 10, 12, false),
             Col("i_class", 100, 12, false),
             Col("i_manufact_id", 1000, 4, false),
             Col("i_current_price", 9000, 8, false)}));
  catalog.AddTable(
      Table("customer", 100000 * sf,
            {Col("c_customer_sk", 100000 * sf, 4, true, 0, 1.0),
             Col("c_current_addr_sk", 50000 * sf, 4, true),
             Col("c_current_cdemo_sk", 1920800, 4, true, 0.03),
             Col("c_birth_year", 69, 4, false, 0.03),
             Col("c_preferred_cust_flag", 2, 1, false, 0.03)}));
  catalog.AddTable(
      Table("customer_address", 50000 * sf,
            {Col("ca_address_sk", 50000 * sf, 4, true, 0, 1.0),
             Col("ca_state", 51, 2, false),
             Col("ca_city", 700, 12, false),
             Col("ca_gmt_offset", 5, 8, false)}));
  catalog.AddTable(
      Table("customer_demographics", 1920800,
            {Col("cd_demo_sk", 1920800, 4, true, 0, 1.0),
             Col("cd_gender", 2, 1, false),
             Col("cd_marital_status", 5, 1, false),
             Col("cd_education_status", 7, 12, false)}));
  catalog.AddTable(
      Table("household_demographics", 7200,
            {Col("hd_demo_sk", 7200, 4, true, 0, 1.0),
             Col("hd_buy_potential", 6, 10, false),
             Col("hd_dep_count", 10, 4, false)}));
  catalog.AddTable(Table("date_dim", 73049,
                         {Col("d_date_sk", 73049, 4, true, 0, 1.0),
                          Col("d_year", 200, 4, false, 0, 1.0),
                          Col("d_moy", 12, 4, false),
                          Col("d_dom", 31, 4, false),
                          Col("d_day_name", 7, 9, false)}));
  catalog.AddTable(Table("time_dim", 86400,
                         {Col("t_time_sk", 86400, 4, true, 0, 1.0),
                          Col("t_hour", 24, 4, false),
                          Col("t_minute", 60, 4, false)}));
  catalog.AddTable(Table("store", 12 * std::sqrt(sf),
                         {Col("s_store_sk", 12 * std::sqrt(sf), 4, true, 0, 1.0),
                          Col("s_state", 9, 2, false),
                          Col("s_city", 18, 12, false),
                          Col("s_number_employees", 300, 4, false)}));
  catalog.AddTable(Table("warehouse", 5 * std::sqrt(sf),
                         {Col("w_warehouse_sk", 5 * std::sqrt(sf), 4, true, 0, 1.0),
                          Col("w_state", 9, 2, false)}));
  catalog.AddTable(Table("promotion", 300 * std::sqrt(sf),
                         {Col("p_promo_sk", 300 * std::sqrt(sf), 4, true, 0, 1.0),
                          Col("p_channel_email", 2, 1, false),
                          Col("p_channel_tv", 2, 1, false)}));
  catalog.AddTable(Table("web_site", 30,
                         {Col("web_site_sk", 30, 4, true, 0, 1.0),
                          Col("web_class", 5, 10, false)}));
  catalog.AddTable(Table("call_center", 6 * std::sqrt(sf),
                         {Col("cc_call_center_sk", 6 * std::sqrt(sf), 4, true, 0, 1.0),
                          Col("cc_class", 3, 10, false)}));
  return catalog;
}

Catalog MakeImdbCatalog() {
  Catalog catalog("imdb", 1.0);
  catalog.AddTable(Table("title", 2528312,
                         {Col("id", 2528312, 4, true, 0, 1.0),
                          Col("kind_id", 7, 4, true),
                          Col("production_year", 133, 4, true, 0.03, 0.1),
                          Col("title", 2300000, 30, false)}));
  catalog.AddTable(Table("movie_companies", 2609129,
                         {Col("movie_id", 1087236, 4, true, 0, 0.4),
                          Col("company_id", 234997, 4, true),
                          Col("company_type_id", 2, 4, true),
                          Col("note", 1300000, 40, false, 0.55)}));
  catalog.AddTable(Table("movie_info", 14835720,
                         {Col("movie_id", 2468825, 4, true, 0, 0.3),
                          Col("info_type_id", 71, 4, true),
                          Col("info", 2720930, 30, false)}));
  catalog.AddTable(Table("movie_info_idx", 1380035,
                         {Col("movie_id", 459925, 4, true, 0, 0.5),
                          Col("info_type_id", 5, 4, true),
                          Col("info", 1380035, 10, false)}));
  catalog.AddTable(Table("movie_keyword", 4523930,
                         {Col("movie_id", 476794, 4, true, 0, 0.4),
                          Col("keyword_id", 134170, 4, true)}));
  catalog.AddTable(Table("cast_info", 36244344,
                         {Col("movie_id", 2331601, 4, true, 0, 0.3),
                          Col("person_id", 4051810, 4, true),
                          Col("role_id", 11, 4, true),
                          Col("note", 14000000, 20, false, 0.6)}));
  catalog.AddTable(Table("char_name", 3140339,
                         {Col("id", 3140339, 4, true, 0, 1.0),
                          Col("name", 3140000, 25, false)}));
  catalog.AddTable(Table("company_name", 234997,
                         {Col("id", 234997, 4, true, 0, 1.0),
                          Col("country_code", 225, 6, false, 0.1),
                          Col("name", 234997, 25, false)}));
  catalog.AddTable(Table("company_type", 4,
                         {Col("id", 4, 4, true, 0, 1.0),
                          Col("kind", 4, 20, false)}));
  catalog.AddTable(Table("info_type", 113,
                         {Col("id", 113, 4, true, 0, 1.0),
                          Col("info", 113, 15, false)}));
  catalog.AddTable(Table("keyword", 134170,
                         {Col("id", 134170, 4, true, 0, 1.0),
                          Col("keyword", 134170, 15, false)}));
  catalog.AddTable(Table("kind_type", 7,
                         {Col("id", 7, 4, true, 0, 1.0),
                          Col("kind", 7, 12, false)}));
  catalog.AddTable(Table("name", 4167491,
                         {Col("id", 4167491, 4, true, 0, 1.0),
                          Col("gender", 3, 1, false, 0.7),
                          Col("name", 4167491, 25, false)}));
  catalog.AddTable(Table("role_type", 12,
                         {Col("id", 12, 4, true, 0, 1.0),
                          Col("role", 12, 12, false)}));
  catalog.AddTable(Table("aka_name", 901343,
                         {Col("id", 901343, 4, true, 0, 1.0),
                          Col("person_id", 588222, 4, true),
                          Col("name", 901343, 25, false)}));
  catalog.AddTable(Table("aka_title", 361472,
                         {Col("id", 361472, 4, true, 0, 1.0),
                          Col("movie_id", 240672, 4, true),
                          Col("title", 361472, 30, false)}));
  catalog.AddTable(Table("comp_cast_type", 4,
                         {Col("id", 4, 4, true, 0, 1.0),
                          Col("kind", 4, 15, false)}));
  catalog.AddTable(Table("complete_cast", 135086,
                         {Col("id", 135086, 4, true, 0, 1.0),
                          Col("movie_id", 93514, 4, true),
                          Col("subject_id", 2, 4, true),
                          Col("status_id", 2, 4, true)}));
  catalog.AddTable(Table("link_type", 18,
                         {Col("id", 18, 4, true, 0, 1.0),
                          Col("link", 18, 15, false)}));
  catalog.AddTable(Table("movie_link", 29997,
                         {Col("id", 29997, 4, true, 0, 1.0),
                          Col("movie_id", 6411, 4, true),
                          Col("linked_movie_id", 15052, 4, true),
                          Col("link_type_id", 16, 4, true)}));
  catalog.AddTable(Table("person_info", 2963664,
                         {Col("id", 2963664, 4, true, 0, 1.0),
                          Col("person_id", 550721, 4, true),
                          Col("info_type_id", 22, 4, true)}));
  return catalog;
}

Catalog MakeSpatialCatalog(double region_scale) {
  const double rs = region_scale;
  Catalog catalog("spatial", rs, /*spatial=*/true);
  // Jackpine-style TIGER layers. Geometry columns are wide (serialized
  // multipolygon/linestring blobs) and poorly correlated; a GiST index is
  // modelled as `indexed` on the geom column.
  catalog.AddTable(Table("arealm", 60000 * rs,
                         {Col("gid", 60000 * rs, 4, true, 0, 1.0),
                          Col("geom", 60000 * rs, 900, true, 0, 0.05),
                          Col("fullname", 40000 * rs, 25, false, 0.2)}));
  catalog.AddTable(Table("areawater", 120000 * rs,
                         {Col("gid", 120000 * rs, 4, true, 0, 1.0),
                          Col("geom", 120000 * rs, 1100, true, 0, 0.05),
                          Col("hydroid", 120000 * rs, 10, false)}));
  catalog.AddTable(Table("edges", 2500000 * rs,
                         {Col("gid", 2500000 * rs, 4, true, 0, 1.0),
                          Col("geom", 2500000 * rs, 350, true, 0, 0.1),
                          Col("roadflg", 2, 1, false),
                          Col("mtfcc", 80, 5, false)}));
  catalog.AddTable(Table("pointlm", 45000 * rs,
                         {Col("gid", 45000 * rs, 4, true, 0, 1.0),
                          Col("geom", 45000 * rs, 32, true, 0, 0.1),
                          Col("mtfcc", 35, 5, false)}));
  catalog.AddTable(Table("county", 70,
                         {Col("gid", 70, 4, true, 0, 1.0),
                          Col("geom", 70, 20000, true, 0, 0.0),
                          Col("name", 70, 20, false)}));
  // OSM layers (overlap / distance / routing workload).
  catalog.AddTable(Table("osm_points", 1800000 * rs,
                         {Col("osm_id", 1800000 * rs, 8, true, 0, 1.0),
                          Col("geom", 1800000 * rs, 32, true, 0, 0.05),
                          Col("amenity", 130, 12, false, 0.8)}));
  catalog.AddTable(Table("osm_lines", 900000 * rs,
                         {Col("osm_id", 900000 * rs, 8, true, 0, 1.0),
                          Col("geom", 900000 * rs, 420, true, 0, 0.05),
                          Col("highway", 30, 10, false, 0.4)}));
  catalog.AddTable(Table("osm_polygons", 1200000 * rs,
                         {Col("osm_id", 1200000 * rs, 8, true, 0, 1.0),
                          Col("geom", 1200000 * rs, 800, true, 0, 0.05),
                          Col("building", 20, 10, false, 0.5)}));
  catalog.AddTable(Table("osm_roads", 150000 * rs,
                         {Col("osm_id", 150000 * rs, 8, true, 0, 1.0),
                          Col("geom", 150000 * rs, 500, true, 0, 0.05),
                          Col("ref", 9000 * rs, 8, false, 0.6)}));
  return catalog;
}

}  // namespace qpe::catalog
