#ifndef QPE_CATALOG_CATALOG_H_
#define QPE_CATALOG_CATALOG_H_

#include <string>
#include <vector>

namespace qpe::catalog {

// Per-column statistics, the analogue of pg_stats rows the paper reads from
// PostgreSQL system tables ("meta-information ... data distribution,
// selectivity, cardinality", §2.3).
struct ColumnStats {
  std::string name;
  double ndv = 1;          // number of distinct values
  double null_frac = 0;    // fraction of NULLs
  double avg_width = 4;    // bytes
  double correlation = 0;  // physical-order correlation in [-1, 1]
  bool indexed = false;
};

// Per-table statistics (pg_class analogue).
struct TableStats {
  std::string name;
  double row_count = 0;
  std::vector<ColumnStats> columns;

  // Bytes per row (sum of column widths plus tuple header).
  double RowWidth() const;
  // 8 KiB heap pages needed for the table.
  double PageCount() const;
  double TotalBytes() const { return row_count * RowWidth(); }

  const ColumnStats* FindColumn(const std::string& column_name) const;
  int IndexedColumnCount() const;
};

inline constexpr double kPageSizeBytes = 8192.0;

// A database catalog: schema + statistics for one benchmark instance.
class Catalog {
 public:
  Catalog() = default;
  Catalog(std::string name, double scale_factor, bool spatial = false)
      : name_(std::move(name)), scale_factor_(scale_factor), spatial_(spatial) {}

  const std::string& name() const { return name_; }
  double scale_factor() const { return scale_factor_; }
  // Spatial catalogs carry expensive geometry predicates and sparse,
  // hard-to-estimate distributions; the executor simulator reads this flag.
  bool spatial() const { return spatial_; }

  TableStats& AddTable(TableStats table);
  const std::vector<TableStats>& tables() const { return tables_; }
  const TableStats* FindTable(const std::string& table_name) const;

  double TotalPages() const;
  double TotalRows() const;

  // Meta-information feature vector for a set of relations (paper Table 4):
  // aggregated cardinality/page/width/index/distribution statistics for the
  // relations a plan node touches, plus database-level totals. Fixed
  // dimension kMetaFeatureDim; unknown relations contribute zeros.
  static constexpr int kMetaFeatureDim = 14;
  std::vector<double> MetaFeatures(
      const std::vector<std::string>& relations) const;

 private:
  std::string name_;
  double scale_factor_ = 1.0;
  bool spatial_ = false;
  std::vector<TableStats> tables_;
};

}  // namespace qpe::catalog

#endif  // QPE_CATALOG_CATALOG_H_
