#ifndef QPE_UTIL_FUZZ_H_
#define QPE_UTIL_FUZZ_H_

#include <string>

#include "util/rng.h"

namespace qpe::util {

// Deterministic byte-level mutator for robustness fuzzing. Given a seed
// corpus entry, applies `rounds` random edits drawn from the given Rng:
// bit flips, byte deletions/insertions, region duplication, truncation, and
// digit-run rewrites to hostile numerals ("nan", "inf", "1e309", "-1").
// The same (input, rng state, rounds) always yields the same output, so a
// failing iteration is reproducible from its seed alone.
std::string MutateBytes(std::string input, Rng* rng, int rounds);

// Reads QPE_FUZZ_ITERS from the environment (the verify script sets it to
// 10000 for the ASan sweep); returns `fallback` when unset or unparsable.
int FuzzIterationsFromEnv(int fallback);

}  // namespace qpe::util

#endif  // QPE_UTIL_FUZZ_H_
