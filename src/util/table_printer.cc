#include "util/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace qpe::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      // Quote cells containing separators.
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
      os << (c + 1 < header_.size() ? "," : "");
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace qpe::util
