#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace qpe::util {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<double>& targets) {
  if (predictions.empty() || predictions.size() != targets.size()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    sum += std::abs(predictions[i] - targets[i]);
  }
  return sum / static_cast<double>(predictions.size());
}

double RootMeanSquaredError(const std::vector<double>& predictions,
                            const std::vector<double>& targets) {
  if (predictions.empty() || predictions.size() != targets.size()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(predictions.size()));
}

double FractionWithinAbsoluteError(const std::vector<double>& predictions,
                                   const std::vector<double>& targets,
                                   double threshold) {
  if (predictions.empty() || predictions.size() != targets.size()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (std::abs(predictions[i] - targets[i]) <= threshold) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace qpe::util
