#ifndef QPE_UTIL_TABLE_PRINTER_H_
#define QPE_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace qpe::util {

// Minimal fixed-width table formatter used by the benchmark harnesses to
// print paper-style tables/series. Columns are sized to the widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  void Print(std::ostream& os) const;

  // Machine-readable rendering (for plotting the bench series).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qpe::util

#endif  // QPE_UTIL_TABLE_PRINTER_H_
