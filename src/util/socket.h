#ifndef QPE_UTIL_SOCKET_H_
#define QPE_UTIL_SOCKET_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace qpe::util {

// POSIX fd plumbing for the serving daemon: RAII descriptors, Unix-domain
// listen/connect, full-buffer IO with deterministic fault injection, and an
// async-signal-safe self-pipe for shutdown signals. Everything reports
// through Status; no exceptions, no third-party deps.

// Owning file descriptor. Closing is idempotent; moved-from handles are
// empty (-1).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Binds and listens on a Unix-domain stream socket at `path`. An existing
// socket file at `path` is unlinked first (the daemon owns its socket
// path), so a crashed predecessor's stale socket never blocks a restart.
StatusOr<UniqueFd> ListenUnix(const std::string& path, int backlog);

// Blocking connect to a Unix-domain socket.
StatusOr<UniqueFd> ConnectUnix(const std::string& path);

Status SetNonBlocking(int fd);

// Sends/receives exactly `size` bytes, retrying on EINTR and partial
// transfers. Fault sites (util/fault_injection.h):
//   "socket.write"       — the write fails with the injected IO error;
//   "socket.write.short" — the current chunk is truncated to one byte (the
//                          loop then continues), proving callers survive
//                          arbitrary kernel short writes deterministically;
//   "socket.read"        — the read fails with the injected IO error.
// ReadFull distinguishes clean EOF before any byte (kNotFound, so a peer
// hangup between frames is not an error) from EOF mid-buffer (kDataLoss).
Status WriteFull(int fd, const void* data, size_t size);
Status ReadFull(int fd, void* data, size_t size);

// Self-pipe for routing SIGTERM/SIGINT out of signal context. The handler
// side (Notify) performs a single write(2) on a pre-opened non-blocking
// descriptor — no allocation, no locking, async-signal-safe; a full pipe
// simply drops the byte (one pending notification is enough). The poll
// side watches read_fd() and calls Drain() when it becomes readable.
class SelfPipe {
 public:
  SelfPipe();
  ~SelfPipe() = default;

  SelfPipe(const SelfPipe&) = delete;
  SelfPipe& operator=(const SelfPipe&) = delete;

  bool valid() const { return read_fd_.valid() && write_fd_.valid(); }
  int read_fd() const { return read_fd_.get(); }

  // Async-signal-safe. Safe to call from any thread or signal handler.
  void Notify() const;

  // Consumes all pending notification bytes; returns true if there was at
  // least one.
  bool Drain() const;

 private:
  UniqueFd read_fd_;
  UniqueFd write_fd_;
};

// Installs a SIGTERM + SIGINT handler that does nothing but Notify(pipe).
// `pipe` must outlive the handlers (in practice: the daemon's lifetime).
// Returns the previously installed dispositions' validity via Status only;
// re-installation replaces the previous pipe.
Status InstallShutdownSignalHandler(const SelfPipe* pipe);

// Restores SIGTERM/SIGINT to SIG_DFL and forgets the pipe (tests).
void ResetShutdownSignalHandler();

}  // namespace qpe::util

#endif  // QPE_UTIL_SOCKET_H_
