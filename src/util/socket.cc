#include "util/socket.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/fault_injection.h"

namespace qpe::util {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

StatusOr<UniqueFd> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path '" + path + "' exceeds " +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                " bytes");
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return IoError(Errno("socket(AF_UNIX)"));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // a stale socket file from a crashed predecessor
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return IoError(Errno(("bind('" + path + "')").c_str()));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return IoError(Errno(("listen('" + path + "')").c_str()));
  }
  return fd;
}

StatusOr<UniqueFd> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path '" + path + "' exceeds " +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                " bytes");
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return IoError(Errno("socket(AF_UNIX)"));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return IoError(Errno(("connect('" + path + "')").c_str()));
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return IoError(Errno("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return IoError(Errno("fcntl(F_SETFL, O_NONBLOCK)"));
  }
  return OkStatus();
}

Status WriteFull(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
    if (Status s = InjectFault("socket.write"); !s.ok()) return s;
    size_t chunk = left;
    // Deterministic short-write chaos: the armed call shrinks this chunk
    // to a single byte instead of failing, so the retry loop itself is
    // exercised byte by byte.
    if (!InjectFault("socket.write.short").ok()) chunk = 1;
    const ssize_t n = ::send(fd, p, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(Errno("send"));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return OkStatus();
}

Status ReadFull(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    if (Status s = InjectFault("socket.read"); !s.ok()) return s;
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(Errno("recv"));
    }
    if (n == 0) {
      if (got == 0) return NotFoundError("peer closed the connection");
      return DataLossError("peer closed mid-message after " +
                           std::to_string(got) + " of " +
                           std::to_string(size) + " byte(s)");
    }
    got += static_cast<size_t>(n);
  }
  return OkStatus();
}

SelfPipe::SelfPipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return;
  read_fd_.Reset(fds[0]);
  write_fd_.Reset(fds[1]);
  // Both ends non-blocking: Notify from a signal handler must never block
  // on a full pipe, and Drain must never block on an empty one.
  (void)SetNonBlocking(read_fd_.get());
  (void)SetNonBlocking(write_fd_.get());
}

void SelfPipe::Notify() const {
  // Single syscall on a pre-opened fd: async-signal-safe by POSIX. EAGAIN
  // (pipe full) is fine — a notification is already pending.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(write_fd_.get(), &byte, 1);
}

bool SelfPipe::Drain() const {
  char buf[64];
  bool any = false;
  while (::read(read_fd_.get(), buf, sizeof(buf)) > 0) any = true;
  return any;
}

namespace {

// The handler reads a single pointer-sized value; sig_atomic_ cannot hold a
// pointer portably, so rely on the store happening before the handler is
// installed (InstallShutdownSignalHandler sequences it) and the pointer
// staying valid for the daemon's lifetime.
const SelfPipe* volatile g_shutdown_pipe = nullptr;

void ShutdownHandler(int /*signum*/) {
  // No allocation, no locking, no stdio: one write(2) on a pre-opened fd.
  const SelfPipe* pipe = g_shutdown_pipe;
  if (pipe != nullptr) pipe->Notify();
}

}  // namespace

Status InstallShutdownSignalHandler(const SelfPipe* pipe) {
  if (pipe == nullptr || !pipe->valid()) {
    return InvalidArgumentError("shutdown signal handler needs a live pipe");
  }
  g_shutdown_pipe = pipe;  // published before the handler can fire
  struct sigaction sa{};
  sa.sa_handler = &ShutdownHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (::sigaction(SIGTERM, &sa, nullptr) != 0 ||
      ::sigaction(SIGINT, &sa, nullptr) != 0) {
    return IoError(Errno("sigaction"));
  }
  return OkStatus();
}

void ResetShutdownSignalHandler() {
  struct sigaction sa{};
  sa.sa_handler = SIG_DFL;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  g_shutdown_pipe = nullptr;
}

}  // namespace qpe::util
