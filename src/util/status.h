#ifndef QPE_UTIL_STATUS_H_
#define QPE_UTIL_STATUS_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace qpe::util {

// Lightweight error propagation for IO and serialization paths. A Status is
// either OK or an (code, message) pair where the message carries the
// diagnostic a caller needs to act — which line, tensor, or byte offset
// failed — instead of the seed code's indistinguishable `false` / empty
// vector. StatusOr<T> bundles a Status with a value for parse-style APIs.

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed something unusable
  kNotFound,           // missing file / missing key
  kDataLoss,           // corruption detected (CRC, truncation, bad magic)
  kFailedPrecondition, // state does not admit the operation (shape mismatch)
  kIo,                 // read/write/rename/flush failure
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: checkpoint payload CRC mismatch ..." (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status IoError(std::string message) {
  return Status(StatusCode::kIo, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

// Minimal StatusOr: holds a value iff status().ok(). value() on a non-OK
// StatusOr asserts in debug builds and returns a default-constructed T
// reference otherwise, so misuse is loud in tests without exceptions.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return value_;
  }
  const T& value() const {
    assert(ok());
    return value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  T value_{};
};

// Recoverable-warning channel: the middle ground between a hard Status and
// silence. Lenient parsers/ingestors push one formatted entry per defect
// they repaired; the log caps its size so a pathological input (a fuzzed
// 10k-line EXPLAIN where every line is broken) cannot balloon memory — the
// overflow is counted, not stored.
class WarningLog {
 public:
  WarningLog() = default;
  explicit WarningLog(size_t capacity) : capacity_(capacity) {}

  void Add(std::string message) {
    ++total_;
    if (entries_.size() < capacity_) entries_.push_back(std::move(message));
  }

  bool empty() const { return total_ == 0; }
  // Warnings raised, including any dropped past the capacity.
  size_t total() const { return total_; }
  size_t dropped() const { return total_ - entries_.size(); }
  const std::vector<std::string>& entries() const { return entries_; }

  // One warning per line; notes the dropped count when the log overflowed.
  std::string ToString() const;

 private:
  size_t capacity_ = 64;
  size_t total_ = 0;
  std::vector<std::string> entries_;
};

}  // namespace qpe::util

#endif  // QPE_UTIL_STATUS_H_
