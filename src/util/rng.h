#ifndef QPE_UTIL_RNG_H_
#define QPE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace qpe::util {

// Complete serializable snapshot of an Rng stream, including the Box-Muller
// cache so a restored stream replays *exactly* — checkpoint/resume of a
// training run depends on this being bit-faithful.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

// Deterministic, seedable pseudo-random number generator (xoshiro256**).
// Every stochastic component in the library takes an explicit Rng (or a
// seed) so that datasets, plans, and training runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller.
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Lognormal multiplicative noise factor: exp(Normal(0, sigma)).
  double LognormalFactor(double sigma);

  // True with probability p.
  bool Bernoulli(double p);

  // Zipf-like skew sample in [0, n): index i with weight 1/(i+1)^theta.
  int64_t Zipf(int64_t n, double theta);

  // Samples an index according to non-negative weights (need not sum to 1).
  int Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<int> Permutation(int n);

  // Forks an independent stream seeded from this one (stable given call
  // order). Useful for giving each subsystem its own stream.
  Rng Fork();

  // Snapshot / restore of the full generator state (for checkpointing).
  RngState GetState() const;
  void SetState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qpe::util

#endif  // QPE_UTIL_RNG_H_
