#ifndef QPE_UTIL_CHECKSUM_H_
#define QPE_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qpe::util {

// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant). Guards checkpoint
// payloads against silent corruption: a single bit flip anywhere in the
// payload changes the checksum. Incremental use: pass the previous result
// as `seed` to extend a running checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace qpe::util

#endif  // QPE_UTIL_CHECKSUM_H_
