#include "util/status.h"

namespace qpe::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIo:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::string WarningLog::ToString() const {
  std::string out;
  for (const std::string& entry : entries_) {
    out += entry;
    out += '\n';
  }
  if (dropped() > 0) {
    out += "... and " + std::to_string(dropped()) + " more warning(s)\n";
  }
  return out;
}

}  // namespace qpe::util
