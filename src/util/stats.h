#ifndef QPE_UTIL_STATS_H_
#define QPE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace qpe::util {

// Descriptive statistics and error metrics used by the training loops and
// the benchmark harnesses. All functions tolerate empty input by returning 0.

double Mean(const std::vector<double>& values);
double Median(std::vector<double> values);
double StdDev(const std::vector<double>& values);

// Linear-interpolated percentile; p in [0, 100].
double Percentile(std::vector<double> values, double p);

// Mean absolute error between predictions and targets (sizes must match).
double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<double>& targets);

// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& predictions,
                            const std::vector<double>& targets);

// Fraction of predictions whose absolute error is below `threshold`.
double FractionWithinAbsoluteError(const std::vector<double>& predictions,
                                   const std::vector<double>& targets,
                                   double threshold);

// Pearson correlation coefficient; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace qpe::util

#endif  // QPE_UTIL_STATS_H_
