#include "util/fuzz.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iterator>
#include <string>

namespace qpe::util {

namespace {

// Hostile replacements for a run of digits: non-finite spellings, overflow,
// and sign flips — exactly the corruptions a numeric parser must survive.
const char* const kHostileNumbers[] = {
    "nan", "inf", "-inf", "1e309", "-1", "99999999999999999999", "0x7f", "",
};

void RewriteDigitRun(std::string* s, Rng* rng) {
  // Find a random digit and expand to the full run around it.
  if (s->empty()) return;
  const size_t start = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(s->size()) - 1));
  size_t i = start;
  while (i < s->size() && !std::isdigit(static_cast<unsigned char>((*s)[i]))) {
    ++i;
  }
  if (i == s->size()) return;
  size_t lo = i;
  size_t hi = i;
  while (lo > 0 && std::isdigit(static_cast<unsigned char>((*s)[lo - 1]))) {
    --lo;
  }
  while (hi < s->size() &&
         std::isdigit(static_cast<unsigned char>((*s)[hi]))) {
    ++hi;
  }
  const int pick = static_cast<int>(rng->UniformInt(
      0, static_cast<int64_t>(std::size(kHostileNumbers)) - 1));
  s->replace(lo, hi - lo, kHostileNumbers[pick]);
}

}  // namespace

std::string MutateBytes(std::string input, Rng* rng, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    const int op = static_cast<int>(rng->UniformInt(0, 5));
    const size_t n = input.size();
    switch (op) {
      case 0: {  // bit flip
        if (n == 0) break;
        const size_t i =
            static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        input[i] = static_cast<char>(input[i] ^ (1 << rng->UniformInt(0, 7)));
        break;
      }
      case 1: {  // delete a byte
        if (n == 0) break;
        input.erase(
            static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1)),
            1);
        break;
      }
      case 2: {  // insert a random byte (biased toward structure characters)
        static const char kChars[] = " \n\t->()=.0:x\xff";
        const size_t i =
            static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n)));
        const char c = kChars[rng->UniformInt(
            0, static_cast<int64_t>(sizeof(kChars)) - 2)];
        input.insert(i, 1, c);
        break;
      }
      case 3: {  // duplicate a region (lines included — fake extra nodes)
        if (n == 0) break;
        const size_t i =
            static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        const size_t len = static_cast<size_t>(
            rng->UniformInt(1, std::min<int64_t>(64, static_cast<int64_t>(n - i))));
        input.insert(i, input.substr(i, len));
        break;
      }
      case 4: {  // truncate the tail
        if (n == 0) break;
        input.resize(
            static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1)));
        break;
      }
      default:
        RewriteDigitRun(&input, rng);
        break;
    }
  }
  return input;
}

int FuzzIterationsFromEnv(int fallback) {
  const char* env = std::getenv("QPE_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v <= 0) return fallback;
  return static_cast<int>(v);
}

}  // namespace qpe::util
