#ifndef QPE_UTIL_THREAD_POOL_H_
#define QPE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qpe::util {

// Fixed-size thread pool (no work stealing): Run() hands tasks 0..n-1 to a
// set of persistent workers plus the calling thread and blocks until every
// task finished. Tasks must be independent; the library's determinism
// contract is that each task writes only its own disjoint outputs and any
// cross-task reduction happens afterwards in task-index order on the
// caller, so results never depend on how tasks were scheduled.
class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the caller is the remaining thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes fn(i) once for every i in [0, num_tasks); returns when all
  // calls completed. Concurrent Run() calls are serialized; a Run() from
  // inside a pool task executes inline on the calling thread.
  void Run(int num_tasks, const std::function<void(int)>& fn);

 private:
  // One batch of tasks. Heap-allocated and shared so that a worker waking
  // up late holds the batch it saw alive and can never observe a half
  // reinitialized successor.
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int num_tasks = 0;
    std::atomic<int> next{0};
    std::atomic<int> pending{0};
  };

  void WorkerLoop();
  void Drain(Job* job);

  std::vector<std::thread> workers_;
  std::mutex run_mu_;  // serializes concurrent Run() callers

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // guarded by mu_
  uint64_t generation_ = 0;   // guarded by mu_
  bool stop_ = false;         // guarded by mu_
};

// --- Global threading knobs ------------------------------------------------
//
// All parallel paths in the library draw threads from one process-global
// pool sized by MaxThreads(). The default is QPE_THREADS from the
// environment, else std::thread::hardware_concurrency(); set it to 1 to run
// everything inline (results are identical either way — see the determinism
// contract above — but 1 also removes the pool from stack traces).

// Current configured thread count (always >= 1).
int MaxThreads();

// Sets the thread count; n < 1 resets to the default. Recreates the global
// pool, so call it from the main thread between parallel regions only.
void SetMaxThreads(int n);

// True while the current thread is executing a pool task; nested parallel
// calls run inline in that case.
bool InParallelRegion();

// Runs fn(i) for i in [0, num_tasks) on the global pool (inline when
// MaxThreads() == 1, num_tasks == 1, or already inside a pool task).
void ParallelRun(int num_tasks, const std::function<void(int)>& fn);

// Splits [0, n) into contiguous chunks of at least `grain` items and runs
// body(begin, end) for each chunk via ParallelRun.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace qpe::util

#endif  // QPE_UTIL_THREAD_POOL_H_
