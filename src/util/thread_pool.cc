#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace qpe::util {

namespace {

thread_local bool tl_in_pool_task = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(0, num_threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || tl_in_pool_task) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tasks = num_tasks;
  job->pending.store(num_tasks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  Drain(job.get());
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job->pending.load(std::memory_order_acquire) == 0;
  });
  job_.reset();
}

void ThreadPool::Drain(Job* job) {
  tl_in_pool_task = true;
  while (true) {
    const int i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->num_tasks) break;
    (*job->fn)(i);
    if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
  tl_in_pool_task = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    if (job) Drain(job.get());
  }
}

// --- Global pool -----------------------------------------------------------

namespace {

int DefaultThreads() {
  if (const char* env = std::getenv("QPE_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int g_max_threads = 0;  // 0 = not yet initialized
std::unique_ptr<ThreadPool> g_pool;

ThreadPool& GlobalPool() {
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(MaxThreads());
  return *g_pool;
}

}  // namespace

int MaxThreads() {
  if (g_max_threads == 0) g_max_threads = DefaultThreads();
  return g_max_threads;
}

void SetMaxThreads(int n) {
  g_pool.reset();
  g_max_threads = n >= 1 ? n : DefaultThreads();
}

bool InParallelRegion() { return tl_in_pool_task; }

void ParallelRun(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (num_tasks == 1 || MaxThreads() == 1 || tl_in_pool_task) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  GlobalPool().Run(num_tasks, fn);
}

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  // Over-partition relative to the thread count so uneven tasks balance.
  const int64_t target_chunks = static_cast<int64_t>(MaxThreads()) * 4;
  const int64_t chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  const int num_chunks = static_cast<int>((n + chunk - 1) / chunk);
  if (num_chunks <= 1) {
    body(0, n);
    return;
  }
  ParallelRun(num_chunks, [&](int c) {
    const int64_t begin = static_cast<int64_t>(c) * chunk;
    body(begin, std::min(n, begin + chunk));
  });
}

}  // namespace qpe::util
