#include "util/fault_injection.h"

#include <cstdlib>

namespace qpe::util {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* const kInstance = new FaultInjector();
  return *kInstance;
}

FaultInjector::FaultInjector() {
  // QPE_FAULT="pattern:N" arms one fault for the whole process, so scripts
  // can exercise IO degradation without recompiling.
  const char* env = std::getenv("QPE_FAULT");
  if (env == nullptr) return;
  const std::string spec(env);
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return;
  const int nth = std::atoi(spec.c_str() + colon + 1);
  if (nth > 0) {
    pattern_ = spec.substr(0, colon);
    nth_ = nth;
  }
}

void FaultInjector::Arm(std::string pattern, int nth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nth <= 0) {
    pattern_.clear();
    nth_ = 0;
  } else {
    pattern_ = std::move(pattern);
    nth_ = nth;
  }
  count_ = 0;
}

void FaultInjector::Disarm() { Arm("", 0); }

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nth_ > 0;
}

int FaultInjector::matching_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

Status FaultInjector::Inject(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nth_ <= 0) return OkStatus();
  if (site.find(pattern_) == std::string_view::npos) return OkStatus();
  ++count_;
  if (count_ != nth_) return OkStatus();
  return IoError("injected fault at site '" + std::string(site) + "' (call " +
                 std::to_string(count_) + ")");
}

ScopedFaultInjection::ScopedFaultInjection(std::string pattern, int nth) {
  FaultInjector::Instance().Arm(std::move(pattern), nth);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Instance().Disarm();
}

}  // namespace qpe::util
