#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace qpe::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LognormalFactor(double sigma) { return std::exp(Normal(0.0, sigma)); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over the (unnormalized) weights 1/(i+1)^theta.
  // For the modest n used in catalogs this linear scan is fine.
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) total += 1.0 / std::pow(i + 1, theta);
  double u = Uniform() * total;
  for (int64_t i = 0; i < n; ++i) {
    u -= 1.0 / std::pow(i + 1, theta);
    if (u <= 0) return i;
  }
  return n - 1;
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(UniformInt(0, i));
    std::swap(p[i], p[j]);
  }
  return p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace qpe::util
