#ifndef QPE_UTIL_FAULT_INJECTION_H_
#define QPE_UTIL_FAULT_INJECTION_H_

#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace qpe::util {

// Deterministic fault injection for IO paths. Every stream / filesystem
// operation in the serialization stack declares a *site* (a stable dotted
// name such as "checkpoint.write" or "dataset.load.open") and calls
// InjectFault(site) before doing the real work. When a fault is armed for a
// pattern and call index N, the Nth call whose site contains the pattern
// returns an IO error — so tests can walk a failure through every byte of
// an IO path and assert that degradation is clean (no partial mutation, no
// leaked temp files, descriptive Status).
//
// Arming:
//   - in-process: ScopedFaultInjection guard(pattern, nth)   (tests)
//   - externally: QPE_FAULT="pattern:N" in the environment   (scripts),
//     read once at first use.
//
// Disarmed (the default), InjectFault is a cheap always-OK call.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms a single fault: the `nth` (1-based) call to InjectFault whose site
  // contains `pattern` fails. nth <= 0 disarms. Resets the call counter.
  void Arm(std::string pattern, int nth);
  void Disarm();
  bool armed() const;

  // Number of calls that matched the armed pattern so far (for tests that
  // sweep nth until a path stops failing).
  int matching_calls() const;

  Status Inject(std::string_view site);

 private:
  FaultInjector();

  mutable std::mutex mu_;
  std::string pattern_;
  int nth_ = 0;
  int count_ = 0;
};

// Convenience entry point used by IO code.
inline Status InjectFault(std::string_view site) {
  return FaultInjector::Instance().Inject(site);
}

// RAII arming for tests; disarms (and resets the counter) on destruction.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::string pattern, int nth);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace qpe::util

#endif  // QPE_UTIL_FAULT_INJECTION_H_
