#include "data/dataset_io.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "plan/serialize.h"
#include "util/fault_injection.h"

namespace qpe::data {

namespace {

util::Status MalformedRecord(const std::string& path, size_t line_number,
                             const std::string& reason) {
  return util::DataLossError(path + " line " + std::to_string(line_number) +
                             ": " + reason);
}

}  // namespace

util::Status SaveExecutedQueriesStatus(
    const std::vector<simdb::ExecutedQuery>& records, const std::string& path) {
  if (util::Status s = util::InjectFault("dataset.save.open"); !s.ok()) {
    return s;
  }
  std::ofstream os(path);
  if (!os) return util::IoError("cannot open '" + path + "' for writing");
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (size_t i = 0; i < records.size(); ++i) {
    const simdb::ExecutedQuery& record = records[i];
    if (util::Status s = util::InjectFault("dataset.save.write"); !s.ok()) {
      return s;
    }
    os << "(record :latency " << record.latency_ms << " :template "
       << record.template_index << " :instance " << record.instance_index
       << " :config ";
    const auto& values = record.db_config.values();
    for (size_t k = 0; k < values.size(); ++k) {
      os << values[k] << (k + 1 < values.size() ? "," : "");
    }
    os << " " << plan::SerializePlan(record.query) << ")\n";
    if (!os) {
      return util::IoError("write to '" + path + "' failed at record " +
                           std::to_string(i + 1));
    }
  }
  os.flush();
  if (!os) return util::IoError("flush of '" + path + "' failed");
  return util::OkStatus();
}

util::StatusOr<std::vector<simdb::ExecutedQuery>> LoadExecutedQueriesChecked(
    const std::string& path) {
  if (util::Status s = util::InjectFault("dataset.load.open"); !s.ok()) {
    return s;
  }
  std::vector<simdb::ExecutedQuery> records;
  std::ifstream is(path);
  if (!is) return util::NotFoundError("cannot open '" + path + "'");
  std::string line;
  size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::string prefix = "(record :latency ";
    if (line.compare(0, prefix.size(), prefix) != 0) {
      return MalformedRecord(path, line_number,
                             "line does not start with '(record :latency '");
    }
    size_t pos = prefix.size();
    simdb::ExecutedQuery record;
    record.latency_ms = std::strtod(line.c_str() + pos, nullptr);

    auto expect = [&](const std::string& token) {
      pos = line.find(token, pos);
      if (pos == std::string::npos) return false;
      pos += token.size();
      return true;
    };
    if (!expect(":template ")) {
      return MalformedRecord(path, line_number, "missing ':template' token");
    }
    record.template_index = std::atoi(line.c_str() + pos);
    if (!expect(":instance ")) {
      return MalformedRecord(path, line_number, "missing ':instance' token");
    }
    record.instance_index = std::atoi(line.c_str() + pos);
    if (!expect(":config ")) {
      return MalformedRecord(path, line_number, "missing ':config' token");
    }
    for (int k = 0; k < config::kNumKnobs; ++k) {
      char* end = nullptr;
      record.db_config.Set(static_cast<config::Knob>(k),
                           std::strtod(line.c_str() + pos, &end));
      pos = end - line.c_str();
      if (k + 1 < config::kNumKnobs) {
        if (pos >= line.size() || line[pos] != ',') {
          return MalformedRecord(
              path, line_number,
              "config has " + std::to_string(k + 1) + " value(s), expected " +
                  std::to_string(config::kNumKnobs));
        }
        ++pos;
      }
    }
    const size_t plan_start = line.find("(plan", pos);
    if (plan_start == std::string::npos) {
      return MalformedRecord(path, line_number, "missing '(plan' section");
    }
    // The record's closing paren is the last character of the line.
    const std::string plan_text =
        line.substr(plan_start, line.size() - plan_start - 1);
    auto parsed = plan::ParsePlanChecked(plan_text);
    if (!parsed.ok()) {
      return MalformedRecord(path, line_number, parsed.status().message());
    }
    record.query = std::move(parsed.value());
    records.push_back(std::move(record));
  }
  if (is.bad()) return util::IoError("read of '" + path + "' failed");
  return records;
}

bool SaveExecutedQueries(const std::vector<simdb::ExecutedQuery>& records,
                         const std::string& path) {
  return SaveExecutedQueriesStatus(records, path).ok();
}

std::vector<simdb::ExecutedQuery> LoadExecutedQueries(const std::string& path,
                                                      bool* ok) {
  auto result = LoadExecutedQueriesChecked(path);
  if (ok != nullptr) *ok = result.ok();
  if (!result.ok()) return {};
  return std::move(result.value());
}

}  // namespace qpe::data
