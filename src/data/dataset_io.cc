#include "data/dataset_io.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "plan/serialize.h"

namespace qpe::data {

bool SaveExecutedQueries(const std::vector<simdb::ExecutedQuery>& records,
                         const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const simdb::ExecutedQuery& record : records) {
    os << "(record :latency " << record.latency_ms << " :template "
       << record.template_index << " :instance " << record.instance_index
       << " :config ";
    const auto& values = record.db_config.values();
    for (size_t i = 0; i < values.size(); ++i) {
      os << values[i] << (i + 1 < values.size() ? "," : "");
    }
    os << " " << plan::SerializePlan(record.query) << ")\n";
  }
  return static_cast<bool>(os);
}

std::vector<simdb::ExecutedQuery> LoadExecutedQueries(const std::string& path,
                                                      bool* ok) {
  if (ok != nullptr) *ok = false;
  std::vector<simdb::ExecutedQuery> records;
  std::ifstream is(path);
  if (!is) return records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::string prefix = "(record :latency ";
    if (line.compare(0, prefix.size(), prefix) != 0) return {};
    size_t pos = prefix.size();
    simdb::ExecutedQuery record;
    record.latency_ms = std::strtod(line.c_str() + pos, nullptr);

    auto expect = [&](const std::string& token) {
      pos = line.find(token, pos);
      if (pos == std::string::npos) return false;
      pos += token.size();
      return true;
    };
    if (!expect(":template ")) return {};
    record.template_index = std::atoi(line.c_str() + pos);
    if (!expect(":instance ")) return {};
    record.instance_index = std::atoi(line.c_str() + pos);
    if (!expect(":config ")) return {};
    for (int k = 0; k < config::kNumKnobs; ++k) {
      char* end = nullptr;
      record.db_config.Set(static_cast<config::Knob>(k),
                           std::strtod(line.c_str() + pos, &end));
      pos = end - line.c_str();
      if (k + 1 < config::kNumKnobs) {
        if (line[pos] != ',') return {};
        ++pos;
      }
    }
    const size_t plan_start = line.find("(plan", pos);
    if (plan_start == std::string::npos) return {};
    // The record's closing paren is the last character of the line.
    const std::string plan_text =
        line.substr(plan_start, line.size() - plan_start - 1);
    auto parsed = plan::ParsePlan(plan_text);
    if (!parsed.has_value()) return {};
    record.query = std::move(*parsed);
    records.push_back(std::move(record));
  }
  if (ok != nullptr) *ok = true;
  return records;
}

}  // namespace qpe::data
