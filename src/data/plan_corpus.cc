#include "data/plan_corpus.h"

#include <string>
#include <vector>

namespace qpe::data {

namespace {

using plan::OperatorType;
using plan::PlanNode;

OperatorType Op(const char* token) { return OperatorType::Parse(token); }

const std::vector<OperatorType>& ScanPool() {
  static const std::vector<OperatorType>* const kPool =
      new std::vector<OperatorType>{
          Op("Scan-Seq"),          Op("Scan-Index"),
          Op("Scan-IndexOnly"),    Op("Scan-Heap-Bitmap"),
          Op("Scan-Index-Bitmap"), Op("Scan-CTE"),
          Op("Scan-Subquery"),     Op("Scan-Foreign"),
          Op("Scan-Table"),        Op("Scan-Seq-Parallel"),
      };
  return *kPool;
}

const std::vector<OperatorType>& JoinPool() {
  static const std::vector<OperatorType>* const kPool =
      new std::vector<OperatorType>{
          Op("Join-Hash"),        Op("Join-Merge"),      Op("Loop-Nested"),
          Op("Join-Hash-Left"),   Op("Join-Merge-Left"), Op("Join-Hash-Semi"),
          Op("Join-Hash-Anti"),   Op("Join-Merge-Full"), Op("Join-Hash-Right"),
      };
  return *kPool;
}

const std::vector<OperatorType>& UnaryPool() {
  static const std::vector<OperatorType>* const kPool =
      new std::vector<OperatorType>{
          Op("Sort"),           Op("Aggregate"),       Op("Aggregate-Hash"),
          Op("GroupAggregate"), Op("Limit"),           Op("Materialize"),
          Op("Unique"),         Op("Hash"),            Op("Gather"),
          Op("Filter"),         Op("WindowAgg"),       Op("Result"),
          Op("Sort-Partial"),   Op("Append"),
      };
  return *kPool;
}

}  // namespace

OperatorType RandomPlanGenerator::RandomScanType() {
  return ScanPool()[rng_.UniformInt(0, ScanPool().size() - 1)];
}
OperatorType RandomPlanGenerator::RandomJoinType() {
  return JoinPool()[rng_.UniformInt(0, JoinPool().size() - 1)];
}
OperatorType RandomPlanGenerator::RandomUnaryType() {
  return UnaryPool()[rng_.UniformInt(0, UnaryPool().size() - 1)];
}

std::unique_ptr<PlanNode> RandomPlanGenerator::GenerateSubtree(int depth,
                                                               int* budget) {
  if (*budget <= 1 || (depth > 2 && !rng_.Bernoulli(options_.join_growth))) {
    *budget -= 1;
    return std::make_unique<PlanNode>(RandomScanType());
  }
  // Occasionally wrap in a unary operator.
  if (rng_.Bernoulli(0.3) && *budget >= 3) {
    *budget -= 1;
    auto unary = std::make_unique<PlanNode>(RandomUnaryType());
    unary->AddChild(GenerateSubtree(depth + 1, budget));
    return unary;
  }
  *budget -= 1;
  auto join = std::make_unique<PlanNode>(RandomJoinType());
  join->AddChild(GenerateSubtree(depth + 1, budget));
  join->AddChild(GenerateSubtree(depth + 1, budget));
  return join;
}

std::unique_ptr<PlanNode> RandomPlanGenerator::Generate() {
  while (true) {
    int budget = static_cast<int>(
        rng_.UniformInt(options_.min_nodes, options_.max_nodes));
    auto root = std::make_unique<PlanNode>(RandomUnaryType());
    root->AddChild(GenerateSubtree(1, &budget));
    const int nodes = root->NumNodes();
    if (nodes >= options_.min_nodes && nodes <= options_.max_nodes) {
      return root;
    }
  }
}

std::unique_ptr<PlanNode> RandomPlanGenerator::Mutate(const PlanNode& original,
                                                      double mutation_rate) {
  auto copy = original.Clone();
  copy->VisitMutable([&](PlanNode* node) {
    if (!rng_.Bernoulli(mutation_rate)) return;
    // Relabel within the same arity class so the tree stays grammatical.
    if (node->children().size() >= 2) {
      node->set_type(RandomJoinType());
    } else if (node->children().size() == 1) {
      node->set_type(RandomUnaryType());
    } else {
      node->set_type(RandomScanType());
    }
  });
  return copy;
}

}  // namespace qpe::data
