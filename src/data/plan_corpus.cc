#include "data/plan_corpus.h"

#include <cstdint>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "plan/explain_parser.h"

namespace qpe::data {

namespace {

using plan::OperatorType;
using plan::PlanNode;

OperatorType Op(const char* token) { return OperatorType::Parse(token); }

const std::vector<OperatorType>& ScanPool() {
  static const std::vector<OperatorType>* const kPool =
      new std::vector<OperatorType>{
          Op("Scan-Seq"),          Op("Scan-Index"),
          Op("Scan-IndexOnly"),    Op("Scan-Heap-Bitmap"),
          Op("Scan-Index-Bitmap"), Op("Scan-CTE"),
          Op("Scan-Subquery"),     Op("Scan-Foreign"),
          Op("Scan-Table"),        Op("Scan-Seq-Parallel"),
      };
  return *kPool;
}

const std::vector<OperatorType>& JoinPool() {
  static const std::vector<OperatorType>* const kPool =
      new std::vector<OperatorType>{
          Op("Join-Hash"),        Op("Join-Merge"),      Op("Loop-Nested"),
          Op("Join-Hash-Left"),   Op("Join-Merge-Left"), Op("Join-Hash-Semi"),
          Op("Join-Hash-Anti"),   Op("Join-Merge-Full"), Op("Join-Hash-Right"),
      };
  return *kPool;
}

const std::vector<OperatorType>& UnaryPool() {
  static const std::vector<OperatorType>* const kPool =
      new std::vector<OperatorType>{
          Op("Sort"),           Op("Aggregate"),       Op("Aggregate-Hash"),
          Op("GroupAggregate"), Op("Limit"),           Op("Materialize"),
          Op("Unique"),         Op("Hash"),            Op("Gather"),
          Op("Filter"),         Op("WindowAgg"),       Op("Result"),
          Op("Sort-Partial"),   Op("Append"),
      };
  return *kPool;
}

}  // namespace

OperatorType RandomPlanGenerator::RandomScanType() {
  return ScanPool()[rng_.UniformInt(0, ScanPool().size() - 1)];
}
OperatorType RandomPlanGenerator::RandomJoinType() {
  return JoinPool()[rng_.UniformInt(0, JoinPool().size() - 1)];
}
OperatorType RandomPlanGenerator::RandomUnaryType() {
  return UnaryPool()[rng_.UniformInt(0, UnaryPool().size() - 1)];
}

std::unique_ptr<PlanNode> RandomPlanGenerator::GenerateSubtree(int depth,
                                                               int* budget) {
  if (*budget <= 1 || (depth > 2 && !rng_.Bernoulli(options_.join_growth))) {
    *budget -= 1;
    return std::make_unique<PlanNode>(RandomScanType());
  }
  // Occasionally wrap in a unary operator.
  if (rng_.Bernoulli(0.3) && *budget >= 3) {
    *budget -= 1;
    auto unary = std::make_unique<PlanNode>(RandomUnaryType());
    unary->AddChild(GenerateSubtree(depth + 1, budget));
    return unary;
  }
  *budget -= 1;
  auto join = std::make_unique<PlanNode>(RandomJoinType());
  join->AddChild(GenerateSubtree(depth + 1, budget));
  join->AddChild(GenerateSubtree(depth + 1, budget));
  return join;
}

std::unique_ptr<PlanNode> RandomPlanGenerator::Generate() {
  while (true) {
    int budget = static_cast<int>(
        rng_.UniformInt(options_.min_nodes, options_.max_nodes));
    auto root = std::make_unique<PlanNode>(RandomUnaryType());
    root->AddChild(GenerateSubtree(1, &budget));
    const int nodes = root->NumNodes();
    if (nodes >= options_.min_nodes && nodes <= options_.max_nodes) {
      return root;
    }
  }
}

std::unique_ptr<PlanNode> RandomPlanGenerator::Mutate(const PlanNode& original,
                                                      double mutation_rate) {
  auto copy = original.Clone();
  copy->VisitMutable([&](PlanNode* node) {
    if (!rng_.Bernoulli(mutation_rate)) return;
    // Relabel within the same arity class so the tree stays grammatical.
    if (node->children().size() >= 2) {
      node->set_type(RandomJoinType());
    } else if (node->children().size() == 1) {
      node->set_type(RandomUnaryType());
    } else {
      node->set_type(RandomScanType());
    }
  });
  return copy;
}

// --- Foreign-plan ingestion -------------------------------------------------

util::StatusOr<IngestedPlan> IngestExplainText(
    const std::string& text, plan::IngestionPolicy policy,
    const plan::SanitizeLimits& limits) {
  plan::ParseExplainOptions options;
  options.policy = policy;
  util::StatusOr<plan::ParsedExplain> parsed = plan::ParseExplain(text, options);
  if (!parsed.ok()) return parsed.status();

  IngestedPlan out;
  out.plan.root = std::move(parsed->root);
  out.plan.benchmark = "foreign";
  out.stats = parsed->stats;
  out.warnings = std::move(parsed->warnings);
  if (policy == plan::IngestionPolicy::kStrict) {
    const util::Status valid = plan::ValidatePlan(*out.plan.root, limits);
    if (!valid.ok()) return valid;
  } else {
    plan::IngestionStats repairs = plan::SanitizePlan(out.plan.root.get(), limits);
    repairs.nodes = 0;  // the parser already counted the nodes
    out.stats.Merge(repairs);
  }
  return out;
}

util::StatusOr<IngestedPlan> IngestExplainFile(
    const std::string& path, plan::IngestionPolicy policy,
    const plan::SanitizeLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return util::NotFoundError("cannot open EXPLAIN file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    return util::IoError("failed reading EXPLAIN file: " + path);
  }
  return IngestExplainText(text.str(), policy, limits);
}

// --- Adversarial tree mutation ---------------------------------------------

namespace {

std::vector<PlanNode*> CollectNodes(PlanNode* root) {
  std::vector<PlanNode*> nodes;
  std::vector<PlanNode*> stack = {root};
  while (!stack.empty()) {
    PlanNode* node = stack.back();
    stack.pop_back();
    nodes.push_back(node);
    for (const auto& child : node->children()) stack.push_back(child.get());
  }
  return nodes;
}

double HostileValue(util::Rng* rng) {
  static const double kValues[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -1.0,
      -1e30,
      1e300,
      5e15,
      0.0,
  };
  return kValues[rng->UniformInt(0, std::size(kValues) - 1)];
}

void PoisonProperties(plan::PlanProperties* p, util::Rng* rng) {
  double plan::PlanProperties::* const kTargets[] = {
      &plan::PlanProperties::actual_loops,
      &plan::PlanProperties::actual_rows,
      &plan::PlanProperties::plan_rows,
      &plan::PlanProperties::plan_width,
      &plan::PlanProperties::shared_read_blocks,
      &plan::PlanProperties::temp_written_blocks,
      &plan::PlanProperties::rows_removed_by_filter,
      &plan::PlanProperties::hash_buckets,
      &plan::PlanProperties::hash_batches,
      &plan::PlanProperties::sort_space_used_kb,
      &plan::PlanProperties::num_sort_keys,
      &plan::PlanProperties::peak_memory_kb,
      &plan::PlanProperties::startup_cost,
      &plan::PlanProperties::total_cost,
      &plan::PlanProperties::actual_startup_time_ms,
      &plan::PlanProperties::actual_total_time_ms,
  };
  const int hits = static_cast<int>(rng->UniformInt(1, 4));
  for (int h = 0; h < hits; ++h) {
    p->*kTargets[rng->UniformInt(0, std::size(kTargets) - 1)] =
        HostileValue(rng);
  }
}

}  // namespace

void CorruptPlan(PlanNode* root, util::Rng* rng, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    std::vector<PlanNode*> nodes = CollectNodes(root);
    PlanNode* victim =
        nodes[rng->UniformInt(0, static_cast<int64_t>(nodes.size()) - 1)];
    switch (rng->UniformInt(0, 5)) {
      case 0:
        PoisonProperties(&victim->props(), rng);
        break;
      case 1:  // scrambled operator-type bytes (out-of-vocabulary ids)
        victim->set_type(plan::OperatorType(
            static_cast<uint8_t>(rng->UniformInt(0, 255)),
            static_cast<uint8_t>(rng->UniformInt(0, 255)),
            static_cast<uint8_t>(rng->UniformInt(0, 255))));
        break;
      case 2: {  // out-of-range categorical codes
        plan::PlanProperties& p = victim->props();
        p.parent_relationship = static_cast<plan::ParentRelationship>(
            rng->UniformInt(-3, 200));
        p.join_kind = static_cast<plan::JoinKind>(rng->UniformInt(-3, 200));
        p.sort_method = static_cast<plan::SortMethod>(rng->UniformInt(-3, 200));
        p.aggregate_strategy =
            static_cast<plan::AggregateStrategy>(rng->UniformInt(-3, 200));
        p.scan_direction = static_cast<int>(rng->UniformInt(-100, 100));
        break;
      }
      case 3: {  // graft a pathologically deep unary chain
        const int depth = static_cast<int>(rng->UniformInt(50, 300));
        PlanNode* tip = victim;
        for (int d = 0; d < depth; ++d) {
          tip = tip->AddChild(plan::OperatorType::Parse("Materialize"));
        }
        break;
      }
      case 4: {  // fan-out explosion
        const int fan = static_cast<int>(rng->UniformInt(20, 64));
        for (int c = 0; c < fan; ++c) {
          victim->AddChild(plan::OperatorType::Parse("Scan-Seq"));
        }
        break;
      }
      default:
        victim->DropChildren();
        break;
    }
  }
}

}  // namespace qpe::data
