#ifndef QPE_DATA_PLAN_CORPUS_H_
#define QPE_DATA_PLAN_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan_node.h"
#include "plan/sanitize.h"
#include "util/rng.h"
#include "util/status.h"

namespace qpe::data {

// Synthetic stand-in for the paper's crowdsourced explain.depesz.com corpus:
// a generator of structurally diverse random plan trees over the full
// operator taxonomy. Trees are grammatical (scans at the leaves, joins
// binary, unary shaping operators above), with sizes distributed from tiny
// OLTP lookups to deep analytic plans; plans above `max_nodes` are pruned
// away, mirroring the paper's >200-node cut.
struct CorpusOptions {
  int min_nodes = 3;
  int max_nodes = 200;
  // Average plan size knob: probability of growing another join level.
  double join_growth = 0.55;
};

class RandomPlanGenerator {
 public:
  explicit RandomPlanGenerator(util::Rng rng, CorpusOptions options = {})
      : rng_(rng), options_(options) {}

  std::unique_ptr<plan::PlanNode> Generate();

  // A structural mutation of an existing plan (relabel some operators, drop
  // or add a subtree); used to create related plan pairs with high Smatch.
  std::unique_ptr<plan::PlanNode> Mutate(const plan::PlanNode& original,
                                         double mutation_rate = 0.2);

 private:
  std::unique_ptr<plan::PlanNode> GenerateSubtree(int depth, int* budget);
  plan::OperatorType RandomScanType();
  plan::OperatorType RandomJoinType();
  plan::OperatorType RandomUnaryType();

  util::Rng rng_;
  CorpusOptions options_;
};

// --- Foreign-plan ingestion -------------------------------------------------

// A foreign plan that survived ingestion: the parsed (and, under the lenient
// policy, sanitized) tree plus the full defect accounting.
struct IngestedPlan {
  plan::Plan plan;
  plan::IngestionStats stats;
  util::WarningLog warnings;
};

// One-stop ingestion of PostgreSQL-style EXPLAIN text, the entry point the
// paper's crowdsourced corpus would flow through (§4):
//   lenient — ParseExplain + SanitizePlan; every accepted plan is safe for
//             every encoder (finite features, in-vocabulary ids, capped
//             shape) and `stats` says exactly how degraded it was.
//   strict  — ParseExplain(strict) + ValidatePlan; the first defect rejects
//             the whole input with a descriptive Status, never a partial
//             tree.
util::StatusOr<IngestedPlan> IngestExplainText(
    const std::string& text,
    plan::IngestionPolicy policy = plan::IngestionPolicy::kLenient,
    const plan::SanitizeLimits& limits = {});

// Reads `path` and ingests its contents; NotFound/Io errors pass through.
util::StatusOr<IngestedPlan> IngestExplainFile(
    const std::string& path,
    plan::IngestionPolicy policy = plan::IngestionPolicy::kLenient,
    const plan::SanitizeLimits& limits = {});

// --- Adversarial tree mutation ---------------------------------------------

// Deterministically corrupts a plan tree in place for robustness fuzzing:
// non-finite/negative/huge property values, scrambled operator-type bytes,
// out-of-range categorical codes, grafted deep chains, fan-out explosions,
// and dropped subtrees. Complements util::MutateBytes (which attacks the
// EXPLAIN *text*); this attacks the in-memory tree that bypasses parsing.
void CorruptPlan(plan::PlanNode* root, util::Rng* rng, int rounds = 4);

}  // namespace qpe::data

#endif  // QPE_DATA_PLAN_CORPUS_H_
