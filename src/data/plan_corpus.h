#ifndef QPE_DATA_PLAN_CORPUS_H_
#define QPE_DATA_PLAN_CORPUS_H_

#include <memory>
#include <vector>

#include "plan/plan_node.h"
#include "util/rng.h"

namespace qpe::data {

// Synthetic stand-in for the paper's crowdsourced explain.depesz.com corpus:
// a generator of structurally diverse random plan trees over the full
// operator taxonomy. Trees are grammatical (scans at the leaves, joins
// binary, unary shaping operators above), with sizes distributed from tiny
// OLTP lookups to deep analytic plans; plans above `max_nodes` are pruned
// away, mirroring the paper's >200-node cut.
struct CorpusOptions {
  int min_nodes = 3;
  int max_nodes = 200;
  // Average plan size knob: probability of growing another join level.
  double join_growth = 0.55;
};

class RandomPlanGenerator {
 public:
  explicit RandomPlanGenerator(util::Rng rng, CorpusOptions options = {})
      : rng_(rng), options_(options) {}

  std::unique_ptr<plan::PlanNode> Generate();

  // A structural mutation of an existing plan (relabel some operators, drop
  // or add a subtree); used to create related plan pairs with high Smatch.
  std::unique_ptr<plan::PlanNode> Mutate(const plan::PlanNode& original,
                                         double mutation_rate = 0.2);

 private:
  std::unique_ptr<plan::PlanNode> GenerateSubtree(int depth, int* budget);
  plan::OperatorType RandomScanType();
  plan::OperatorType RandomJoinType();
  plan::OperatorType RandomUnaryType();

  util::Rng rng_;
  CorpusOptions options_;
};

}  // namespace qpe::data

#endif  // QPE_DATA_PLAN_CORPUS_H_
