#ifndef QPE_DATA_FEATURES_H_
#define QPE_DATA_FEATURES_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "config/db_config.h"
#include "plan/plan_node.h"
#include "plan/sanitize.h"

namespace qpe::data {

// Numeric featurization of one plan node's properties (paper Table 1). A
// single fixed layout covers all operator groups: the common block first,
// then the scan/join/sort/aggregate blocks (zero where not applicable).
// Count- and block-valued properties are log1p-compressed; categoricals are
// small integers. `Total Cost` / `Actual Time` / `Startup` are labels and
// never appear here.
inline constexpr int kNodeFeatureDim = 40;

// Every emitted feature is guaranteed finite regardless of the node's
// contents: NaN/Inf properties featurize as 0, negative counts clamp to 0,
// and categorical codes clamp into their enum range. When `stats` is given,
// each repair is counted there (nonfinite_values / negative_values /
// invalid_enums) so ingestion can report how degraded a foreign plan was.
std::vector<double> NodeFeatures(const plan::PlanNode& node,
                                 plan::IngestionStats* stats = nullptr);

// The union of relations referenced in a node's subtree (a join node
// "accesses" everything its scans access); used to look up meta features.
std::vector<std::string> SubtreeRelations(const plan::PlanNode& node);

// Meta features for a node = catalog.MetaFeatures(SubtreeRelations(node)).
std::vector<double> NodeMetaFeatures(const plan::PlanNode& node,
                                     const catalog::Catalog& catalog);

// Elementwise sum of node feature vectors across a set of nodes; the paper
// feeds the *summed* features of all same-group nodes with the cumulative
// plan label as an extra training sample (§3.2.1).
std::vector<double> SumFeatures(const std::vector<std::vector<double>>& rows);

// Label transform for time/cost regression: train in log space so the loss
// is scale-free across milliseconds..minutes.
double EncodeLabel(double raw);
double DecodeLabel(double encoded);

}  // namespace qpe::data

#endif  // QPE_DATA_FEATURES_H_
