#ifndef QPE_DATA_DATASETS_H_
#define QPE_DATA_DATASETS_H_

#include <memory>
#include <vector>

#include "data/plan_corpus.h"
#include "plan/plan_node.h"
#include "plan/taxonomy.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"
#include "util/rng.h"

namespace qpe::data {

// ---------------------------------------------------------------------------
// Plan-pair similarity datasets (structure encoder pretraining/finetuning)
// ---------------------------------------------------------------------------

struct PlanPair {
  std::unique_ptr<plan::PlanNode> left;
  std::unique_ptr<plan::PlanNode> right;
  double smatch = 0;  // optimal-matching F1, the regression target
};

struct PlanPairDataset {
  std::vector<PlanPair> train;
  std::vector<PlanPair> dev;
  std::vector<PlanPair> test;
};

struct PairDatasetOptions {
  int num_pairs = 2000;
  // Fraction of pairs built as (plan, mutation-of-plan) so the Smatch label
  // distribution covers the high end; the rest are random pairs.
  double related_fraction = 0.5;
  // train:dev:test ratio 20:1:1 as in the paper (§6.1).
  double dev_fraction = 1.0 / 22.0;
  double test_fraction = 1.0 / 22.0;
  uint64_t seed = 17;
  CorpusOptions corpus;
};

// Pairs over the synthetic crowdsourced corpus.
PlanPairDataset BuildCorpusPairDataset(const PairDatasetOptions& options);

// Pairs over plans produced by a benchmark workload (planner output across
// random configurations); used for the TPC-H / TPC-DS / Spatial domain
// adaptation experiments.
PlanPairDataset BuildWorkloadPairDataset(
    const simdb::BenchmarkWorkload& workload, const PairDatasetOptions& options);

// ---------------------------------------------------------------------------
// Per-operator performance samples (performance encoder training)
// ---------------------------------------------------------------------------

struct OperatorSample {
  std::vector<double> node_features;
  std::vector<double> meta_features;
  std::vector<double> db_features;
  // Labels (raw units; training applies EncodeLabel).
  double actual_total_time_ms = 0;
  double total_cost = 0;
  double startup_cost = 0;
};

struct OperatorDataset {
  std::vector<OperatorSample> train;
  std::vector<OperatorSample> val;
  std::vector<OperatorSample> test;
};

// Extracts one sample per node of `group` from each executed query, plus the
// summed-features sample carrying the plan's cumulative labels (§3.2.1).
std::vector<OperatorSample> ExtractOperatorSamples(
    const std::vector<simdb::ExecutedQuery>& executed,
    const catalog::Catalog& catalog, plan::OperatorGroup group);

// Random 8:1:1 split (paper §6.2).
OperatorDataset SplitOperatorSamples(std::vector<OperatorSample> samples,
                                     uint64_t seed, double val_fraction = 0.1,
                                     double test_fraction = 0.1);

// Shuffled index split helper used throughout.
void SplitIndices(int n, double first_fraction, double second_fraction,
                  util::Rng* rng, std::vector<int>* main_split,
                  std::vector<int>* first_split,
                  std::vector<int>* second_split);

}  // namespace qpe::data

#endif  // QPE_DATA_DATASETS_H_
