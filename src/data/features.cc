#include "data/features.h"

#include <cmath>
#include <set>

namespace qpe::data {

namespace {

// Repairs a raw property value for featurization: non-finite -> 0 (counted),
// negative count -> 0 (counted). Keeps the graceful-degradation invariant
// that NodeFeatures never emits a non-finite number.
double Guard(double v, plan::IngestionStats* stats) {
  if (!std::isfinite(v)) {
    if (stats != nullptr) ++stats->nonfinite_values;
    return 0.0;
  }
  if (v < 0) {
    if (stats != nullptr) ++stats->negative_values;
    return 0.0;
  }
  return v;
}

// Clamps a categorical code into [lo, hi] (counted as invalid_enums).
double Cat(int code, int lo, int hi, plan::IngestionStats* stats) {
  if (code < lo || code > hi) {
    if (stats != nullptr) ++stats->invalid_enums;
    return code < lo ? lo : hi;
  }
  return code;
}

}  // namespace

std::vector<double> NodeFeatures(const plan::PlanNode& node,
                                 plan::IngestionStats* stats) {
  const plan::PlanProperties& p = node.props();
  auto L = [stats](double v) { return std::log1p(Guard(v, stats)) / 20.0; };
  std::vector<double> f;
  f.reserve(kNodeFeatureDim);
  // --- Common (Table 1 "All") ---
  f.push_back(L(p.actual_loops));
  f.push_back(L(p.actual_rows));
  f.push_back(L(p.plan_rows));
  f.push_back(Guard(p.plan_width, stats) / 400.0);
  f.push_back(L(p.shared_hit_blocks));
  f.push_back(L(p.shared_read_blocks));
  f.push_back(L(p.shared_dirtied_blocks));
  f.push_back(L(p.shared_written_blocks));
  f.push_back(L(p.local_hit_blocks));
  f.push_back(L(p.local_read_blocks));
  f.push_back(L(p.local_dirtied_blocks));
  f.push_back(L(p.local_written_blocks));
  f.push_back(L(p.temp_read_blocks));
  f.push_back(L(p.temp_written_blocks));
  f.push_back(Cat(static_cast<int>(p.parent_relationship), 0, 5, stats) / 5.0);
  f.push_back(L(p.plan_buffers));
  // --- Scan ---
  f.push_back(Cat(p.scan_direction, -1, 1, stats));
  f.push_back(p.has_index_condition ? 1.0 : 0.0);
  f.push_back(p.has_recheck_condition ? 1.0 : 0.0);
  f.push_back(p.has_filter ? 1.0 : 0.0);
  f.push_back(L(p.rows_removed_by_filter));
  f.push_back(L(p.heap_blocks));
  f.push_back(p.parallel ? 1.0 : 0.0);
  // --- Join ---
  f.push_back(Cat(static_cast<int>(p.join_kind), 0, 6, stats) / 6.0);
  f.push_back(p.inner_unique ? 1.0 : 0.0);
  f.push_back(p.has_merge_condition ? 1.0 : 0.0);
  f.push_back(p.has_hash_condition ? 1.0 : 0.0);
  f.push_back(L(p.rows_removed_by_join_filter));
  f.push_back(L(p.hash_buckets));
  f.push_back(L(p.hash_batches));
  // --- Sort ---
  f.push_back(Cat(static_cast<int>(p.sort_method), 0, 4, stats) / 4.0);
  f.push_back(L(p.sort_space_used_kb));
  f.push_back(p.sort_space_on_disk ? 1.0 : 0.0);
  f.push_back(Guard(p.num_sort_keys, stats) / 8.0);
  // --- Aggregate ---
  f.push_back(Cat(static_cast<int>(p.aggregate_strategy), 0, 4, stats) / 4.0);
  f.push_back(p.parallel_aware ? 1.0 : 0.0);
  f.push_back(p.partial_mode ? 1.0 : 0.0);
  // --- Shared join/sort/agg ---
  f.push_back(L(p.peak_memory_kb));
  // --- Topology hints ---
  f.push_back(static_cast<double>(node.children().size()) / 4.0);
  f.push_back(node.children().empty() ? 1.0 : 0.0);
  return f;
}

std::vector<std::string> SubtreeRelations(const plan::PlanNode& node) {
  std::set<std::string> unique;
  node.Visit([&](const plan::PlanNode& n) {
    for (const std::string& rel : n.relations()) unique.insert(rel);
  });
  return {unique.begin(), unique.end()};
}

std::vector<double> NodeMetaFeatures(const plan::PlanNode& node,
                                     const catalog::Catalog& catalog) {
  return catalog.MetaFeatures(SubtreeRelations(node));
}

std::vector<double> SumFeatures(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  std::vector<double> total(rows[0].size(), 0.0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) total[i] += row[i];
  }
  return total;
}

double EncodeLabel(double raw) {
  // NaN and +/-Inf labels (corrupt foreign actuals) encode as 0, matching
  // the "treat as absent" degradation everywhere else.
  if (!std::isfinite(raw)) return 0.0;
  return std::log1p(std::max(0.0, raw)) / 15.0;
}

double DecodeLabel(double encoded) {
  // Clamp to the plausible range (0 .. ~5e8 ms): an untrained or diverging
  // head must not explode an MAE through the exponential decode.
  return std::expm1(std::min(20.0, std::max(0.0, encoded * 15.0)));
}

}  // namespace qpe::data
