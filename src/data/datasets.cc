#include "data/datasets.h"

#include <algorithm>

#include "config/lhs_sampler.h"
#include "data/features.h"
#include "simdb/planner.h"
#include "util/thread_pool.h"

namespace qpe::data {

namespace {

PlanPairDataset SplitPairs(std::vector<PlanPair> pairs,
                           const PairDatasetOptions& options, util::Rng* rng) {
  std::vector<int> main_idx, dev_idx, test_idx;
  SplitIndices(static_cast<int>(pairs.size()), options.dev_fraction,
               options.test_fraction, rng, &main_idx, &dev_idx, &test_idx);
  PlanPairDataset dataset;
  for (int i : main_idx) dataset.train.push_back(std::move(pairs[i]));
  for (int i : dev_idx) dataset.dev.push_back(std::move(pairs[i]));
  for (int i : test_idx) dataset.test.push_back(std::move(pairs[i]));
  return dataset;
}

std::vector<PlanPair> PairsFromPool(
    std::vector<std::unique_ptr<plan::PlanNode>> pool,
    const PairDatasetOptions& options, util::Rng* rng) {
  RandomPlanGenerator mutator(rng->Fork(), options.corpus);
  std::vector<PlanPair> pairs;
  pairs.reserve(options.num_pairs);
  const int n = static_cast<int>(pool.size());
  // Pair construction stays sequential (it consumes the caller's RNG
  // stream); the Smatch labelling below — the expensive part, a search per
  // pair — is embarrassingly parallel and deterministic per pair, so the
  // labels are identical for every thread count.
  //
  // Sides drawn from the pool reference their pool index so the labelling
  // pass can flatten each pool plan once instead of re-flattening both
  // sides of every pair (pool plans recur across many pairs); only mutated
  // right sides are flattened per pair.
  std::vector<int> left_pool_index(options.num_pairs);
  std::vector<int> right_pool_index(options.num_pairs);  // -1 => mutated
  for (int i = 0; i < options.num_pairs; ++i) {
    PlanPair pair;
    const int left_idx = rng->UniformInt(0, n - 1);
    const plan::PlanNode& left = *pool[left_idx];
    left_pool_index[i] = left_idx;
    pair.left = left.Clone();
    if (rng->Bernoulli(options.related_fraction)) {
      pair.right = mutator.Mutate(left, rng->Uniform(0.05, 0.5));
      right_pool_index[i] = -1;
    } else {
      const int right_idx = rng->UniformInt(0, n - 1);
      pair.right = pool[right_idx]->Clone();
      right_pool_index[i] = right_idx;
    }
    pairs.push_back(std::move(pair));
  }
  std::vector<smatch::FlatPlan> pool_flat(n);
  util::ParallelRun(n, [&](int i) { pool_flat[i] = smatch::Flatten(*pool[i]); });
  util::ParallelRun(static_cast<int>(pairs.size()), [&](int i) {
    const smatch::FlatPlan& left = pool_flat[left_pool_index[i]];
    if (right_pool_index[i] >= 0) {
      pairs[i].smatch =
          smatch::Score(left, pool_flat[right_pool_index[i]]).f1;
    } else {
      pairs[i].smatch = smatch::Score(left, smatch::Flatten(*pairs[i].right)).f1;
    }
  });
  return pairs;
}

}  // namespace

void SplitIndices(int n, double first_fraction, double second_fraction,
                  util::Rng* rng, std::vector<int>* main_split,
                  std::vector<int>* first_split,
                  std::vector<int>* second_split) {
  const std::vector<int> perm = rng->Permutation(n);
  const int n_first = static_cast<int>(n * first_fraction);
  const int n_second = static_cast<int>(n * second_fraction);
  first_split->assign(perm.begin(), perm.begin() + n_first);
  second_split->assign(perm.begin() + n_first,
                       perm.begin() + n_first + n_second);
  main_split->assign(perm.begin() + n_first + n_second, perm.end());
}

PlanPairDataset BuildCorpusPairDataset(const PairDatasetOptions& options) {
  util::Rng rng(options.seed);
  RandomPlanGenerator generator(rng.Fork(), options.corpus);
  // A pool roughly half the pair count gives plenty of repeats (same plan in
  // several pairs), like sampling pairs from a fixed crowd-sourced corpus.
  const int pool_size = std::max(8, options.num_pairs / 2);
  std::vector<std::unique_ptr<plan::PlanNode>> pool;
  pool.reserve(pool_size);
  for (int i = 0; i < pool_size; ++i) pool.push_back(generator.Generate());
  std::vector<PlanPair> pairs = PairsFromPool(std::move(pool), options, &rng);
  return SplitPairs(std::move(pairs), options, &rng);
}

PlanPairDataset BuildWorkloadPairDataset(
    const simdb::BenchmarkWorkload& workload,
    const PairDatasetOptions& options) {
  util::Rng rng(options.seed);
  // Plans from the workload under varied configurations: the planner's
  // config-dependent choices create structural diversity within a template.
  config::LhsSampler sampler(rng.Fork());
  const int pool_size = std::max(8, options.num_pairs / 2);
  const std::vector<config::DbConfig> configs =
      sampler.Sample(std::max(4, pool_size / workload.NumTemplates() + 1));
  std::vector<std::unique_ptr<plan::PlanNode>> pool;
  pool.reserve(pool_size);
  int config_index = 0;
  while (static_cast<int>(pool.size()) < pool_size) {
    for (int t = 0; t < workload.NumTemplates() &&
                    static_cast<int>(pool.size()) < pool_size;
         ++t) {
      const simdb::QuerySpec spec = workload.Instantiate(t, &rng);
      const config::DbConfig& db_config =
          configs[config_index++ % configs.size()];
      simdb::Planner planner(&workload.GetCatalog(), &db_config);
      pool.push_back(planner.PlanQuery(spec).root->Clone());
    }
  }
  std::vector<PlanPair> pairs = PairsFromPool(std::move(pool), options, &rng);
  return SplitPairs(std::move(pairs), options, &rng);
}

std::vector<OperatorSample> ExtractOperatorSamples(
    const std::vector<simdb::ExecutedQuery>& executed,
    const catalog::Catalog& catalog, plan::OperatorGroup group) {
  std::vector<OperatorSample> samples;
  for (const simdb::ExecutedQuery& record : executed) {
    if (record.query.root == nullptr) continue;
    const std::vector<double> db_features = record.db_config.ToFeatures();
    std::vector<std::vector<double>> group_node_features;
    record.query.root->Visit([&](const plan::PlanNode& node) {
      if (plan::GroupOf(node.type()) != group) return;
      OperatorSample sample;
      sample.node_features = NodeFeatures(node);
      sample.meta_features = NodeMetaFeatures(node, catalog);
      sample.db_features = db_features;
      sample.actual_total_time_ms = node.props().actual_total_time_ms;
      sample.total_cost = node.props().total_cost;
      sample.startup_cost = node.props().startup_cost;
      group_node_features.push_back(sample.node_features);
      samples.push_back(std::move(sample));
    });
    // Cumulative sample: summed node features of this group with the plan's
    // cumulative labels (§3.2.1).
    if (group_node_features.size() > 1) {
      OperatorSample cumulative;
      cumulative.node_features = SumFeatures(group_node_features);
      cumulative.meta_features =
          NodeMetaFeatures(*record.query.root, catalog);
      cumulative.db_features = db_features;
      cumulative.actual_total_time_ms =
          record.query.root->props().actual_total_time_ms;
      cumulative.total_cost = record.query.root->props().total_cost;
      cumulative.startup_cost = record.query.root->props().startup_cost;
      samples.push_back(std::move(cumulative));
    }
  }
  return samples;
}

OperatorDataset SplitOperatorSamples(std::vector<OperatorSample> samples,
                                     uint64_t seed, double val_fraction,
                                     double test_fraction) {
  util::Rng rng(seed);
  std::vector<int> main_idx, val_idx, test_idx;
  SplitIndices(static_cast<int>(samples.size()), val_fraction, test_fraction,
               &rng, &main_idx, &val_idx, &test_idx);
  OperatorDataset dataset;
  for (int i : main_idx) dataset.train.push_back(std::move(samples[i]));
  for (int i : val_idx) dataset.val.push_back(std::move(samples[i]));
  for (int i : test_idx) dataset.test.push_back(std::move(samples[i]));
  return dataset;
}

}  // namespace qpe::data
