#ifndef QPE_DATA_DATASET_IO_H_
#define QPE_DATA_DATASET_IO_H_

#include <string>
#include <vector>

#include "simdb/workload_runner.h"

namespace qpe::data {

// Disk persistence for executed-query datasets (the analogue of the paper's
// uploaded plan repository): one record per line —
//   (record :latency <ms> :template <i> :instance <i> :config v1,...,v13 <plan s-expr>)
// Plans round-trip through plan/serialize.h.

bool SaveExecutedQueries(const std::vector<simdb::ExecutedQuery>& records,
                         const std::string& path);

// Returns an empty vector on malformed input or missing file; `ok` (if
// non-null) distinguishes empty-file success from failure.
std::vector<simdb::ExecutedQuery> LoadExecutedQueries(const std::string& path,
                                                      bool* ok = nullptr);

}  // namespace qpe::data

#endif  // QPE_DATA_DATASET_IO_H_
