#ifndef QPE_DATA_DATASET_IO_H_
#define QPE_DATA_DATASET_IO_H_

#include <string>
#include <vector>

#include "simdb/workload_runner.h"
#include "util/status.h"

namespace qpe::data {

// Disk persistence for executed-query datasets (the analogue of the paper's
// uploaded plan repository): one record per line —
//   (record :latency <ms> :template <i> :instance <i> :config v1,...,v13 <plan s-expr>)
// Plans round-trip through plan/serialize.h.

util::Status SaveExecutedQueriesStatus(
    const std::vector<simdb::ExecutedQuery>& records, const std::string& path);

// Parses the whole file or reports the 1-based line number and reason of
// the first malformed record, e.g.
//   "dataset.txt line 17: missing ':config' token".
util::StatusOr<std::vector<simdb::ExecutedQuery>> LoadExecutedQueriesChecked(
    const std::string& path);

// Legacy wrappers. Save returns false on IO failure. Load returns an empty
// vector on malformed input or missing file; `ok` (if non-null)
// distinguishes empty-file success from failure.
bool SaveExecutedQueries(const std::vector<simdb::ExecutedQuery>& records,
                         const std::string& path);
std::vector<simdb::ExecutedQuery> LoadExecutedQueries(const std::string& path,
                                                      bool* ok = nullptr);

}  // namespace qpe::data

#endif  // QPE_DATA_DATASET_IO_H_
