#include "smatch/smatch.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace qpe::smatch {

namespace {

// Number of matching instance triples if left node i is mapped to right
// node j: one per equal taxonomy sub-type (all levels always present).
int InstanceMatches(const plan::OperatorType& a, const plan::OperatorType& b) {
  return (a.level1 == b.level1) + (a.level2 == b.level2) +
         (a.level3 == b.level3);
}

struct Problem {
  const FlatPlan& left;
  const FlatPlan& right;
  // inst[i][j] = instance triple matches for mapping i -> j.
  std::vector<std::vector<int>> inst;
  // Right-side edge set for O(1) membership tests.
  std::unordered_set<int64_t> right_edges;
  // Left adjacency: for node i, edges where i is parent / child.
  std::vector<std::vector<int>> left_children;  // i -> child nodes
  std::vector<std::vector<int>> left_parents;   // i -> parent nodes

  explicit Problem(const FlatPlan& l, const FlatPlan& r) : left(l), right(r) {
    const int nl = static_cast<int>(left.types.size());
    inst.assign(nl, std::vector<int>(right.types.size()));
    for (int i = 0; i < nl; ++i) {
      for (size_t j = 0; j < right.types.size(); ++j) {
        inst[i][j] = InstanceMatches(left.types[i], right.types[j]);
      }
    }
    for (const auto& [p, c] : right.edges) {
      right_edges.insert(static_cast<int64_t>(p) * 1000003 + c);
    }
    left_children.assign(nl, {});
    left_parents.assign(nl, {});
    for (const auto& [p, c] : left.edges) {
      left_children[p].push_back(c);
      left_parents[c].push_back(p);
    }
  }

  bool RightEdge(int p, int c) const {
    if (p < 0 || c < 0) return false;
    return right_edges.count(static_cast<int64_t>(p) * 1000003 + c) > 0;
  }

  // Total matched triples under the mapping (mapping[i] = right node or -1).
  int TotalScore(const std::vector<int>& mapping) const {
    int score = 0;
    for (size_t i = 0; i < mapping.size(); ++i) {
      if (mapping[i] >= 0) score += inst[i][mapping[i]];
    }
    for (const auto& [p, c] : left.edges) {
      if (RightEdge(mapping[p], mapping[c])) ++score;
    }
    return score;
  }

  // Score delta from remapping node i from mapping[i] to j (j may be -1),
  // holding everything else fixed.
  int RemapGain(const std::vector<int>& mapping, int i, int j) const {
    const int old_j = mapping[i];
    if (old_j == j) return 0;
    int gain = 0;
    if (j >= 0) gain += inst[i][j];
    if (old_j >= 0) gain -= inst[i][old_j];
    for (int c : left_children[i]) {
      const int mc = c == i ? j : mapping[c];
      gain += RightEdge(j, mc) - RightEdge(old_j, mapping[c]);
    }
    for (int p : left_parents[i]) {
      const int mp = p == i ? j : mapping[p];
      gain += RightEdge(mp, j) - RightEdge(mapping[p], old_j);
    }
    return gain;
  }
};

SmatchScore MakeScore(int matched, const FlatPlan& left, const FlatPlan& right) {
  SmatchScore score;
  score.matched_triples = matched;
  score.triples_left = left.NumTriples();
  score.triples_right = right.NumTriples();
  score.precision =
      score.triples_left > 0
          ? static_cast<double>(matched) / score.triples_left
          : 0.0;
  score.recall = score.triples_right > 0
                     ? static_cast<double>(matched) / score.triples_right
                     : 0.0;
  score.f1 = (score.precision + score.recall) > 0
                 ? 2 * score.precision * score.recall /
                       (score.precision + score.recall)
                 : 0.0;
  return score;
}

// Greedy initial mapping: repeatedly assign the (i, j) pair with the highest
// instance-match count among unassigned nodes, ties broken by index.
std::vector<int> GreedyInit(const Problem& prob) {
  const int nl = static_cast<int>(prob.left.types.size());
  const int nr = static_cast<int>(prob.right.types.size());
  std::vector<int> mapping(nl, -1);
  std::vector<bool> right_used(nr, false);
  for (int round = 0; round < std::min(nl, nr); ++round) {
    int best_i = -1, best_j = -1, best = -1;
    for (int i = 0; i < nl; ++i) {
      if (mapping[i] >= 0) continue;
      for (int j = 0; j < nr; ++j) {
        if (right_used[j]) continue;
        if (prob.inst[i][j] > best) {
          best = prob.inst[i][j];
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i < 0) break;
    mapping[best_i] = best_j;
    right_used[best_j] = true;
  }
  return mapping;
}

std::vector<int> RandomInit(const Problem& prob, util::Rng* rng) {
  const int nl = static_cast<int>(prob.left.types.size());
  const int nr = static_cast<int>(prob.right.types.size());
  std::vector<int> right_perm = rng->Permutation(nr);
  std::vector<int> mapping(nl, -1);
  for (int i = 0; i < nl && i < nr; ++i) mapping[i] = right_perm[i];
  return mapping;
}

// Best-improvement hill climbing with remap and swap moves.
int HillClimb(const Problem& prob, std::vector<int>* mapping, int max_passes) {
  const int nl = static_cast<int>(prob.left.types.size());
  const int nr = static_cast<int>(prob.right.types.size());
  std::vector<bool> right_used(nr, false);
  for (int j : *mapping) {
    if (j >= 0) right_used[j] = true;
  }
  int score = prob.TotalScore(*mapping);
  for (int pass = 0; pass < max_passes; ++pass) {
    int best_gain = 0;
    int move_i = -1, move_j = -1, move_i2 = -1;  // remap or swap
    // Remap moves: i -> any unused j (or unmap).
    for (int i = 0; i < nl; ++i) {
      for (int j = -1; j < nr; ++j) {
        if (j >= 0 && right_used[j]) continue;
        const int gain = prob.RemapGain(*mapping, i, j);
        if (gain > best_gain) {
          best_gain = gain;
          move_i = i;
          move_j = j;
          move_i2 = -1;
        }
      }
    }
    // Swap moves: exchange the images of i and i2.
    for (int i = 0; i < nl; ++i) {
      for (int i2 = i + 1; i2 < nl; ++i2) {
        if ((*mapping)[i] == (*mapping)[i2]) continue;  // both -1
        std::vector<int>& m = *mapping;
        const int ji = m[i], ji2 = m[i2];
        // Evaluate the swap by applying and rescoring the two nodes'
        // neighbourhoods via RemapGain in sequence.
        const int g1 = prob.RemapGain(m, i, ji2);
        m[i] = ji2;
        const int g2 = prob.RemapGain(m, i2, ji);
        m[i] = ji;
        const int gain = g1 + g2;
        if (gain > best_gain) {
          best_gain = gain;
          move_i = i;
          move_i2 = i2;
          move_j = -2;
        }
      }
    }
    if (best_gain <= 0) break;
    std::vector<int>& m = *mapping;
    if (move_j == -2) {
      std::swap(m[move_i], m[move_i2]);
    } else {
      if (m[move_i] >= 0) right_used[m[move_i]] = false;
      if (move_j >= 0) right_used[move_j] = true;
      m[move_i] = move_j;
    }
    score += best_gain;
  }
  return score;
}

void FlattenInto(const plan::PlanNode& node, int parent, FlatPlan* out) {
  const int id = static_cast<int>(out->types.size());
  out->types.push_back(node.type());
  if (parent >= 0) out->edges.emplace_back(parent, id);
  for (const auto& child : node.children()) {
    FlattenInto(*child, id, out);
  }
}

// Exact search: branch over left nodes in order, assigning each to an unused
// right node or -1, with an admissible upper bound for pruning.
class ExactSearch {
 public:
  explicit ExactSearch(const Problem& prob) : prob_(prob) {
    nl_ = static_cast<int>(prob.left.types.size());
    nr_ = static_cast<int>(prob.right.types.size());
    mapping_.assign(nl_, -1);
    right_used_.assign(nr_, false);
    // Upper bound per left node: best instance match + out-degree + in-degree
    // (every incident edge could match at most once).
    ub_suffix_.assign(nl_ + 1, 0);
    for (int i = nl_ - 1; i >= 0; --i) {
      int best_inst = 0;
      for (int j = 0; j < nr_; ++j) {
        best_inst = std::max(best_inst, prob.inst[i][j]);
      }
      // Each left edge can match at most once; we attribute the edge to its
      // child node (the later preorder index), matching Dfs()'s accounting.
      int incoming = static_cast<int>(prob.left_parents[i].size());
      ub_suffix_[i] = ub_suffix_[i + 1] + best_inst + incoming;
    }
  }

  int Run() {
    best_ = 0;
    Dfs(0, 0);
    return best_;
  }

 private:
  void Dfs(int i, int score) {
    if (score + ub_suffix_[i] <= best_) return;
    if (i == nl_) {
      best_ = std::max(best_, score);
      return;
    }
    for (int j = -1; j < nr_; ++j) {
      if (j >= 0 && right_used_[j]) continue;
      // Partial score gain: instance matches plus edges to already-assigned
      // neighbours (parents of i are always earlier in preorder; children are
      // later, counted when the child is assigned).
      int gain = j >= 0 ? prob_.inst[i][j] : 0;
      for (int p : prob_.left_parents[i]) {
        if (p < i && prob_.RightEdge(mapping_[p], j)) ++gain;
      }
      mapping_[i] = j;
      if (j >= 0) right_used_[j] = true;
      Dfs(i + 1, score + gain);
      if (j >= 0) right_used_[j] = false;
      mapping_[i] = -1;
    }
  }

  const Problem& prob_;
  int nl_ = 0, nr_ = 0;
  int best_ = 0;
  std::vector<int> mapping_;
  std::vector<bool> right_used_;
  std::vector<int> ub_suffix_;
};

}  // namespace

FlatPlan Flatten(const plan::PlanNode& root) {
  FlatPlan flat;
  FlattenInto(root, -1, &flat);
  return flat;
}

namespace {

int BestMatched(const FlatPlan& left, const FlatPlan& right,
                const SmatchOptions& options) {
  Problem prob(left, right);
  util::Rng rng(options.seed);
  int best = 0;
  for (int r = 0; r < std::max(1, options.restarts); ++r) {
    std::vector<int> mapping =
        r == 0 ? GreedyInit(prob) : RandomInit(prob, &rng);
    best = std::max(best, HillClimb(prob, &mapping, options.max_passes));
  }
  return best;
}

}  // namespace

SmatchScore Score(const FlatPlan& left, const FlatPlan& right,
                  const SmatchOptions& options) {
  if (left.types.empty() || right.types.empty()) {
    return MakeScore(0, left, right);
  }
  // The optimal matched-triple count is symmetric in its arguments; hill
  // climbing is not, so run both orientations and keep the better matching.
  const int best = std::max(BestMatched(left, right, options),
                            BestMatched(right, left, options));
  return MakeScore(best, left, right);
}

SmatchScore Score(const plan::PlanNode& left, const plan::PlanNode& right,
                  const SmatchOptions& options) {
  return Score(Flatten(left), Flatten(right), options);
}

SmatchScore ScoreExact(const FlatPlan& left, const FlatPlan& right) {
  if (left.types.empty() || right.types.empty()) {
    return MakeScore(0, left, right);
  }
  Problem prob(left, right);
  ExactSearch search(prob);
  return MakeScore(search.Run(), left, right);
}

SmatchScore ScoreExact(const plan::PlanNode& left,
                       const plan::PlanNode& right) {
  return ScoreExact(Flatten(left), Flatten(right));
}

}  // namespace qpe::smatch
