#ifndef QPE_SMATCH_SMATCH_H_
#define QPE_SMATCH_SMATCH_H_

#include <cstdint>
#include <vector>

#include "plan/plan_node.h"

namespace qpe::smatch {

// Smatch (Cai & Knight 2013) adapted to query plan trees, as used by the
// paper (§3.1.1) to supervise the structure encoder: the similarity of two
// plans is the maximum F1 obtainable by a one-to-one matching of their
// nodes, counting matched triples.
//
// Triples for a plan:
//   - instance triples (n, levelK, subtype) for each of the three taxonomy
//     levels of every node (NIL levels included, so every node carries three
//     instance triples);
//   - edge triples (parent, child, n) for every tree edge.
//
// Finding the maximizing matching is NP-hard in general; like the original
// Smatch tool we use hill-climbing with restarts, plus an exact
// branch-and-bound oracle for small plans (tests).

struct SmatchScore {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  int matched_triples = 0;
  int triples_left = 0;   // total triples in the first plan
  int triples_right = 0;  // total triples in the second plan
};

struct SmatchOptions {
  int restarts = 4;       // 1 greedy init + (restarts-1) random inits
  int max_passes = 50;    // hill-climbing passes per restart
  uint64_t seed = 1234;   // for the random restarts
};

// Internal flattened representation of a plan, exposed for tests and for
// callers that score one plan against many (precompute once).
struct FlatPlan {
  // Per node: the three sub-type ids.
  std::vector<plan::OperatorType> types;
  // Tree edges as (parent index, child index).
  std::vector<std::pair<int, int>> edges;

  int NumTriples() const {
    return static_cast<int>(types.size()) * 3 + static_cast<int>(edges.size());
  }
};

FlatPlan Flatten(const plan::PlanNode& root);

// Hill-climbing Smatch between two plans.
SmatchScore Score(const plan::PlanNode& left, const plan::PlanNode& right,
                  const SmatchOptions& options = {});
SmatchScore Score(const FlatPlan& left, const FlatPlan& right,
                  const SmatchOptions& options = {});

// Exact maximum-F1 matching by branch-and-bound; only call for small plans
// (<= ~10 nodes on each side).
SmatchScore ScoreExact(const plan::PlanNode& left, const plan::PlanNode& right);
SmatchScore ScoreExact(const FlatPlan& left, const FlatPlan& right);

}  // namespace qpe::smatch

#endif  // QPE_SMATCH_SMATCH_H_
